#include "core/sampler.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "design/block_design.hpp"
#include "obs/metrics.hpp"
#include "retrieval/maxflow.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace flashqos::core {
namespace {

struct PkCacheMetrics {
  obs::Counter& hit;
  obs::Counter& miss;

  static PkCacheMetrics& get() {
    auto& reg = obs::MetricRegistry::global();
    static PkCacheMetrics m{reg.counter("retrieval.pk_cache.hit"),
                            reg.counter("retrieval.pk_cache.miss")};
    return m;
  }
};

double estimate_one_size(const decluster::AllocationScheme& scheme, std::uint32_t k,
                         std::size_t samples, std::uint64_t seed,
                         const std::vector<bool>& available,
                         const std::vector<BucketId>& pool,
                         std::uint32_t live_devices) {
  // Per-size RNG stream: P_k is the same whether sizes run serially or on
  // a pool. With an empty mask the pool is the identity over all buckets,
  // so the draws (and the table) are bit-identical to the healthy sampler.
  Rng rng(shard_seed(seed, k));
  std::vector<BucketId> batch(k);
  const auto lower =
      static_cast<std::uint32_t>(design::optimal_accesses(k, live_devices));
  std::size_t optimal = 0;
  // One flow workspace per size: the sampler only needs the feasibility
  // bit, so it skips schedule extraction entirely, and after the first
  // sample every solve reuses the workspace buffers allocation-free.
  retrieval::FlowWorkspace ws;
  for (std::size_t s = 0; s < samples; ++s) {
    for (auto& b : batch) b = pool[rng.below(pool.size())];
    if (ws.solve(batch, scheme, lower, available)) ++optimal;
  }
  return static_cast<double>(optimal) / static_cast<double>(samples);
}

std::vector<double> compute_probabilities(const decluster::AllocationScheme& scheme,
                                          std::uint32_t max_k,
                                          const SamplerParams& params,
                                          const std::vector<bool>& available) {
  std::vector<double> p(max_k + 1, 1.0);
  if (max_k == 0) return p;
  // Degraded runs draw batches only from buckets that still have a live
  // replica (buckets with every copy down fail outright and never reach
  // retrieval) and measure against the surviving sub-array's optimum.
  std::uint32_t live_devices = scheme.devices();
  std::vector<BucketId> pool;
  pool.reserve(scheme.buckets());
  if (available.empty()) {
    // flashqos-lint: allow(hot-path-alloc): setup fill into the reserve()d pool
    for (BucketId b = 0; b < scheme.buckets(); ++b) pool.push_back(b);
  } else {
    live_devices = 0;
    for (DeviceId d = 0; d < scheme.devices(); ++d) {
      if (available[d]) ++live_devices;
    }
    for (BucketId b = 0; b < scheme.buckets(); ++b) {
      const auto reps = scheme.replicas(b);
      if (std::any_of(reps.begin(), reps.end(),
                      [&](DeviceId d) { return available[d]; })) {
        // flashqos-lint: allow(hot-path-alloc): setup fill into the reserve()d pool
        pool.push_back(b);
      }
    }
  }
  FLASHQOS_EXPECT(live_devices > 0 && !pool.empty(),
                  "degraded sampling needs at least one live device");
  if (params.threads == 1) {
    for (std::uint32_t k = 1; k <= max_k; ++k) {
      p[k] = estimate_one_size(scheme, k, params.samples_per_size, params.seed,
                               available, pool, live_devices);
    }
    return p;
  }
  ThreadPool pool_threads(params.threads);
  parallel_for(pool_threads, max_k, [&](std::size_t i) {
    const auto k = static_cast<std::uint32_t>(i + 1);
    p[k] = estimate_one_size(scheme, k, params.samples_per_size, params.seed,
                             available, pool, live_devices);
  });
  return p;
}

/// Everything that determines the sampled table bit for bit: the scheme's
/// geometry and full replica table, plus the sampling parameters.
/// `threads` is excluded on purpose (per-size RNG streams make the result
/// thread-count invariant — see SamplerParams).
struct PkKey {
  std::uint32_t devices;
  std::uint32_t copies;
  std::uint32_t max_k;
  std::size_t samples;
  std::uint64_t seed;
  std::vector<DeviceId> table;
  std::vector<bool> mask;  // availability; empty = healthy (legacy key)

  friend bool operator<(const PkKey& a, const PkKey& b) {
    return std::tie(a.devices, a.copies, a.max_k, a.samples, a.seed, a.table,
                    a.mask) <
           std::tie(b.devices, b.copies, b.max_k, b.samples, b.seed, b.table,
                    b.mask);
  }
};

/// One memo slot. The value is computed under a once_flag so concurrent
/// sweep jobs asking for the same key dedupe: the first computes (outside
/// the map mutex), the rest block on the flag and then share the table.
struct PkEntry {
  std::once_flag once;
  std::vector<double> table;
};

}  // namespace

std::vector<double> sample_optimal_probabilities(
    const decluster::AllocationScheme& scheme, std::uint32_t max_k,
    const SamplerParams& params) {
  return sample_optimal_probabilities(scheme, max_k, params, {});
}

std::vector<double> sample_optimal_probabilities(
    const decluster::AllocationScheme& scheme, std::uint32_t max_k,
    const SamplerParams& params, const std::vector<bool>& available) {
  FLASHQOS_EXPECT(params.samples_per_size > 0, "sampler needs samples");
  FLASHQOS_EXPECT(available.empty() || available.size() == scheme.devices(),
                  "availability mask must cover every device");
  if (!params.cache) return compute_probabilities(scheme, max_k, params, available);

  PkKey key{scheme.devices(), scheme.copies(), max_k, params.samples_per_size,
            params.seed, {}, available};
  key.table.reserve(static_cast<std::size_t>(scheme.buckets()) * scheme.copies());
  for (BucketId b = 0; b < scheme.buckets(); ++b) {
    const auto reps = scheme.replicas(b);
    // flashqos-lint: allow(hot-path-alloc): memo-key build into the reserve()d table
    key.table.insert(key.table.end(), reps.begin(), reps.end());
  }

  static std::mutex mutex;
  static std::map<PkKey, std::shared_ptr<PkEntry>> memo;
  std::shared_ptr<PkEntry> entry;
  bool inserted = false;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    auto [it, fresh] = memo.try_emplace(std::move(key));
    // flashqos-lint: allow(hot-path-alloc): memo miss; once per configuration
    if (fresh) it->second = std::make_shared<PkEntry>();
    entry = it->second;
    inserted = fresh;
  }
  if constexpr (obs::kEnabled) {
    if (inserted) {
      PkCacheMetrics::get().miss.inc();
    } else {
      PkCacheMetrics::get().hit.inc();
    }
  }
  std::call_once(entry->once, [&] {
    entry->table = compute_probabilities(scheme, max_k, params, available);
  });
  return entry->table;
}

}  // namespace flashqos::core
