// Forwarding header: the rebuild planner moved to src/fault/ alongside the
// fault-plan machinery that drives it. Existing includes and the
// flashqos::core spellings keep working.
#pragma once

#include "fault/rebuild.hpp"

namespace flashqos::core {

using fault::RebuildItem;
using fault::RebuildPlan;
using fault::plan_rebuild;
using fault::rebuild_trace;

}  // namespace flashqos::core
