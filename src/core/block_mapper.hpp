// Data-block → design-bucket mapping (paper §IV-A).
//
// A storage system has far more data blocks than a design has buckets
// (36 for the rotated (9,3,1)). The mapper assigns data blocks to buckets
// so that blocks frequently requested together land on buckets with
// disjoint replica device sets — maximizing the chance they retrieve in
// parallel. The together-ness signal is the frequent-pair output of FIM on
// the previous interval's requests. Blocks FIM never saw fall back to the
// paper's modulo rule: bucket = block % buckets.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "decluster/allocation.hpp"
#include "fim/transaction.hpp"

namespace flashqos::core {

class BlockMapper {
 public:
  explicit BlockMapper(const decluster::AllocationScheme& scheme)
      : scheme_(scheme) {}

  /// Rebuild the FIM table from frequent pairs (highest support first gets
  /// the strongest separation). Replaces any previous table.
  void rebuild(std::span<const fim::FrequentPair> pairs);

  struct MapResult {
    BucketId bucket = 0;
    bool matched = false;  // true if the block came from the FIM table
  };

  [[nodiscard]] MapResult map(DataBlockId block) const;

  [[nodiscard]] std::size_t table_size() const noexcept { return table_.size(); }

 private:
  /// Pick the next bucket for `block`, preferring device sets disjoint from
  /// `partner_bucket` (its frequent co-requestee), scanning a small window
  /// from the round-robin cursor.
  [[nodiscard]] BucketId pick_bucket(std::optional<BucketId> partner_bucket);

  const decluster::AllocationScheme& scheme_;
  std::unordered_map<DataBlockId, BucketId> table_;
  std::vector<std::size_t> usage_;  // blocks mapped per bucket (per rebuild)
  std::size_t cursor_ = 0;
};

}  // namespace flashqos::core
