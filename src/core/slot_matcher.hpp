// Incremental bipartite matching of requests onto replica-device slots.
//
// The deterministic online admission rule is "admit only what can start
// inside the access budget right now": device d exposes
//   slots(d) = how many service quanta fit in [max(free, now), now + M·L]
// and a request is admissible iff an augmenting path assigns it (possibly
// remapping earlier admissions — the paper's "necessary remappings are
// performed" for same-instant batches).
//
// This is the replay loop's hottest structure, so one instance persists
// across the whole replay and begin_instant() re-arms it in O(1):
//  * per-device capacity is epoch-stamped and computed lazily on first
//    touch, so an instant only pays for devices its buckets replicate to
//    (O(c) per request, not O(devices) per instant);
//  * occupants live in one flat array with stride = budget (no per-device
//    vectors, no per-instant allocation once warm);
//  * the device of each admitted request is maintained during augmenting
//    (assigned_), so reading the assignment is O(1) per request instead of
//    materializing a vector per instant.
// The augmenting traversal order — free slot in replica order first, then
// evict-and-relocate over occupants in insertion order — is exactly the
// order the original per-instant implementation used, so admissions and
// device assignments are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "decluster/allocation.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace flashqos::core {

class SlotMatcher {
 public:
  /// Persistent form: construct once, begin_instant() per same-instant
  /// batch.
  explicit SlotMatcher(const decluster::AllocationScheme& scheme);

  /// One-shot form (constructs and arms for a single instant) — the
  /// original per-instant interface, kept for call sites that match once.
  SlotMatcher(const decluster::AllocationScheme& scheme,
              const std::vector<SimTime>& free_at, SimTime now, SimTime service,
              std::uint32_t budget, const std::vector<bool>& available,
              const std::vector<SimTime>* per_device = nullptr);

  /// Re-arm for a new instant. `service` is the base quantum L defining the
  /// guarantee window [now, now + M·L]. `per_device` (optional) gives each
  /// device's *effective* quantum — stretched by a latency-spike window —
  /// so a degraded device exposes fewer slots inside the same window and
  /// the admission rule stays honest about what can actually finish in
  /// time. The references must stay valid until the next begin_instant().
  void begin_instant(const std::vector<SimTime>& free_at, SimTime now,
                     SimTime service, std::uint32_t budget,
                     const std::vector<bool>& available,
                     const std::vector<SimTime>* per_device = nullptr);

  /// Try to admit one more request for `bucket`; true on success. On
  /// success the internal assignment covers every admitted request.
  [[nodiscard]] bool add(BucketId bucket);

  /// Admitted requests so far this instant.
  [[nodiscard]] std::size_t admitted() const noexcept {
    return buckets_.size();
  }

  /// Device of admitted request `r` (admission order), O(1).
  [[nodiscard]] DeviceId device_of(std::size_t r) const noexcept {
    return assigned_[r];
  }

  /// Device of each admitted request, in admission order.
  [[nodiscard]] std::vector<DeviceId> assignment() const { return assigned_; }

 private:
  /// Lazily compute `d`'s slot capacity for the current instant.
  void touch(DeviceId d);
  [[nodiscard]] bool augment(std::size_t request);

  const decluster::AllocationScheme& scheme_;
  std::uint32_t devices_;

  // Instant parameters (borrowed; see begin_instant).
  const std::vector<SimTime>* free_at_ = nullptr;
  const std::vector<bool>* available_ = nullptr;
  const std::vector<SimTime>* per_device_ = nullptr;
  SimTime now_ = 0;
  SimTime service_ = 0;
  SimTime window_end_ = 0;
  std::uint32_t budget_ = 0;

  // Epoch-stamped per-device state: valid iff cap_epoch_[d] == epoch_.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> cap_epoch_;
  std::vector<std::uint32_t> capacity_;
  std::vector<std::uint32_t> occ_count_;
  std::vector<std::uint32_t> occ_;  // flat occupants, stride = budget_

  // Per-request state for the current instant.
  std::vector<BucketId> buckets_;
  std::vector<DeviceId> assigned_;
  std::vector<std::uint64_t> visited_;  // stamp == add_stamp_ means visited
  std::uint64_t add_stamp_ = 0;
};

}  // namespace flashqos::core
