// Config-driven experiments: the DiskSim-style front end.
//
// An experiment config file describes a design, a pipeline configuration,
// a workload, and optional failures; build_experiment() materializes all
// of it and run_experiment() executes end to end. flashqos_sim is the CLI
// wrapper. Example:
//
//   [design]
//   name = (9,3,1)            ; catalog name, or sts:15 / ag:4 / pg:8 / td:3,5
//
//   [pipeline]
//   interval_ms = 0.133
//   access_budget = 1
//   retrieval = online        ; online | aligned
//   admission = deterministic ; none | deterministic | statistical
//   epsilon = 0.001           ; statistical only
//   mapping = fim             ; fim | modulo
//   scheduler = replica       ; replica | primary
//
//   [workload]
//   kind = exchange           ; exchange | tpce | synthetic | disksim | msr
//   scale = 0.5
//   seed = 42
//   write_fraction = 0.0
//   path = trace.csv          ; disksim / msr kinds
//   volumes = 9               ; file kinds
//
//   [faults]
//   seed = 1                  ; generator seed (same seed -> same windows)
//   fail = 3 10.0 50.0        ; device, fail-at ms, recover-at ms (-1 = never)
//   spike = 2 5.0 20.0 4.0    ; device, start ms, end ms, service factor
//   transient = 4 5.0         ; generated outages: count, mean duration ms
//   latency_spike = 2 5.0 4.0 ; generated spikes: count, mean ms, factor
//   rebuild = 50000           ; hot-spare rebuild pages/second (0 = off)
//   retry_timeout_ms = 10.0   ; fail stranded requests past this wait
//
// Legacy [failures] sections with the same `fail =` lines still parse into
// an equivalent fault plan. build_experiment() runs
// PipelineConfig::validate() and throws with the joined diagnostics when
// the combination is incoherent.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/qos_pipeline.hpp"
#include "util/config.hpp"

namespace flashqos::core {

struct Experiment {
  std::unique_ptr<design::BlockDesign> design;
  std::unique_ptr<decluster::AllocationScheme> scheme;
  PipelineConfig pipeline;
  trace::Trace workload;
};

/// Materialize an experiment from a parsed config. Throws
/// std::runtime_error with a readable message on unknown names or
/// inconsistent settings. For statistical admission the P_k table is
/// sampled automatically (samples configurable via [pipeline] samples).
[[nodiscard]] Experiment build_experiment(const Config& cfg);

/// Everything build_experiment() materializes except the workload (which
/// is left empty and [workload] ignored): the daemon front end
/// (service::build_service) loads its design + pipeline from the same
/// config format but takes its workload over the wire.
[[nodiscard]] Experiment build_experiment_config(const Config& cfg);

/// Build and run; returns the pipeline result.
[[nodiscard]] PipelineResult run_experiment(const Config& cfg);

/// Run a multi-configuration sweep sharded across a thread pool (0 picks
/// the hardware concurrency): building (trace generation, P_k sampling)
/// and replaying both run on the workers. results[i] is bit-identical to
/// run_experiment(cfgs[i]); if any config is invalid or a replay fails,
/// the lowest-index error is rethrown after all shards finish.
[[nodiscard]] std::vector<PipelineResult> run_experiments(
    std::span<const Config> cfgs, std::size_t threads = 0);

/// A documented template config (what flashqos_sim --template prints).
[[nodiscard]] std::string experiment_template();

}  // namespace flashqos::core
