#include "core/qos_pipeline.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <queue>

#include "core/sampler.hpp"
#include "core/slot_matcher.hpp"
#include "design/block_design.hpp"
#include "fault/injector.hpp"
#include "fim/apriori.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"
#include "retrieval/dtr.hpp"
#include "trace/cursor.hpp"
#include "util/stats.hpp"

namespace flashqos::core {

const char* to_string(RetrievalPath path) noexcept {
  switch (path) {
    case RetrievalPath::kUnset: return "unset";
    case RetrievalPath::kPrimary: return "primary";
    case RetrievalPath::kSlotMatched: return "slot_matched";
    case RetrievalPath::kSurplus: return "surplus";
    case RetrievalPath::kAlignedDtr: return "aligned_dtr";
    case RetrievalPath::kAlignedMaxFlow: return "aligned_max_flow";
    case RetrievalPath::kDegraded: return "degraded";
    case RetrievalPath::kWrite: return "write";
    case RetrievalPath::kFailed: return "failed";
    case RetrievalPath::kShed: return "shed";
  }
  return "unknown";
}

namespace {

inline constexpr std::size_t kPathCount = 10;

/// Pipeline-level registry handles, resolved once. The per-event live
/// increments (dispatches, deferrals, write replica ops) are single relaxed
/// fetch_adds; everything else is folded from the outcomes vector after the
/// replay loop finishes, so the hot loop's cost stays negligible.
struct PipelineMetrics {
  obs::Counter& requests;
  obs::Counter& reads_served;
  obs::Counter& writes;
  obs::Counter& failed;
  obs::Counter& deferred;
  obs::Counter& deadline_violations;
  obs::Counter& dispatches;
  obs::Counter& write_replica_ops;
  obs::Counter& deferral_events;
  obs::LatencyHistogram& response_ns;
  obs::LatencyHistogram& delay_ns;
  obs::LatencyHistogram& e2e_ns;
  // Per-request latency attribution (obs v2): where each served read spent
  // its life — queue (arrival → dispatch), schedule (dispatch → first
  // device access), service (first access → completion).
  obs::LatencyHistogram& stage_queue_ns;
  obs::LatencyHistogram& stage_schedule_ns;
  obs::LatencyHistogram& stage_service_ns;
  std::array<obs::Counter*, kPathCount> by_path;

  static PipelineMetrics& get() {
    static PipelineMetrics m = [] {
      auto& reg = obs::MetricRegistry::global();
      PipelineMetrics p{reg.counter("pipeline.requests"),
                        reg.counter("pipeline.reads_served"),
                        reg.counter("pipeline.writes"),
                        reg.counter("pipeline.failed"),
                        reg.counter("pipeline.deferred"),
                        reg.counter("pipeline.deadline_violations"),
                        reg.counter("pipeline.dispatches"),
                        reg.counter("pipeline.write_replica_ops"),
                        reg.counter("pipeline.deferral_events"),
                        reg.histogram("pipeline.response_ns"),
                        reg.histogram("pipeline.delay_ns"),
                        reg.histogram("pipeline.e2e_ns"),
                        reg.histogram("pipeline.stage_ns", "stage=\"queue\""),
                        reg.histogram("pipeline.stage_ns", "stage=\"schedule\""),
                        reg.histogram("pipeline.stage_ns", "stage=\"service\""),
                        {}};
      for (std::size_t i = 0; i < kPathCount; ++i) {
        const std::string label =
            std::string("path=\"") +
            to_string(static_cast<RetrievalPath>(i)) + "\"";
        p.by_path[i] = &reg.counter("pipeline.path", label);
      }
      return p;
    }();
    return m;
  }
};

/// Fault-subsystem registry handles. Tallied in replay-loop locals and
/// published once per replay, like PipelineMetrics.
struct FaultMetrics {
  obs::Counter& injected_outages;
  obs::Counter& injected_spikes;
  obs::Counter& degraded_intervals;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& rebuild_reads;
  obs::Gauge& rebuild_pending;

  static FaultMetrics& get() {
    static FaultMetrics m = [] {
      auto& reg = obs::MetricRegistry::global();
      return FaultMetrics{reg.counter("fault.injected.outages"),
                          reg.counter("fault.injected.spikes"),
                          reg.counter("fault.degraded_intervals"),
                          reg.counter("fault.retries"),
                          reg.counter("fault.timeouts"),
                          reg.counter("fault.rebuild.reads"),
                          reg.gauge("fault.rebuild.pending_reads")};
    }();
    return m;
  }
};

obs::EventDetail trace_detail(RetrievalPath path) noexcept {
  switch (path) {
    case RetrievalPath::kUnset: return obs::EventDetail::kNone;
    case RetrievalPath::kPrimary: return obs::EventDetail::kPrimary;
    case RetrievalPath::kSlotMatched: return obs::EventDetail::kSlotMatched;
    case RetrievalPath::kSurplus: return obs::EventDetail::kSurplus;
    case RetrievalPath::kAlignedDtr: return obs::EventDetail::kDtrFastPath;
    case RetrievalPath::kAlignedMaxFlow: return obs::EventDetail::kMaxFlowFallback;
    case RetrievalPath::kDegraded: return obs::EventDetail::kDegraded;
    case RetrievalPath::kWrite: return obs::EventDetail::kWrite;
    case RetrievalPath::kFailed: return obs::EventDetail::kNone;
    case RetrievalPath::kShed: return obs::EventDetail::kNone;
  }
  return obs::EventDetail::kNone;
}

/// Post-run observability fold: counters, histograms (including the
/// per-stage latency attribution), and (when tracing is on) the
/// per-request arrival → admission → retrieval spans plus one stage slice
/// per lifecycle segment. Reads the finished outcomes only — it cannot
/// perturb the replay.
/// Value→count tally for one histogram, flushed with record_n on scope
/// exit. Latency multisets here usually hold a few distinct values (fixed
/// service quanta — the flat line), so a short linear scan beats one
/// shared-atomic record() per outcome; genuinely high-cardinality series
/// blow past the cap and fall through to direct records, where the
/// histogram's overflowed-tracker fast path keeps the cost bounded.
class HistogramTally {
 public:
  explicit HistogramTally(obs::LatencyHistogram& h) : hist_(h) {}
  HistogramTally(const HistogramTally&) = delete;
  HistogramTally& operator=(const HistogramTally&) = delete;
  ~HistogramTally() {
    for (const auto& [v, n] : items_) hist_.record_n(v, n);
  }

  void add(std::int64_t v) {
    for (auto& [val, n] : items_) {
      if (val == v) {
        ++n;
        return;
      }
    }
    if (items_.size() < kCap) {
      items_.emplace_back(v, 1);
    } else {
      hist_.record(v);
    }
  }

 private:
  static constexpr std::size_t kCap = 16;
  obs::LatencyHistogram& hist_;
  std::vector<std::pair<std::int64_t, std::uint64_t>> items_;
};

/// One QoS window's in-flight tally for a windowed time-series. The replay
/// loop adds into these plain locals (no locking) and merges each non-empty
/// tally into its obs::TimeSeries exactly once, at the interval rollover —
/// all stats are the associative/commutative merges the series contract
/// requires, so this batching cannot change exported window content.
struct WindowAgg {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  SimTime first_time = 0;

  void add(SimTime at, std::int64_t value) {
    if (count == 0) {
      min = value;
      max = value;
      first_time = at;
    } else {
      min = std::min(min, value);
      max = std::max(max, value);
      first_time = std::min(first_time, at);
    }
    sum += value;
    ++count;
  }
};

/// Single-pass fold of finished outcomes into the observability registry:
/// add() takes one outcome (trace order) — counters, histogram tallies,
/// and (when tracing) that request's arrival → admission → retrieval spans
/// plus one stage slice per lifecycle segment — and publish() writes the
/// whole-run counter increments. The in-memory path folds the outcomes
/// vector through it after the replay; the streaming path folds each
/// request as it leaves the window, so registry content is identical at
/// any batch size. Streaming caveat: per-request *tracer* records then
/// interleave with the replay's kInterval records instead of trailing
/// them; registry snapshots are order-insensitive, and the stream oracle
/// keeps tracing off while comparing.
class OutcomeObsFolder {
 public:
  OutcomeObsFolder()
      : m_(PipelineMetrics::get()),
        response_(m_.response_ns),
        e2e_(m_.e2e_ns),
        delay_(m_.delay_ns),
        stage_queue_(m_.stage_queue_ns),
        stage_schedule_(m_.stage_schedule_ns),
        stage_service_(m_.stage_service_ns),
        tracer_(obs::Tracer::global()),
        trace_on_(tracer_.enabled()) {}

  void add(std::uint64_t idx, const RequestOutcome& o) {
    ++by_path_[static_cast<std::size_t>(o.path)];
    if (o.failed) {
      ++failed_;
    } else if (o.is_write) {
      ++writes_;
    } else {
      ++reads_;
      response_.add(o.response());
      e2e_.add(o.end_to_end());
      stage_queue_.add(o.dispatch - o.arrival);
      stage_schedule_.add(o.start - o.dispatch);
      stage_service_.add(o.finish - o.start);
      if (o.deferred()) {
        ++deferred_;
        delay_.add(o.delay());
      }
    }
    if (trace_on_) trace_outcome(idx, o);
  }

  void publish(std::size_t requests, std::size_t deadline_violations) {
    m_.requests.inc(requests);
    m_.reads_served.inc(reads_);
    m_.writes.inc(writes_);
    m_.failed.inc(failed_);
    m_.deferred.inc(deferred_);
    m_.deadline_violations.inc(deadline_violations);
    for (std::size_t i = 0; i < kPathCount; ++i) {
      if (by_path_[i] > 0) m_.by_path[i]->inc(by_path_[i]);
    }
  }

 private:
  void trace_outcome(std::uint64_t idx, const RequestOutcome& o) {
    const auto req = static_cast<std::int64_t>(idx);
    tracer_.record({.request = req,
                    .start = o.arrival,
                    .end = o.arrival,
                    .value = 0,
                    .device = -1,
                    .kind = obs::EventKind::kArrival,
                    .detail = obs::EventDetail::kNone});
    tracer_.record({.request = req,
                    .start = o.dispatch,
                    .end = o.dispatch,
                    .value = o.q_ppm,
                    .device = -1,
                    .kind = obs::EventKind::kAdmission,
                    .detail = o.failed      ? obs::EventDetail::kRejected
                              : o.deferred() ? obs::EventDetail::kDeferred
                                             : obs::EventDetail::kAdmitted});
    tracer_.record({.request = req,
                    .start = o.dispatch,
                    .end = o.finish,
                    .value = 0,
                    .device = o.device == kInvalidDevice
                                  ? -1
                                  : static_cast<std::int32_t>(o.device),
                    .kind = obs::EventKind::kRetrieval,
                    .detail = trace_detail(o.path)});
    // Stage slices exist only for served reads: failed/shed requests never
    // reach the device and writes follow the replication path instead.
    if (o.failed || o.is_write) return;
    tracer_.record({.request = req,
                    .start = o.arrival,
                    .end = o.dispatch,
                    .value = o.dispatch - o.arrival,
                    .device = -1,
                    .kind = obs::EventKind::kStage,
                    .detail = obs::EventDetail::kStageQueue});
    tracer_.record({.request = req,
                    .start = o.dispatch,
                    .end = o.start,
                    .value = o.start - o.dispatch,
                    .device = -1,
                    .kind = obs::EventKind::kStage,
                    .detail = obs::EventDetail::kStageSchedule});
    tracer_.record({.request = req,
                    .start = o.start,
                    .end = o.finish,
                    .value = o.finish - o.start,
                    .device = o.device == kInvalidDevice
                                  ? -1
                                  : static_cast<std::int32_t>(o.device),
                    .kind = obs::EventKind::kStage,
                    .detail = obs::EventDetail::kStageService});
  }

  PipelineMetrics& m_;
  HistogramTally response_;
  HistogramTally e2e_;
  HistogramTally delay_;
  HistogramTally stage_queue_;
  HistogramTally stage_schedule_;
  HistogramTally stage_service_;
  obs::Tracer& tracer_;
  bool trace_on_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t deferred_ = 0;
  std::array<std::uint64_t, kPathCount> by_path_{};
};

void record_outcome_observability(const PipelineResult& result) {
  OutcomeObsFolder folder;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    folder.add(i, result.outcomes[i]);
  }
  folder.publish(result.outcomes.size(), result.deadline_violations);
}

/// A request waiting for dispatch. Ordered by (dispatch time, seq); seq is
/// the trace position, so deferred requests keep FIFO priority over newer
/// arrivals at the same boundary.
struct Pending {
  SimTime dispatch = 0;
  std::uint64_t seq = 0;
  std::size_t idx = 0;  // index into trace events / outcomes

  bool operator>(const Pending& other) const noexcept {
    return dispatch != other.dispatch ? dispatch > other.dispatch : seq > other.seq;
  }
};

/// Build the FIM transaction database for one reporting-interval slice:
/// each QoS interval's distinct blocks form one transaction.
fim::TransactionDb build_transactions(const trace::Trace& t, std::size_t begin,
                                      std::size_t end, SimTime qos_interval) {
  fim::TransactionDb db;
  std::vector<fim::Item> current;
  std::int64_t current_window = -1;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& e = t.events[i];
    if (!e.is_read) continue;  // the paper mines read requests
    const std::int64_t w = e.time / qos_interval;
    if (w != current_window) {
      if (!current.empty()) db.add(std::move(current));
      current = {};
      current_window = w;
    }
    current.push_back(e.block);
  }
  if (!current.empty()) db.add(std::move(current));
  return db;
}

/// Streaming-safe interval summary: add() one outcome at a time (trace
/// order), finalize() into an IntervalReport. summarize_outcome_range is a
/// fold over this same struct, so the streaming replay's incremental
/// reports and the in-memory summarizer go through one accumulation order
/// and every derived double is bit-identical.
struct OutcomeFold {
  IntervalReport r;
  Accumulator resp, e2e, delay, write_ms;
  std::size_t matched = 0;
  std::size_t reads = 0;

  void add(const RequestOutcome& o) {
    ++r.requests;
    if (o.failed) {
      ++r.failed;
      return;  // never served: no response/delay statistics
    }
    if (o.is_write) {
      ++r.writes;
      write_ms.add(to_ms(o.end_to_end()));
      return;  // write completion tracked separately from read QoS
    }
    ++reads;
    resp.add(to_ms(o.response()));
    e2e.add(to_ms(o.end_to_end()));
    if (o.deferred()) {
      ++r.deferred;
      delay.add(to_ms(o.delay()));
    }
    if (o.fim_matched) ++matched;
  }

  [[nodiscard]] IntervalReport finalize() const {
    IntervalReport out = r;
    if (out.requests == 0) return out;
    out.avg_response_ms = resp.mean();
    out.max_response_ms = resp.max();
    out.avg_e2e_ms = e2e.mean();
    out.max_e2e_ms = e2e.max();
    out.avg_write_ms = write_ms.count() ? write_ms.mean() : 0.0;
    if (reads > 0) {
      out.pct_deferred =
          static_cast<double>(out.deferred) / static_cast<double>(reads);
      out.fim_match_rate =
          static_cast<double>(matched) / static_cast<double>(reads);
    }
    out.avg_delay_ms = delay.count() ? delay.mean() : 0.0;
    return out;
  }
};

}  // namespace

std::vector<fim::FrequentPair> mine_event_range(const trace::Trace& t,
                                                std::size_t begin, std::size_t end,
                                                SimTime qos_interval,
                                                std::uint64_t min_support) {
  const auto db = build_transactions(t, begin, end, qos_interval);
  return fim::mine_pairs_apriori(db, min_support).pairs;
}

IntervalReport summarize_outcome_range(std::span<const RequestOutcome> outcomes,
                                       std::size_t begin, std::size_t end) {
  OutcomeFold fold;
  for (std::size_t i = begin; i < end; ++i) fold.add(outcomes[i]);
  return fold.finalize();
}

namespace {

void finalize_reports(PipelineResult& result, const trace::Trace& t) {
  const auto slices = trace::report_slices(t);
  result.intervals.clear();
  result.intervals.reserve(slices.size());
  for (const auto& [begin, end] : slices) {
    result.intervals.push_back(
        summarize_outcome_range(result.outcomes, begin, end));
  }
  result.overall =
      summarize_outcome_range(result.outcomes, 0, result.outcomes.size());
}

}  // namespace

std::vector<std::string> PipelineConfig::validate(std::uint32_t devices) const {
  std::vector<std::string> out;
  if (qos_interval <= 0) out.push_back("qos_interval must be positive");
  if (access_budget < 1) {
    out.push_back("access_budget must be at least 1 (a zero budget admits nothing)");
  }
  if (service_time <= 0) out.push_back("service_time must be positive");
  if (write_latency <= 0) out.push_back("write_latency must be positive");
  if (fim_min_support < 1) out.push_back("fim_min_support must be at least 1");
  if (admission == AdmissionMode::kStatistical) {
    if (p_table.empty()) {
      out.push_back(
          "statistical admission needs a sampled p_table "
          "(core::sample_optimal_probabilities)");
    }
    for (const double p : p_table) {
      if (p < 0.0 || p > 1.0) {
        out.push_back("p_table values must be probabilities in [0, 1]");
        break;
      }
    }
    if (epsilon < 0.0 || epsilon > 1.0) out.push_back("epsilon must be in [0, 1]");
  }
  if (p_table_samples == 0) out.push_back("p_table_samples must be positive");
  for (const auto& d : faults.validate(devices)) out.push_back("faults: " + d);
  if (!tenants.empty()) {
    if (admission == AdmissionMode::kStatistical) {
      out.push_back(
          "statistical admission is not supported with a [tenants] section "
          "(the surplus rule and the WFQ share interact; use deterministic "
          "admission)");
    }
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const auto& s = tenants[i];
      const std::string who = "tenant '" + s.name + "': ";
      if (s.name.empty()) out.push_back("tenant names must be non-empty");
      if (!(s.weight > 0.0) || !std::isfinite(s.weight)) {
        out.push_back(who + "weight must be positive and finite");
      }
      if (s.queue_capacity < 1) {
        out.push_back(who + "queue_capacity must be at least 1");
      }
      if (s.mark_threshold < 1 || s.mark_threshold > s.queue_capacity) {
        out.push_back(who + "mark_threshold must be in [1, queue_capacity]");
      }
      for (std::size_t j = i + 1; j < tenants.size(); ++j) {
        if (tenants[j].name == s.name) {
          out.push_back("duplicate tenant name '" + s.name + "'");
        }
      }
    }
  }
  for (const auto& spec : slos) {
    const std::string who = "slo '" + spec.name() + "': ";
    if (const auto d = spec.validate(); !d.empty()) out.push_back(who + d);
    if (spec.tenant.empty()) continue;
    const bool known =
        std::any_of(tenants.begin(), tenants.end(),
                    [&](const TenantSpec& s) { return s.name == spec.tenant; });
    if (!known) {
      out.push_back(who + "tenant is not declared in the [tenants] section");
    }
  }
  return out;
}

QosPipeline::QosPipeline(const decluster::AllocationScheme& scheme, PipelineConfig cfg)
    : scheme_(scheme), cfg_(std::move(cfg)), retriever_(scheme_, cfg_.service_time) {
  auto diags = cfg_.validate(scheme_.devices());
  if (!cfg_.tenants.empty()) {
    // Needs the scheme (S depends on c), so it lives here, not validate().
    const std::uint64_t s_budget =
        design::guarantee_buckets(scheme_.copies(), cfg_.access_budget);
    std::uint64_t reserved = 0;
    for (const auto& ten : cfg_.tenants) reserved += ten.reservation;
    if (reserved > s_budget) {
      diags.push_back("tenant reservations (" + std::to_string(reserved) +
                      ") exceed the interval budget S=" +
                      std::to_string(s_budget));
    }
  }
  for (const auto& d : diags) {
    // flashqos-lint: allow(adhoc-logging): diagnostics before the contract abort
    std::fprintf(stderr, "flashqos: invalid pipeline config: %s\n", d.c_str());
  }
  FLASHQOS_EXPECT(diags.empty(),
                  "invalid pipeline configuration (diagnostics on stderr)");
}

PipelineResult QosPipeline::run(const trace::Trace& t, FimSource* fim) {
  auto result = replay(t, fim);
  finalize_reports(result, t);
  return result;
}

namespace {

/// Array ids for per-replica write ops and background rebuild reads —
/// anything whose completion is not a trace outcome. The base sits far
/// above any realistic trace index so the id space never collides with
/// request indices in either replay mode (the simulator breaks event ties
/// by submission sequence, never by id, so the value itself is inert).
inline constexpr std::uint64_t kBackgroundIdBase = std::uint64_t{1} << 62;

/// drain() bound that pops every queued dispatch (no real dispatch instant
/// reaches it: recovery retries and boundary wakes are finite times).
inline constexpr SimTime kDrainAll = std::numeric_limits<SimTime>::max();

/// One in-flight request of a streaming replay: the event, its outcome,
/// its WFQ lifecycle state, and how close it is to the result fold.
/// st: 0 = awaiting dispatch, 1 = dispatched to the simulator (awaiting
/// the completion cross-check), 2 = final (verified / failed / shed /
/// write). The window pops slots from the front as they reach 2, so
/// resident memory tracks the in-flight span, not the trace length.
struct StreamSlot {
  trace::TraceEvent ev;
  RequestOutcome out;
  std::uint8_t tstate = 0;
  std::uint8_t st = 0;
};

/// Wall-clock nanoseconds since `t0`, for the streaming stage histograms.
[[nodiscard]] std::int64_t stream_elapsed_ns(
    // flashqos-lint: allow(wall-clock): stage-timing metric, never a result
    std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             // flashqos-lint: allow(wall-clock): stage-timing metric only
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The replay core, shared verbatim by the in-memory and streaming entry
/// points. One instance is one replay.
///
/// In-memory (run_borrowed): events and outcomes are borrowed from the
/// Trace / PipelineResult, every event is ingested up front, and one
/// drain(kDrainAll) pops the whole dispatch queue — operation for
/// operation the historical monolithic loop.
///
/// Streaming (run_streaming): events arrive in cursor batches. After each
/// batch the engine drains dispatch instants *strictly before* the last
/// ingested arrival time: the cursor contract says every unread arrival is
/// at or after that time, so no same-instant dispatch group popped under
/// the bound can ever gain a member from unread input — which is the whole
/// identity argument. Outcomes live in a base-indexed sliding window and
/// fold into per-interval / overall reports (and the observability
/// registry) in trace order as their slots reach the final state, so the
/// folds see outcomes in exactly the order the in-memory summarizer scans
/// them and every derived double is bit-identical.
class ReplayEngine {
 public:
  ReplayEngine(const decluster::AllocationScheme& scheme, const PipelineConfig& cfg,
               retrieval::Retriever& retriever)
      : scheme_(scheme),
        cfg_(cfg),
        retriever_(retriever),
        T_(cfg.qos_interval),
        L_(cfg.service_time),
        mapper_(scheme),
        det_(scheme.copies(), cfg.access_budget),
        matcher_(scheme),
        tenant_mode_(!cfg.tenants.empty()) {}

  PipelineResult run_borrowed(const trace::Trace& t, FimSource* fim) {
    PipelineResult result;
    result.outcomes.resize(t.events.size());
    if (t.events.empty()) return result;
    FLASHQOS_EXPECT(trace::valid_trace(t), "pipeline input must be a valid trace");
    t_ = &t;
    result_ = &result;
    report_interval_ = t.report_interval;
    init(t.events.back().time + T_, /*streaming=*/false, fim);
    slices_ = trace::report_slices(t);
    if (tenant_mode_) tstate_.assign(t.events.size(), 0);

    // Seed the dispatch queue. Online mode dispatches at arrival; aligned
    // mode at the enclosing interval boundary (requests already exactly on
    // a boundary run in that interval, matching the paper's synthetic
    // setup).
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      const SimTime arrival = t.events[i].time;
      const SimTime dispatch = cfg_.retrieval == RetrievalMode::kOnline
                                   ? arrival
                                   : next_interval_start(arrival, T_);
      queue_.push(Pending{dispatch, i, i});
      result.outcomes[i].arrival = arrival;
    }
    drain(kDrainAll);
    finish_borrowed();
    return result;
  }

  StreamResult run_streaming(trace::TraceCursor& cursor, FimSource* fim,
                             const StreamOptions& opts) {
    FLASHQOS_EXPECT(opts.batch_size > 0, "stream batch size must be positive");
    report_interval_ = cursor.meta().report_interval;
    keep_intervals_ = opts.keep_intervals;
    StreamResult res;
    // Pull the first batch before any engine setup so an empty stream
    // returns an empty result with no registry side effects, exactly like
    // the in-memory early-out on an empty trace.
    std::vector<trace::TraceEvent> buf(opts.batch_size);
    std::size_t n = cursor.fill(buf);
    while (n == 0) {
      // Finite cursors are done (the historical early-out); a live cursor
      // that is merely idle blocks in fill() until input or close.
      if (cursor.exhausted()) return res;
      n = cursor.fill(buf);
    }
    if (!cfg_.faults.empty()) {
      FLASHQOS_EXPECT(opts.horizon > 0,
                      "streaming replay with a fault plan needs "
                      "StreamOptions::horizon (the fault schedule compiles "
                      "before the trace length is known)");
    }
    init(opts.horizon, /*streaming=*/true, fim);
    sink_ = opts.sink;
    obs::LatencyHistogram* ingest_ns = nullptr;
    obs::LatencyHistogram* drain_ns = nullptr;
    if constexpr (obs::kEnabled) {
      auto& reg = obs::MetricRegistry::global();
      ingest_ns = &reg.histogram("pipeline.interval_ns", "stage=\"ingest\"");
      drain_ns = &reg.histogram("pipeline.interval_ns", "stage=\"drain\"");
    }
    // Read-ahead identity rule: every unread arrival has time >= the last
    // ingested event's time AND >= the cursor's declared frontier, so
    // dispatch instants strictly before max(last, frontier) can never gain
    // same-instant members from unread input. Finite cursors promise
    // nothing (frontier() == 0) and the bound degenerates to the historical
    // last-ingested-arrival rule, bit for bit. The misdrain knob seeds the
    // off-by-one defect (<= instead of <): groups dispatching exactly at
    // the ingestion frontier are processed before later batches deliver
    // their same-instant members, splitting bursts — the stream oracle
    // proves it would notice a broken bound. (The defect must stay
    // clock-safe: draining further ahead would advance the simulator past
    // arrivals that have not been ingested yet and trip the submit
    // precondition instead of producing a comparable divergence.)
    const auto drain_step = [&] {
      const SimTime clock = std::max(last_time_, cursor.frontier());
      SimTime bound = clock;
      if (opts.misdrain_for_test) bound += 1;
      advance_fim_frontier(bound);
      // flashqos-lint: allow(wall-clock): stage-timing metric, never a result
      const auto t0 = std::chrono::steady_clock::now();
      drain(bound);
      // Verdict liveness for live streams: with the dispatch queue empty
      // the simulator's clock would otherwise stall at the last dispatch
      // instant, holding every in-flight completion hostage until end of
      // stream. The cursor contract makes `clock` safe: no unread arrival
      // (hence no future dispatch or simulator event) lies below it. The
      // misdrain knob must not leak in here — its +1 would advance the
      // simulator past arrivals not yet ingested and trip the submit
      // precondition instead of producing a comparable divergence.
      array_->run_until(clock);
      absorb_completions();
      if constexpr (obs::kEnabled) drain_ns->record(stream_elapsed_ns(t0));
    };
    while (n > 0) {
      // flashqos-lint: allow(wall-clock): stage-timing metric, never a result
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; ++i) ingest_event(buf[i]);
      if constexpr (obs::kEnabled) ingest_ns->record(stream_elapsed_ns(t0));
      drain_step();
      n = cursor.fill(buf);
      while (n == 0 && !cursor.exhausted()) {
        // Live stream, momentarily empty: the frontier may have advanced
        // (a flush) with no new events, so re-drain before blocking again.
        drain_step();
        n = cursor.fill(buf);
      }
    }
    finish_ingest();
    drain(kDrainAll);
    return finish_streaming();
  }

 private:
  // ---- mode indirection --------------------------------------------------
  // Request state lives in the borrowed trace/result in in-memory mode and
  // in the sliding window in streaming mode; everything below the accessors
  // is mode-blind.

  [[nodiscard]] const trace::TraceEvent& ev(std::size_t i) const {
    return streaming_ ? win_[i - win_base_].ev : t_->events[i];
  }
  [[nodiscard]] RequestOutcome& out(std::size_t i) {
    return streaming_ ? win_[i - win_base_].out : result_->outcomes[i];
  }
  [[nodiscard]] std::uint8_t& tst(std::size_t i) {
    return streaming_ ? win_[i - win_base_].tstate : tstate_[i];
  }
  /// The request reached a final state with no pending simulator
  /// cross-check (failed / shed / write).
  void mark_final(std::size_t i) {
    if (streaming_) win_[i - win_base_].st = 2;
  }
  /// The request was submitted to the simulator; final once its completion
  /// is cross-checked in absorb_completions().
  void mark_dispatched(std::size_t i) {
    if (streaming_) win_[i - win_base_].st = 1;
  }

  // ---- setup -------------------------------------------------------------

  void init(SimTime horizon, bool streaming, FimSource* fim) {
    streaming_ = streaming;
    fim_ = fim;
    if (cfg_.admission == AdmissionMode::kStatistical) {
      stat_.emplace(cfg_.p_table, det_.limit(), cfg_.epsilon);
    }
    if (tenant_mode_) ts_.emplace(cfg_.tenants, det_.limit(), cfg_.wfq_knobs);
    if constexpr (obs::kEnabled) {
      if (tenant_mode_) {
        auto& reg = obs::MetricRegistry::global();
        depth_hist_.reserve(cfg_.tenants.size());
        for (const auto& s : cfg_.tenants) {
          depth_hist_.push_back(
              &reg.histogram("wfq.queue_depth", "tenant=\"" + s.name + "\""));
        }
      }
      auto& tsr = obs::TimeSeriesRegistry::global();
      const auto series = [&](const char* name, const std::string& labels = {}) {
        return &tsr.series(name, labels, T_);
      };
      win_reads_ = series("win.reads");
      win_writes_ = series("win.writes");
      win_failed_ = series("win.failed");
      win_degraded_ = series("win.degraded");
      win_response_ = series("win.response_ns");
      if (stat_.has_value()) win_q_ = series("win.q_ppm");
      win_device_.reserve(scheme_.devices());
      agg_device_.resize(scheme_.devices());
      for (DeviceId d = 0; d < scheme_.devices(); ++d) {
        win_device_.push_back(
            series("win.device.reads", "device=\"" + std::to_string(d) + "\""));
      }
      if (tenant_mode_) {
        win_shed_ = series("win.shed");
        agg_tenant_reads_.resize(cfg_.tenants.size());
        agg_tenant_shed_.resize(cfg_.tenants.size());
        for (const auto& s : cfg_.tenants) {
          const std::string label = "tenant=\"" + s.name + "\"";
          win_tenant_reads_.push_back(series("win.tenant.reads", label));
          win_tenant_shed_.push_back(series("win.tenant.shed", label));
        }
      }
      if (!cfg_.slos.empty()) {
        obs::SloMonitor::global().configure(cfg_.slos);
        slo_tallies_.reserve(cfg_.slos.size());
        for (const auto& spec : cfg_.slos) {
          std::int32_t tid = -1;
          for (std::size_t k = 0; k < cfg_.tenants.size(); ++k) {
            if (cfg_.tenants[k].name == spec.tenant) {
              tid = static_cast<std::int32_t>(k);
            }
          }
          slo_tallies_.push_back({spec.kind, spec.threshold_ns, tid, 0, 0});
        }
      }
      if (streaming_) obs_folder_.emplace();
    }

    // Fault state. The compiled plan is a pure function of (plan, scheme,
    // horizon), so the serial engine and every parallel shard materialize
    // identical fault schedules — serial ≡ parallel bit-identity holds
    // under any plan. An empty plan takes none of the fault branches.
    injector_.emplace(cfg_.faults, scheme_, horizon);
    faults_active_ = injector_->active();
    retry_timeout_ = injector_->compiled().retry_timeout;
    det_limit_now_ = det_.limit();

    array_.emplace(scheme_.devices(),
                   std::make_shared<flashsim::FixedLatencyModel>(
                       L_, cfg_.write_latency));
    free_at_.assign(scheme_.devices(), 0);
    if constexpr (obs::kEnabled) {
      if (injector_->rebuild_reads_total() > 0) {
        FaultMetrics::get().rebuild_pending.add(
            static_cast<std::int64_t>(injector_->rebuild_reads_total()));
      }
    }
  }

  // ---- streaming ingestion -----------------------------------------------

  void ingest_event(const trace::TraceEvent& e) {
    FLASHQOS_EXPECT(e.time >= last_time_ && e.time >= 0,
                    "stream cursor must yield time-sorted events");
    last_time_ = e.time;
    const auto idx = static_cast<std::size_t>(ingested_++);
    win_.push_back(StreamSlot{e, RequestOutcome{}, 0, 0});
    win_.back().out.arrival = e.time;
    const SimTime dispatch = cfg_.retrieval == RetrievalMode::kOnline
                                 ? e.time
                                 : next_interval_start(e.time, T_);
    queue_.push(Pending{dispatch, idx, idx});
    if (cfg_.mapping == MappingMode::kFim && report_interval_ > 0 &&
        fim_ == nullptr) {
      ingest_fim(e);
    }
  }

  /// Incremental build of the per-reporting-slice FIM transaction
  /// databases — the streaming twin of build_transactions(): transactions
  /// cut at QoS-window changes AND at slice boundaries, reads only, block
  /// ids in event order. A slice's database is complete once any event of
  /// a later slice has been ingested (events are time-sorted), which the
  /// drain bound guarantees before the mapper ever asks for it.
  void ingest_fim(const trace::TraceEvent& e) {
    if (slice_dbs_.empty()) slice_dbs_.emplace_back();
    const auto s = static_cast<std::size_t>(e.time / report_interval_);
    while (fim_slice_ < s) close_fim_slice();
    if (!e.is_read) return;  // the paper mines read requests
    const std::int64_t w = e.time / T_;
    if (w != fim_window_) {
      flush_fim_tx();
      fim_window_ = w;
    }
    fim_tx_.push_back(e.block);
  }

  void flush_fim_tx() {
    if (!fim_tx_.empty()) {
      slice_dbs_.back().add(std::move(fim_tx_));
      fim_tx_ = {};
    }
  }

  void close_fim_slice() {
    flush_fim_tx();
    fim_window_ = -1;  // a window never straddles a slice boundary
    slice_dbs_.emplace_back();
    ++fim_slice_;
  }

  /// Close every FIM slice that ends at or below the drain bound: events
  /// already ingested are <= last_time_ and unread ones are >= the cursor
  /// frontier, so such a slice can never gain another transaction. For
  /// finite cursors (frontier 0) the bound is the last ingested arrival
  /// and ingestion has already closed those slices — a strict no-op, which
  /// is what keeps the historical streaming path bit-identical. Only a
  /// live cursor whose frontier outruns its events closes (possibly
  /// empty) slices here; if such a stream ends before events reach the
  /// frontier, mining may have seen empty slices the in-memory
  /// materialization would not contain, so live producers that need exact
  /// replay identity must keep the frontier at or below the final event
  /// time (the daemon oracle does).
  void advance_fim_frontier(SimTime bound) {
    if (cfg_.mapping != MappingMode::kFim || report_interval_ == 0 ||
        fim_ != nullptr || slice_dbs_.empty()) {
      return;
    }
    while (static_cast<SimTime>(fim_slice_ + 1) * report_interval_ <= bound) {
      close_fim_slice();
    }
  }

  [[nodiscard]] fim::TransactionDb take_slice_db(
      [[maybe_unused]] std::size_t idx) {
    FLASHQOS_ASSERT(idx == slice_db_base_ && !slice_dbs_.empty(),
                    "FIM slices mine in order off the ingested prefix");
    auto db = std::move(slice_dbs_.front());
    slice_dbs_.pop_front();
    ++slice_db_base_;
    return db;
  }

  /// End of stream: flush the trailing transaction and fix the reporting
  /// slice count, after which drain(kDrainAll) may mine every slice.
  void finish_ingest() {
    if (!slice_dbs_.empty()) flush_fim_tx();
    slices_total_ = report_interval_ > 0
                        ? static_cast<std::size_t>(last_time_ / report_interval_) + 1
                        : 0;
    eof_ = true;
  }

  /// Reporting slices the FIM rollover may mine right now. Pre-EOF the
  /// rollover target now/RI can never overshoot the ingested prefix (now
  /// is strictly below the last ingested arrival), so the cap only has to
  /// bind once the stream length is known.
  [[nodiscard]] std::size_t total_slices() const {
    if (!streaming_) return slices_.size();
    return eof_ ? slices_total_ : std::numeric_limits<std::size_t>::max();
  }

  // ---- streaming result fold ---------------------------------------------

  /// Cross-check the simulator's completions against the dispatch model
  /// (the same assertion the in-memory path runs once at the end) and pop
  /// every finalized slot off the window front, folding outcomes into the
  /// reports and the observability registry in trace order.
  void absorb_completions() {
    for (const auto& c : array_->take_completions()) {
      if (c.id >= kBackgroundIdBase) continue;  // write replica / rebuild op
      auto& s = win_[c.id - win_base_];
      FLASHQOS_ASSERT(s.out.start == c.start && s.out.finish == c.finish,
                      "pipeline dispatch model diverged from the simulator");
      s.st = 2;
    }
    while (!win_.empty() && win_.front().st == 2) {
      fold_outcome(win_base_, win_.front());
      win_.pop_front();
      ++win_base_;
    }
  }

  void fold_outcome(std::uint64_t idx, const StreamSlot& s) {
    if (sink_ != nullptr) sink_->on_outcome(idx, s.ev, s.out);
    overall_fold_.add(s.out);
    if (report_interval_ > 0 && keep_intervals_) {
      const auto slice = static_cast<std::size_t>(s.ev.time / report_interval_);
      if (interval_folds_.size() <= slice) interval_folds_.resize(slice + 1);
      interval_folds_[slice].add(s.out);
    }
    if (!s.out.failed && !s.out.is_write && s.out.response() > cfg_.qos_interval) {
      ++deadline_violations_;
    }
    if constexpr (obs::kEnabled) obs_folder_->add(idx, s.out);
  }

  // ---- dispatch core -----------------------------------------------------

  /// Pop every dispatch group at instants strictly before `bound`.
  void drain(SimTime bound) {
    while (!queue_.empty() && queue_.top().dispatch < bound) {
      process_group();
      if (streaming_) absorb_completions();
    }
  }

  /// Merge every non-empty window tally into its series and feed the SLO
  /// monitor one sample per spec. Called with the window index that just
  /// closed; windows with no dispatch instants are simply never flushed
  /// (they hold no data and contribute no SLO sample).
  void flush_windows(std::int64_t window) {
    const auto fl = [&](obs::TimeSeries* s, WindowAgg& a) {
      if (s == nullptr || a.count == 0) return;
      s->merge(window, a.first_time, a.sum, a.count, a.min, a.max);
      a = WindowAgg{};
    };
    fl(win_reads_, agg_reads_);
    fl(win_writes_, agg_writes_);
    fl(win_shed_, agg_shed_);
    fl(win_failed_, agg_failed_);
    fl(win_degraded_, agg_degraded_);
    fl(win_response_, agg_response_);
    fl(win_q_, agg_q_);
    for (std::size_t d = 0; d < win_device_.size(); ++d) {
      fl(win_device_[d], agg_device_[d]);
    }
    for (std::size_t k = 0; k < win_tenant_reads_.size(); ++k) {
      fl(win_tenant_reads_[k], agg_tenant_reads_[k]);
      fl(win_tenant_shed_[k], agg_tenant_shed_[k]);
    }
    for (std::size_t si = 0; si < slo_tallies_.size(); ++si) {
      auto& st = slo_tallies_[si];
      obs::SloMonitor::global().record(si, window, st.total, st.bad);
      st.total = 0;
      st.bad = 0;
    }
  }

  /// Deterministic admission against the *live* budget (S while healthy,
  /// S' while degraded). DeterministicAdmission itself stays fixed at S;
  /// only this wrapper tracks the adaptive limit.
  [[nodiscard]] std::uint64_t accept_det(std::uint64_t already,
                                         std::uint64_t count) const {
    return already >= det_limit_now_
               ? 0
               : std::min<std::uint64_t>(count, det_limit_now_ - already);
  }

  /// Adaptive degraded-mode budgets. While devices are down, deterministic
  /// admission runs against the surviving sub-design's guarantee
  /// S' = (c-f-1)M² + (c-f)M (f = worst-case dead replicas over buckets
  /// that still have a live copy) and statistical admission re-derives Q
  /// from a P_k table sampled on the degraded array. Recomputed whenever
  /// the down-set changes; tables are memoized per mask.
  void update_budgets() {
    if (down_mask_.empty()) {
      det_limit_now_ = det_.limit();
      if (stat_.has_value()) stat_->set_budget(det_.limit(), cfg_.p_table);
      if (tenant_mode_) ts_->set_live_budget(det_limit_now_);
      return;
    }
    std::uint32_t f = 0;
    for (BucketId b = 0; b < scheme_.buckets(); ++b) {
      std::uint32_t dead = 0;
      std::uint32_t alive = 0;
      for (const auto d : scheme_.replicas(b)) {
        if (down_mask_[d]) {
          ++alive;
        } else {
          ++dead;
        }
      }
      if (alive > 0) f = std::max(f, dead);
    }
    const std::uint32_t c_eff = scheme_.copies() > f ? scheme_.copies() - f : 1;
    det_limit_now_ = design::guarantee_buckets(c_eff, cfg_.access_budget);
    if (stat_.has_value()) {
      auto [it, fresh] = degraded_tables_.try_emplace(down_mask_);
      if (fresh) {
        const auto max_k = static_cast<std::uint32_t>(cfg_.p_table.size() - 1);
        it->second = sample_optimal_probabilities(
            scheme_, max_k,
            {.samples_per_size = cfg_.p_table_samples,
             .seed = cfg_.p_table_seed,
             .threads = 1},
            down_mask_);
      }
      stat_->set_budget(det_limit_now_, it->second);
    }
    if (tenant_mode_) ts_->set_live_budget(det_limit_now_);
  }

  /// Effective read service on `dev` for a read starting at `at`: the base
  /// quantum stretched by any covering latency-spike window. Passed to the
  /// simulator as a per-request override so the dispatch model and the
  /// event simulator agree exactly.
  [[nodiscard]] SimTime read_service(DeviceId dev, SimTime at) const {
    if (!faults_active_) return L_;
    const double factor = injector_->service_multiplier(dev, at);
    if (factor == 1.0) return L_;
    return std::max<SimTime>(
        1, static_cast<SimTime>(std::llround(static_cast<double>(L_) * factor)));
  }

  void dispatch_request(std::size_t idx, DeviceId dev, SimTime start) {
    const SimTime svc = read_service(dev, start);
    array_->submit(flashsim::IoRequest{.id = idx,
                                       .device = dev,
                                       .submit_time = start,
                                       .pages = 1,
                                       .service_override =
                                           faults_active_ ? svc : SimTime{0}});
    auto& o = out(idx);
    o.device = dev;
    o.start = start;
    o.finish = start + svc;
    free_at_[dev] = std::max(free_at_[dev], o.finish);
    mark_dispatched(idx);
    if constexpr (obs::kEnabled) {
      ++dispatches_tally_;
      // Window tallies key on the dispatch instant (== the loop's `now` at
      // every call site), which always lies in the open QoS window.
      const SimTime at = o.dispatch;
      const std::int64_t resp = o.finish - o.dispatch;
      agg_reads_.add(at, 1);
      agg_response_.add(at, resp);
      agg_device_[dev].add(at, 1);
      if (win_q_ != nullptr) agg_q_.add(at, o.q_ppm);
      if (o.path == RetrievalPath::kDegraded) agg_degraded_.add(at, 1);
      if (tenant_mode_) {
        agg_tenant_reads_[static_cast<std::size_t>(o.tenant)].add(at, 1);
      }
      for (auto& st : slo_tallies_) {
        if (st.kind == obs::SloKind::kAdmissionFloor) continue;
        if (st.tenant >= 0 &&
            static_cast<std::uint32_t>(st.tenant) != o.tenant) {
          continue;
        }
        ++st.total;
        if (resp > st.threshold_ns) ++st.bad;
      }
    }
  }

  /// Hot-spare rebuild reads are paced background work: submitted to the
  /// simulator like foreground dispatches (they occupy real device time, so
  /// the dispatch model folds them into free_at), but their completions are
  /// not trace outcomes.
  void submit_rebuild_due(SimTime now) {
    const auto due = injector_->take_rebuild_due(now);
    for (const auto& rr : due) {
      const SimTime start = std::max(free_at_[rr.source], rr.time);
      const SimTime svc = read_service(rr.source, start);
      array_->submit(flashsim::IoRequest{.id = next_background_op_++,
                                         .device = rr.source,
                                         .submit_time = start,
                                         .pages = 1,
                                         .service_override = svc});
      free_at_[rr.source] = start + svc;
    }
    if constexpr (obs::kEnabled) {
      if (!due.empty()) {
        auto& fm = FaultMetrics::get();
        fm.rebuild_reads.inc(due.size());
        fm.rebuild_pending.add(-static_cast<std::int64_t>(due.size()));
      }
    }
  }

  /// One same-instant dispatch group: pop it, roll the FIM/QoS intervals
  /// forward, and run the admission/scheduling paths. Exactly the body of
  /// the historical monolithic while-loop, with locals promoted to members
  /// so a streaming replay can interleave ingestion between groups.
  void process_group() {
    const SimTime now = queue_.top().dispatch;
    group_.clear();
    while (!queue_.empty() && queue_.top().dispatch == now) {
      group_.push_back(queue_.top());
      queue_.pop();
    }
    if (tenant_mode_) {
      // Drop stale wakes: requests dispensed (or failed) at an earlier
      // instant while their boundary wake was still pending.
      std::erase_if(group_,
                    [&](const Pending& g) { return tst(g.idx) == 2; });
    }
    if (faults_active_) submit_rebuild_due(now);
    array_->run_until(now);

    // Reporting-interval rollover: rebuild the FIM mapping from the slice
    // that just closed (paper: "we use the trace one previous than the
    // current interval for mining").
    if (cfg_.mapping == MappingMode::kFim && report_interval_ > 0) {
      const auto target = static_cast<std::size_t>(now / report_interval_);
      while (report_idx_ < target && report_idx_ < total_slices()) {
        if (fim_ != nullptr) {
          mapper_.rebuild(fim_->slice(report_idx_));
        } else if (streaming_) {
          mapper_.rebuild(
              fim::mine_pairs_apriori(take_slice_db(report_idx_),
                                      cfg_.fim_min_support)
                  .pairs);
        } else {
          const auto [begin, end] = slices_[report_idx_];
          mapper_.rebuild(
              mine_event_range(*t_, begin, end, T_, cfg_.fim_min_support));
        }
        ++report_idx_;
      }
    }

    // QoS interval rollover: reset the admission budget.
    const std::int64_t qi = now / T_;
    if (qi != current_qi_) {
      if (stat_.has_value() && current_qi_ >= 0) {
        stat_->end_interval(demand_, admitted_);
      }
      if constexpr (obs::kEnabled) {
        if (current_qi_ >= 0) {
          obs::Tracer::global().record(
              {.request = -1,
               .start = now,
               .end = now,
               .value = static_cast<std::int64_t>(admitted_),
               .device = -1,
               .kind = obs::EventKind::kInterval,
               .detail = obs::EventDetail::kNone});
          flush_windows(current_qi_);
        }
      }
      current_qi_ = qi;
      admitted_ = 0;
      demand_ = 0;
      if (tenant_mode_) {
        // Depth sampled at the boundary = backlog carried across it.
        ts_->observe_depths();
        if constexpr (obs::kEnabled) {
          for (std::size_t k = 0; k < depth_hist_.size(); ++k) {
            depth_hist_[k]->record(static_cast<std::int64_t>(ts_->depth(k)));
          }
        }
        ts_->begin_interval(det_limit_now_);
      }
    }
    // Q estimate for this interval (constant between end_interval calls);
    // recorded on every outcome dispatched at this instant.
    const auto q_ppm =
        stat_.has_value()
            ? static_cast<std::int32_t>(std::llround(stat_->q_with() * 1e6))
            : 0;
    for (const auto& g : group_) {
      if (ev(g.idx).is_read) ++demand_;  // writes bypass read admission
    }

    // Resolve buckets through the mapper; record dispatch tentatively (a
    // deferred request's outcome is overwritten on its next pass).
    buckets_.resize(group_.size());
    for (std::size_t i = 0; i < group_.size(); ++i) {
      const auto m = mapper_.map(ev(group_[i].idx).block);
      buckets_[i] = m.bucket;
      auto& o = out(group_[i].idx);
      o.dispatch = now;
      o.fim_matched = cfg_.mapping == MappingMode::kFim && m.matched;
      o.q_ppm = q_ppm;
      o.tenant = ev(group_[i].idx).tenant;
    }

    const auto defer = [&](const Pending& p) {
      Pending d = p;
      d.dispatch = (qi + 1) * T_;
      queue_.push(d);
      if constexpr (obs::kEnabled) ++deferrals_tally_;
    };

    // Device availability at this instant. Requests whose replicas are all
    // down either wait for the earliest recovery (re-queued with retry
    // accounting) or are marked failed — when no replica ever comes back,
    // or when the wait would blow the plan's retry timeout. (`available`
    // stays empty — meaning all-up — while zero devices are down, so a
    // fully recovered array is indistinguishable from a healthy one.)
    if (faults_active_) {
      const std::uint32_t down =
          injector_->fill_availability(now, scheme_.devices(), mask_scratch_);
      if (down == 0) {
        available_.clear();
      } else {
        available_ = mask_scratch_;
      }
      if (available_ != down_mask_) {
        down_mask_ = available_;
        update_budgets();
      }
      if (down > 0) {
        if (qi != last_degraded_qi_) {
          ++degraded_interval_tally_;
          last_degraded_qi_ = qi;
        }
        live_.clear();
        live_buckets_.clear();
        for (std::size_t i = 0; i < group_.size(); ++i) {
          if (tenant_mode_ && ev(group_[i].idx).is_read) {
            // Reads pass through: stranded heads are handled at dispense
            // time (strand_check below), where the WFQ queue can drop
            // them; failing them here would leave stale queue entries.
            live_.push_back(group_[i]);
            live_buckets_.push_back(buckets_[i]);
            continue;
          }
          const auto reps = scheme_.replicas(buckets_[i]);
          if (std::any_of(reps.begin(), reps.end(),
                          [&](DeviceId d) { return available_[d]; })) {
            live_.push_back(group_[i]);
            live_buckets_.push_back(buckets_[i]);
            continue;
          }
          // Stranded: earliest instant any replica is up again (chasing
          // chained windows), pushed out to the next interval boundary.
          SimTime recovery = DeviceFailure::kNeverRecovers;
          for (const auto d : reps) {
            recovery = std::min(recovery, injector_->device_up_at(d, now));
          }
          auto& o = out(group_[i].idx);
          SimTime next_dispatch = 0;
          if (recovery != DeviceFailure::kNeverRecovers) {
            next_dispatch =
                std::max((qi + 1) * T_, next_interval_start(recovery, T_));
          }
          const bool timed_out =
              recovery != DeviceFailure::kNeverRecovers &&
              retry_timeout_ != fault::RetryPolicy::kNoTimeout &&
              next_dispatch - o.arrival > retry_timeout_;
          if (recovery == DeviceFailure::kNeverRecovers || timed_out) {
            o.failed = true;
            o.start = now;
            o.finish = now;
            o.path = RetrievalPath::kFailed;
            if (timed_out) ++timeouts_tally_;
            if constexpr (obs::kEnabled) agg_failed_.add(now, 1);
            mark_final(group_[i].idx);
            continue;
          }
          Pending p = group_[i];
          p.dispatch = next_dispatch;
          queue_.push(p);
          ++retries_tally_;
        }
        std::swap(group_, live_);
        std::swap(buckets_, live_buckets_);
        // Tenant mode proceeds even with an empty group: queued backlog
        // may still be dispensable at this instant.
        if (group_.empty() && !tenant_mode_) return;
      }
    }

    // Writes (extension): replicate the program to every live copy. They
    // bypass read admission, but the device time they consume is real — the
    // matcher sees the updated free times and defers reads accordingly.
    // Processed before the group's reads (pessimistic for read QoS).
    {
      reads_.clear();
      read_buckets_.clear();
      bool any_write = false;
      for (std::size_t i = 0; i < group_.size(); ++i) {
        if (ev(group_[i].idx).is_read) {
          reads_.push_back(group_[i]);
          read_buckets_.push_back(buckets_[i]);
          continue;
        }
        any_write = true;
        auto& o = out(group_[i].idx);
        o.is_write = true;
        o.path = RetrievalPath::kWrite;
        SimTime first_start = INT64_MAX;
        SimTime last_finish = 0;
        DeviceId first_dev = kInvalidDevice;
        for (const auto dev : scheme_.replicas(buckets_[i])) {
          if (!available_.empty() && !available_[dev]) continue;
          const SimTime start = std::max(free_at_[dev], now);
          const SimTime finish = start + cfg_.write_latency;
          array_->submit(flashsim::IoRequest{.id = next_background_op_++,
                                             .device = dev,
                                             .submit_time = now,
                                             .pages = 1,
                                             .is_write = true});
          if constexpr (obs::kEnabled) ++write_ops_tally_;
          free_at_[dev] = finish;
          if (start < first_start) {
            first_start = start;
            first_dev = dev;
          }
          last_finish = std::max(last_finish, finish);
        }
        FLASHQOS_ASSERT(first_dev != kInvalidDevice, "filter left a dead write");
        o.device = first_dev;
        o.start = first_start;
        o.finish = last_finish;
        if constexpr (obs::kEnabled) agg_writes_.add(now, 1);
        mark_final(group_[i].idx);
      }
      if (any_write) {
        std::swap(group_, reads_);
        std::swap(buckets_, read_buckets_);
        if (group_.empty() && !tenant_mode_) return;
      }
    }

    // Multi-tenant WFQ front end: fresh reads join their tenant queue
    // (mark/shed backpressure applied at enqueue), then the scheduler
    // dispenses the live budget across backlogged tenants in virtual-
    // finish-time order, reservations honored as floors. The Pending
    // queue doubles as the wake clock — every still-queued request holds
    // exactly one wake at the next interval boundary, so backlog keeps
    // draining after the last arrival and every request reaches a final
    // state (dispatched, shed, or failed).
    if (tenant_mode_) {
      for (std::size_t i = 0; i < group_.size(); ++i) {
        const std::size_t id = group_[i].idx;
        if (tst(id) != 0) continue;  // a wake, already in its FIFO
        auto& o = out(id);
        const auto tid = static_cast<std::size_t>(ev(id).tenant);
        if constexpr (obs::kEnabled) {
          // Admission-floor SLOs count every fresh enqueue attempt; sheds
          // below add the bad half.
          for (auto& st : slo_tallies_) {
            if (st.kind != obs::SloKind::kAdmissionFloor) continue;
            if (st.tenant >= 0 && static_cast<std::size_t>(st.tenant) != tid) {
              continue;
            }
            ++st.total;
          }
        }
        switch (ts_->enqueue(tid, id)) {
          case WfqQueues::Enqueue::kShed:
            // Hard backpressure: dropped at the front end, never queued.
            // Finalized at the arrival instant so shed requests cannot
            // distort the latency populations.
            o.dispatch = now;
            o.start = now;
            o.finish = now;
            o.failed = true;
            o.path = RetrievalPath::kShed;
            tst(id) = 2;
            mark_final(id);
            if constexpr (obs::kEnabled) {
              agg_shed_.add(now, 1);
              agg_tenant_shed_[tid].add(now, 1);
              for (auto& st : slo_tallies_) {
                if (st.kind != obs::SloKind::kAdmissionFloor) continue;
                if (st.tenant >= 0 &&
                    static_cast<std::size_t>(st.tenant) != tid) {
                  continue;
                }
                ++st.bad;
              }
            }
            break;
          case WfqQueues::Enqueue::kMarked:
            o.wfq_marked = true;
            [[fallthrough]];
          case WfqQueues::Enqueue::kAccepted:
            tst(id) = 1;
            break;
        }
      }

      const bool unlimited = cfg_.admission == AdmissionMode::kNone;
      tenant_blocked_.assign(ts_->tenants(), false);

      // Head with every replica down right now: 0 = servable, 1 = wait
      // (tenant blocked this instant; its wake retries at the boundary),
      // 2 = failed and removed from its queue.
      const auto strand_check = [&](std::size_t tid, std::uint64_t id,
                                    BucketId bucket) -> int {
        if (available_.empty()) return 0;
        const auto reps = scheme_.replicas(bucket);
        if (std::any_of(reps.begin(), reps.end(),
                        [&](DeviceId d) { return available_[d]; })) {
          return 0;
        }
        SimTime recovery = DeviceFailure::kNeverRecovers;
        for (const auto d : reps) {
          recovery = std::min(recovery, injector_->device_up_at(d, now));
        }
        auto& o = out(id);
        SimTime next_dispatch = 0;
        if (recovery != DeviceFailure::kNeverRecovers) {
          next_dispatch =
              std::max((qi + 1) * T_, next_interval_start(recovery, T_));
        }
        const bool timed_out =
            recovery != DeviceFailure::kNeverRecovers &&
            retry_timeout_ != fault::RetryPolicy::kNoTimeout &&
            next_dispatch - o.arrival > retry_timeout_;
        if (recovery == DeviceFailure::kNeverRecovers || timed_out) {
          ts_->drop_head(tid);
          o.dispatch = now;
          o.start = now;
          o.finish = now;
          o.failed = true;
          o.path = RetrievalPath::kFailed;
          if (timed_out) ++timeouts_tally_;
          tst(id) = 2;
          mark_final(id);
          if constexpr (obs::kEnabled) agg_failed_.add(now, 1);
          return 2;
        }
        tenant_blocked_[tid] = true;
        return 1;
      };

      // Dispatch metadata shared by every dispense site. The dispatch
      // instant is when the scheduler releases the request — delay and
      // deferral semantics match the single-tenant admission path.
      const auto dispense_meta = [&](std::uint64_t id, bool matched) {
        auto& o = out(id);
        o.dispatch = now;
        o.fim_matched = cfg_.mapping == MappingMode::kFim && matched;
        o.q_ppm = 0;
      };

      if (cfg_.scheduler == SchedulerMode::kPrimaryOnly) {
        while (const auto tid =
                   ts_->next_candidate(tenant_blocked_, unlimited)) {
          const std::uint64_t id = ts_->head(*tid);
          if (tst(id) == 2) {
            ts_->drop_head(*tid);
            continue;
          }
          const auto m = mapper_.map(ev(id).block);
          if (strand_check(*tid, id, m.bucket) != 0) continue;
          ts_->pop(*tid, unlimited);
          ++admitted_;
          dispense_meta(id, m.matched);
          tst(id) = 2;
          DeviceId dev = kInvalidDevice;
          for (const auto d : scheme_.replicas(m.bucket)) {
            if (available_.empty() || available_[d]) {
              dev = d;
              break;
            }
          }
          FLASHQOS_ASSERT(dev != kInvalidDevice,
                          "strand check left a dead head");
          out(id).path = RetrievalPath::kPrimary;
          dispatch_request(id, dev, std::max(free_at_[dev], now));
        }
      } else if (cfg_.retrieval == RetrievalMode::kIntervalAligned) {
        // Batch path: dispense by budget in VFT order, then schedule the
        // whole batch with DTR + max-flow exactly like the single-tenant
        // aligned path.
        aligned_ids_.clear();
        aligned_buckets_.clear();
        while (const auto tid =
                   ts_->next_candidate(tenant_blocked_, unlimited)) {
          const std::uint64_t id = ts_->head(*tid);
          if (tst(id) == 2) {
            ts_->drop_head(*tid);
            continue;
          }
          const auto m = mapper_.map(ev(id).block);
          if (strand_check(*tid, id, m.bucket) != 0) continue;
          ts_->pop(*tid, unlimited);
          ++admitted_;
          dispense_meta(id, m.matched);
          tst(id) = 2;
          aligned_ids_.push_back(id);
          aligned_buckets_.push_back(m.bucket);
        }
        if (!aligned_ids_.empty()) {
          const retrieval::Schedule* sched =
              retriever_.schedule(aligned_buckets_, available_);
          FLASHQOS_ASSERT(sched != nullptr, "strand check left a dead head");
          const RetrievalPath batch_path =
              !available_.empty() ? RetrievalPath::kDegraded
              : sched->via == retrieval::SolvedBy::kMaxFlow
                  ? RetrievalPath::kAlignedMaxFlow
                  : RetrievalPath::kAlignedDtr;
          order_.resize(aligned_ids_.size());
          for (std::size_t i = 0; i < aligned_ids_.size(); ++i) order_[i] = i;
          std::stable_sort(order_.begin(), order_.end(),
                           [&](std::size_t a, std::size_t b) {
                             return sched->assignments[a].round <
                                    sched->assignments[b].round;
                           });
          for (const auto i : order_) {
            const DeviceId dev = sched->assignments[i].device;
            out(aligned_ids_[i]).path = batch_path;
            dispatch_request(aligned_ids_[i], dev,
                             std::max(free_at_[dev], now));
          }
        }
      } else {
        // Online deterministic: offer heads to the slot matcher in VFT
        // order. A refused head blocks its tenant for this instant only —
        // the next head in VFT order may still fit, which is what keeps
        // slots from idling while any queue is backlogged. With no
        // admission (kNone) nothing queues across instants: refused heads
        // overflow to their earliest-finishing replica, like the
        // single-tenant baseline.
        const std::vector<SimTime>* svc_ptr = nullptr;
        if (faults_active_ && injector_->any_spike_at(now)) {
          svc_now_.resize(scheme_.devices());
          for (DeviceId d = 0; d < scheme_.devices(); ++d) {
            svc_now_[d] = read_service(d, now);
          }
          svc_ptr = &svc_now_;
        }
        matcher_.begin_instant(free_at_, now, L_, cfg_.access_budget,
                               available_, svc_ptr);
        dispensed_.clear();
        bool matching_open = true;
        while (const auto tid =
                   ts_->next_candidate(tenant_blocked_, unlimited)) {
          const std::uint64_t id = ts_->head(*tid);
          if (tst(id) == 2) {
            ts_->drop_head(*tid);
            continue;
          }
          const auto m = mapper_.map(ev(id).block);
          if (strand_check(*tid, id, m.bucket) != 0) continue;
          if (matching_open && matcher_.add(m.bucket)) {
            ts_->pop(*tid, unlimited);
            ++admitted_;
            dispense_meta(id, m.matched);
            tst(id) = 2;
            dispensed_.push_back(id);
            continue;
          }
          if (unlimited) {
            // Surplus placements change free_at under the matcher, so the
            // slot view is stale from the first refusal on (same rule as
            // the single-tenant kNone path).
            matching_open = false;
            ts_->pop(*tid, true);
            dispense_meta(id, m.matched);
            tst(id) = 2;
            DeviceId best = kInvalidDevice;
            for (const auto d : scheme_.replicas(m.bucket)) {
              if (!available_.empty() && !available_[d]) continue;
              if (best == kInvalidDevice ||
                  std::max(free_at_[d], now) <
                      std::max(free_at_[best], now)) {
                best = d;
              }
            }
            FLASHQOS_ASSERT(best != kInvalidDevice,
                            "strand check left a dead head");
            out(id).path = RetrievalPath::kSurplus;
            dispatch_request(id, best, std::max(free_at_[best], now));
            continue;
          }
          tenant_blocked_[*tid] = true;
        }
        // Materialize matched placements: add order is dispense order, so
        // per-device slots follow the WFQ dispatch order.
        cursor_.assign(free_at_.size(), -1);
        for (std::size_t a = 0; a < dispensed_.size(); ++a) {
          const std::uint64_t id = dispensed_[a];
          const DeviceId dev = matcher_.device_of(a);
          FLASHQOS_ASSERT(dev != kInvalidDevice,
                          "matched request must have a device");
          SimTime& c = cursor_[dev];
          if (c < 0) c = std::max(free_at_[dev], now);
          out(id).path = RetrievalPath::kSlotMatched;
          dispatch_request(id, dev, c);
          c = out(id).finish;
        }
      }

      // One wake per still-queued member of this group; queued requests
      // from older groups already hold theirs.
      for (const auto& g : group_) {
        if (tst(g.idx) != 1) continue;
        Pending d = g;
        d.dispatch = (qi + 1) * T_;
        queue_.push(d);
        if constexpr (obs::kEnabled) ++deferrals_tally_;
      }
      return;
    }

    if (cfg_.scheduler == SchedulerMode::kPrimaryOnly) {
      // Baseline dispatch: every request reads its first copy, FIFO behind
      // whatever is queued there; no admission interplay beyond the budget.
      for (std::size_t i = 0; i < group_.size(); ++i) {
        std::uint64_t ok = group_.size();
        switch (cfg_.admission) {
          case AdmissionMode::kNone:
            ok = 1;
            break;
          case AdmissionMode::kDeterministic:
            ok = accept_det(admitted_, 1);
            break;
          case AdmissionMode::kStatistical:
            ok = stat_->accept(admitted_, 1);
            break;
        }
        if (ok == 0) {
          defer(group_[i]);
          continue;
        }
        ++admitted_;
        // First *live* replica — a degraded RAID read.
        DeviceId dev = kInvalidDevice;
        for (const auto d : scheme_.replicas(buckets_[i])) {
          if (available_.empty() || available_[d]) {
            dev = d;
            break;
          }
        }
        FLASHQOS_ASSERT(dev != kInvalidDevice, "filter left a dead request");
        out(group_[i].idx).path = RetrievalPath::kPrimary;
        dispatch_request(group_[i].idx, dev, std::max(free_at_[dev], now));
      }
      return;
    }

    if (cfg_.retrieval == RetrievalMode::kIntervalAligned) {
      // Batch path: admit up to the budget, schedule with DTR + max-flow,
      // dispatch round by round behind any residual device work.
      std::uint64_t n_accept = group_.size();
      switch (cfg_.admission) {
        case AdmissionMode::kNone:
          break;
        case AdmissionMode::kDeterministic:
          n_accept = accept_det(admitted_, group_.size());
          break;
        case AdmissionMode::kStatistical:
          n_accept = stat_->accept(admitted_, group_.size());
          break;
      }
      admitted_ += n_accept;
      for (std::size_t i = n_accept; i < group_.size(); ++i) defer(group_[i]);
      if (n_accept == 0) return;
      buckets_.resize(n_accept);

      const retrieval::Schedule* degraded =
          retriever_.schedule(buckets_, available_);
      FLASHQOS_ASSERT(degraded != nullptr, "filter left a dead request");
      const auto& schedule = *degraded;
      const RetrievalPath batch_path =
          !available_.empty() ? RetrievalPath::kDegraded
          : schedule.via == retrieval::SolvedBy::kMaxFlow
              ? RetrievalPath::kAlignedMaxFlow
              : RetrievalPath::kAlignedDtr;
      // Requests on one device start back to back in round order.
      order_.resize(n_accept);
      for (std::size_t i = 0; i < n_accept; ++i) order_[i] = i;
      std::stable_sort(order_.begin(), order_.end(),
                       [&](std::size_t a, std::size_t b) {
                         return schedule.assignments[a].round <
                                schedule.assignments[b].round;
                       });
      for (const auto i : order_) {
        const DeviceId dev = schedule.assignments[i].device;
        out(group_[i].idx).path = batch_path;
        dispatch_request(group_[i].idx, dev, std::max(free_at_[dev], now));
      }
      return;
    }

    // Online mode. Deterministic portion: a request is admitted only if it
    // can be fitted inside the access budget on currently-available device
    // slots (with remapping of the same-instant batch); otherwise it is
    // delayed — this is what makes every admitted request meet the
    // guarantee exactly (the paper's flat 0.132507 ms line). Statistical
    // surplus beyond S: admitted while Q < ε and served from the earliest-
    // finishing replica, queueing allowed (the Fig. 10 response-time cost).
    const std::vector<SimTime>* svc_ptr = nullptr;
    if (faults_active_ && injector_->any_spike_at(now)) {
      svc_now_.resize(scheme_.devices());
      for (DeviceId d = 0; d < scheme_.devices(); ++d) {
        svc_now_[d] = read_service(d, now);
      }
      svc_ptr = &svc_now_;
    }
    matcher_.begin_instant(free_at_, now, L_, cfg_.access_budget, available_,
                           svc_ptr);
    matched_members_.clear();
    surplus_members_.clear();
    bool matching_open = true;
    for (std::size_t i = 0; i < group_.size(); ++i) {
      const bool in_budget =
          cfg_.admission == AdmissionMode::kNone || admitted_ < det_limit_now_;
      if (in_budget && matching_open && matcher_.add(buckets_[i])) {
        matched_members_.push_back(i);
        ++admitted_;
        continue;
      }
      if (cfg_.admission == AdmissionMode::kNone) {
        // Baseline: no deferral, queue on the earliest-finishing replica.
        matching_open = false;
        surplus_members_.push_back(i);
        continue;
      }
      if (cfg_.admission == AdmissionMode::kStatistical &&
          admitted_ >= det_limit_now_ && stat_->accept(admitted_, 1) > 0) {
        matching_open = false;  // placements below invalidate the slot view
        surplus_members_.push_back(i);
        ++admitted_;
        continue;
      }
      defer(group_[i]);
    }

    // Materialize the matched placements: per device, slot order follows
    // FIFO (matched_members is already in seq order).
    cursor_.assign(free_at_.size(), -1);
    for (std::size_t a = 0; a < matched_members_.size(); ++a) {
      const std::size_t i = matched_members_[a];
      const DeviceId dev = matcher_.device_of(a);
      FLASHQOS_ASSERT(dev != kInvalidDevice, "matched request must have a device");
      SimTime& c = cursor_[dev];
      if (c < 0) c = std::max(free_at_[dev], now);
      out(group_[i].idx).path = RetrievalPath::kSlotMatched;
      dispatch_request(group_[i].idx, dev, c);
      // Advance by the *actual* finish — under a latency spike the slot is
      // wider than L, and the next slot on this device starts after it.
      c = out(group_[i].idx).finish;
    }
    // Statistical surplus / no-admission overflow: earliest finish replica.
    for (const auto i : surplus_members_) {
      const auto reps = scheme_.replicas(buckets_[i]);
      DeviceId best = kInvalidDevice;
      for (const auto d : reps) {
        if (!available_.empty() && !available_[d]) continue;
        if (best == kInvalidDevice ||
            std::max(free_at_[d], now) < std::max(free_at_[best], now)) {
          best = d;
        }
      }
      FLASHQOS_ASSERT(best != kInvalidDevice, "filter left a dead request");
      out(group_[i].idx).path = RetrievalPath::kSurplus;
      dispatch_request(group_[i].idx, best, std::max(free_at_[best], now));
    }
  }

  // ---- finish ------------------------------------------------------------

  /// Per-replay registry publication shared by both modes: the final open
  /// window, the loop tallies, fault accounting, per-tenant WFQ counters.
  void publish_run_metrics() {
    if (current_qi_ >= 0) flush_windows(current_qi_);
    auto& m = PipelineMetrics::get();
    m.dispatches.inc(dispatches_tally_);
    m.deferral_events.inc(deferrals_tally_);
    m.write_replica_ops.inc(write_ops_tally_);
    if (faults_active_) {
      auto& fm = FaultMetrics::get();
      fm.injected_outages.inc(injector_->compiled().outages.size());
      fm.injected_spikes.inc(injector_->compiled().spikes.size());
      if (degraded_interval_tally_ > 0) {
        fm.degraded_intervals.inc(degraded_interval_tally_);
      }
      if (retries_tally_ > 0) fm.retries.inc(retries_tally_);
      if (timeouts_tally_ > 0) fm.timeouts.inc(timeouts_tally_);
      // Rebuild reads due after the last dispatch instant never run (the
      // trace ended); return their pending-gauge contribution so the gauge
      // reads 0 between replays.
      const auto leftover = static_cast<std::int64_t>(
          injector_->rebuild_reads_total() - injector_->rebuild_reads_issued());
      if (leftover > 0) fm.rebuild_pending.add(-leftover);
    }
    if (tenant_mode_) {
      // Per-tenant WFQ tallies, published once per replay like everything
      // else; wfq.vtime accumulates virtual-clock progress (micro-units)
      // across replays.
      auto& reg = obs::MetricRegistry::global();
      reg.gauge("wfq.vtime").add(std::llround(ts_->virtual_time() * 1e6));
      for (std::size_t k = 0; k < ts_->tenants(); ++k) {
        const auto& u = ts_->usage(k);
        const std::string label = "tenant=\"" + cfg_.tenants[k].name + "\"";
        if (u.arrivals > 0) reg.counter("wfq.arrivals", label).inc(u.arrivals);
        if (u.admitted > 0) reg.counter("wfq.admitted", label).inc(u.admitted);
        if (u.shed > 0) reg.counter("wfq.shed", label).inc(u.shed);
        if (u.marked > 0) reg.counter("wfq.marked", label).inc(u.marked);
      }
    }
  }

  void finish_borrowed() {
    PipelineResult& result = *result_;
    if (stat_.has_value()) stat_->end_interval(demand_, admitted_);
    if (tenant_mode_) {
      FLASHQOS_ASSERT(!ts_->backlogged(),
                      "tenant backlog must drain before the replay ends");
      result.tenant_usage.resize(ts_->tenants());
      for (std::size_t k = 0; k < ts_->tenants(); ++k) {
        result.tenant_usage[k] = ts_->usage(k);
      }
    }

    array_->run();
    for (const auto& c : array_->take_completions()) {
      if (c.id >= result.outcomes.size()) continue;  // per-replica write op
      auto& o = result.outcomes[c.id];
      FLASHQOS_ASSERT(o.start == c.start && o.finish == c.finish,
                      "pipeline dispatch model diverged from the simulator");
      o.start = c.start;
      o.finish = c.finish;
    }

    for (const auto& o : result.outcomes) {
      if (o.failed || o.is_write) continue;
      if (o.response() > cfg_.qos_interval) ++result.deadline_violations;
    }
    if constexpr (obs::kEnabled) {
      publish_run_metrics();
      record_outcome_observability(result);
    }
  }

  StreamResult finish_streaming() {
    if (stat_.has_value()) stat_->end_interval(demand_, admitted_);
    StreamResult res;
    if (tenant_mode_) {
      FLASHQOS_ASSERT(!ts_->backlogged(),
                      "tenant backlog must drain before the replay ends");
      res.tenant_usage.resize(ts_->tenants());
      for (std::size_t k = 0; k < ts_->tenants(); ++k) {
        res.tenant_usage[k] = ts_->usage(k);
      }
    }
    array_->run();
    absorb_completions();
    FLASHQOS_ASSERT(win_.empty(),
                    "every request must reach a final state by end of stream");
    if constexpr (obs::kEnabled) {
      publish_run_metrics();
      obs_folder_->publish(static_cast<std::size_t>(ingested_),
                          deadline_violations_);
      obs_folder_.reset();  // flushes the histogram tallies
    }
    res.requests = ingested_;
    res.deadline_violations = deadline_violations_;
    if (report_interval_ > 0 && keep_intervals_) {
      if (interval_folds_.size() < slices_total_) {
        interval_folds_.resize(slices_total_);
      }
      res.intervals.reserve(slices_total_);
      for (std::size_t i = 0; i < slices_total_; ++i) {
        res.intervals.push_back(interval_folds_[i].finalize());
      }
    }
    res.overall = overall_fold_.finalize();
    return res;
  }

  // ---- wiring ------------------------------------------------------------
  const decluster::AllocationScheme& scheme_;
  const PipelineConfig& cfg_;
  retrieval::Retriever& retriever_;
  const SimTime T_;
  const SimTime L_;
  BlockMapper mapper_;
  DeterministicAdmission det_;
  SlotMatcher matcher_;  // persists across instants; begin_instant() re-arms
  const bool tenant_mode_;
  bool streaming_ = false;
  bool keep_intervals_ = true;
  FimSource* fim_ = nullptr;
  OutcomeSink* sink_ = nullptr;
  SimTime report_interval_ = 0;

  // ---- in-memory mode ----------------------------------------------------
  const trace::Trace* t_ = nullptr;
  PipelineResult* result_ = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>> slices_;
  std::vector<std::uint8_t> tstate_;

  // ---- streaming mode ----------------------------------------------------
  std::deque<StreamSlot> win_;   // slots for requests [win_base_, ingested_)
  std::uint64_t win_base_ = 0;
  std::uint64_t ingested_ = 0;
  SimTime last_time_ = 0;        // arrival time of the last ingested event
  bool eof_ = false;
  std::size_t slices_total_ = 0;
  std::deque<fim::TransactionDb> slice_dbs_;  // slices [slice_db_base_, ...]
  std::size_t slice_db_base_ = 0;
  std::size_t fim_slice_ = 0;    // slice the ingest builder is filling
  std::vector<fim::Item> fim_tx_;
  std::int64_t fim_window_ = -1;
  OutcomeFold overall_fold_;
  std::vector<OutcomeFold> interval_folds_;
  std::optional<OutcomeObsFolder> obs_folder_;
  std::size_t deadline_violations_ = 0;

  // ---- replay state (both modes) ------------------------------------------
  std::optional<StatisticalAdmission> stat_;
  std::optional<TenantScheduler> ts_;
  std::vector<bool> tenant_blocked_;
  std::vector<std::uint64_t> dispensed_;   // matched request ids, add order
  std::vector<std::size_t> aligned_ids_;   // aligned-mode dispensed batch
  std::vector<BucketId> aligned_buckets_;
  std::vector<obs::LatencyHistogram*> depth_hist_;

  obs::TimeSeries* win_reads_ = nullptr;
  obs::TimeSeries* win_writes_ = nullptr;
  obs::TimeSeries* win_shed_ = nullptr;
  obs::TimeSeries* win_failed_ = nullptr;
  obs::TimeSeries* win_degraded_ = nullptr;
  obs::TimeSeries* win_response_ = nullptr;
  obs::TimeSeries* win_q_ = nullptr;
  std::vector<obs::TimeSeries*> win_device_;
  std::vector<obs::TimeSeries*> win_tenant_reads_;
  std::vector<obs::TimeSeries*> win_tenant_shed_;
  WindowAgg agg_reads_, agg_writes_, agg_shed_, agg_failed_, agg_degraded_,
      agg_response_, agg_q_;
  std::vector<WindowAgg> agg_device_;
  std::vector<WindowAgg> agg_tenant_reads_;
  std::vector<WindowAgg> agg_tenant_shed_;
  // Live SLO evaluation: per-spec {total, bad} tallies for the open window,
  // fed to the global SloMonitor at the same rollover flush. `tenant` is
  // the resolved tenant index (-1 = all traffic).
  struct SloTally {
    obs::SloKind kind;
    std::int64_t threshold_ns;
    std::int32_t tenant;
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
  };
  std::vector<SloTally> slo_tallies_;

  std::optional<fault::FaultInjector> injector_;
  bool faults_active_ = false;
  SimTime retry_timeout_ = 0;
  std::uint64_t det_limit_now_ = 0;
  std::vector<bool> down_mask_;     // empty = all devices up
  std::vector<bool> mask_scratch_;
  std::map<std::vector<bool>, std::vector<double>> degraded_tables_;
  std::uint64_t retries_tally_ = 0;
  std::uint64_t timeouts_tally_ = 0;
  std::uint64_t degraded_interval_tally_ = 0;
  std::int64_t last_degraded_qi_ = -1;

  std::optional<flashsim::FlashArray> array_;
  std::uint64_t next_background_op_ = kBackgroundIdBase;
  std::vector<SimTime> free_at_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;

  std::size_t report_idx_ = 0;  // which reporting interval the mapper is built for
  std::int64_t current_qi_ = -1;  // current QoS interval index
  std::uint64_t admitted_ = 0;   // requests admitted in current QoS interval
  std::uint64_t demand_ = 0;     // requests that asked for this interval

  // Per-event counters are tallied in plain locals and published once after
  // the loop — the shared sharded counters cost an atomic RMW per inc,
  // which is measurable at one inc per dispatched request.
  std::uint64_t dispatches_tally_ = 0;
  std::uint64_t deferrals_tally_ = 0;
  std::uint64_t write_ops_tally_ = 0;

  // Per-instant buffers, hoisted out of the dispatch loop so steady-state
  // scheduling reuses their capacity instead of reallocating every group.
  std::vector<Pending> group_;
  std::vector<BucketId> buckets_;
  std::vector<bool> available_;
  std::vector<Pending> live_;
  std::vector<BucketId> live_buckets_;
  std::vector<Pending> reads_;
  std::vector<BucketId> read_buckets_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> matched_members_;  // indices into group/buckets
  std::vector<std::size_t> surplus_members_;
  std::vector<SimTime> cursor_;
  std::vector<SimTime> svc_now_;  // per-device effective quanta under spikes
};

}  // namespace

PipelineResult QosPipeline::replay(const trace::Trace& t, FimSource* fim) {
  ReplayEngine engine(scheme_, cfg_, retriever_);
  return engine.run_borrowed(t, fim);
}

StreamResult QosPipeline::run_stream(trace::TraceCursor& cursor, FimSource* fim,
                                     const StreamOptions& opts) {
  ReplayEngine engine(scheme_, cfg_, retriever_);
  return engine.run_streaming(cursor, fim, opts);
}

PipelineResult replay_original(const trace::Trace& t, SimTime service_time,
                               SimTime deadline) {
  PipelineResult result;
  result.outcomes.resize(t.events.size());
  if (t.events.empty()) return result;
  FLASHQOS_EXPECT(valid_trace(t), "replay input must be a valid trace");
  FLASHQOS_EXPECT(t.volumes > 0, "original replay needs the trace volume count");

  flashsim::FlashArray array(
      t.volumes, std::make_shared<flashsim::FixedLatencyModel>(service_time));
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const auto& e = t.events[i];
    array.submit(flashsim::IoRequest{.id = i,
                                     .device = e.device,
                                     .submit_time = e.time,
                                     .pages = e.size_blocks});
    result.outcomes[i].arrival = e.time;
    result.outcomes[i].dispatch = e.time;
    result.outcomes[i].device = e.device;
  }
  array.run();
  for (const auto& c : array.take_completions()) {
    result.outcomes[c.id].start = c.start;
    result.outcomes[c.id].finish = c.finish;
  }
  for (const auto& o : result.outcomes) {
    if (o.response() > deadline) ++result.deadline_violations;
  }
  finalize_reports(result, t);
  return result;
}

}  // namespace flashqos::core
