#include "core/qos_pipeline.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <map>
#include <queue>

#include "core/sampler.hpp"
#include "design/block_design.hpp"
#include "fault/injector.hpp"
#include "fim/apriori.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"
#include "retrieval/dtr.hpp"
#include "util/stats.hpp"

namespace flashqos::core {

const char* to_string(RetrievalPath path) noexcept {
  switch (path) {
    case RetrievalPath::kUnset: return "unset";
    case RetrievalPath::kPrimary: return "primary";
    case RetrievalPath::kSlotMatched: return "slot_matched";
    case RetrievalPath::kSurplus: return "surplus";
    case RetrievalPath::kAlignedDtr: return "aligned_dtr";
    case RetrievalPath::kAlignedMaxFlow: return "aligned_max_flow";
    case RetrievalPath::kDegraded: return "degraded";
    case RetrievalPath::kWrite: return "write";
    case RetrievalPath::kFailed: return "failed";
    case RetrievalPath::kShed: return "shed";
  }
  return "unknown";
}

namespace {

inline constexpr std::size_t kPathCount = 10;

/// Pipeline-level registry handles, resolved once. The per-event live
/// increments (dispatches, deferrals, write replica ops) are single relaxed
/// fetch_adds; everything else is folded from the outcomes vector after the
/// replay loop finishes, so the hot loop's cost stays negligible.
struct PipelineMetrics {
  obs::Counter& requests;
  obs::Counter& reads_served;
  obs::Counter& writes;
  obs::Counter& failed;
  obs::Counter& deferred;
  obs::Counter& deadline_violations;
  obs::Counter& dispatches;
  obs::Counter& write_replica_ops;
  obs::Counter& deferral_events;
  obs::LatencyHistogram& response_ns;
  obs::LatencyHistogram& delay_ns;
  obs::LatencyHistogram& e2e_ns;
  // Per-request latency attribution (obs v2): where each served read spent
  // its life — queue (arrival → dispatch), schedule (dispatch → first
  // device access), service (first access → completion).
  obs::LatencyHistogram& stage_queue_ns;
  obs::LatencyHistogram& stage_schedule_ns;
  obs::LatencyHistogram& stage_service_ns;
  std::array<obs::Counter*, kPathCount> by_path;

  static PipelineMetrics& get() {
    static PipelineMetrics m = [] {
      auto& reg = obs::MetricRegistry::global();
      PipelineMetrics p{reg.counter("pipeline.requests"),
                        reg.counter("pipeline.reads_served"),
                        reg.counter("pipeline.writes"),
                        reg.counter("pipeline.failed"),
                        reg.counter("pipeline.deferred"),
                        reg.counter("pipeline.deadline_violations"),
                        reg.counter("pipeline.dispatches"),
                        reg.counter("pipeline.write_replica_ops"),
                        reg.counter("pipeline.deferral_events"),
                        reg.histogram("pipeline.response_ns"),
                        reg.histogram("pipeline.delay_ns"),
                        reg.histogram("pipeline.e2e_ns"),
                        reg.histogram("pipeline.stage_ns", "stage=\"queue\""),
                        reg.histogram("pipeline.stage_ns", "stage=\"schedule\""),
                        reg.histogram("pipeline.stage_ns", "stage=\"service\""),
                        {}};
      for (std::size_t i = 0; i < kPathCount; ++i) {
        const std::string label =
            std::string("path=\"") +
            to_string(static_cast<RetrievalPath>(i)) + "\"";
        p.by_path[i] = &reg.counter("pipeline.path", label);
      }
      return p;
    }();
    return m;
  }
};

/// Fault-subsystem registry handles. Tallied in replay-loop locals and
/// published once per replay, like PipelineMetrics.
struct FaultMetrics {
  obs::Counter& injected_outages;
  obs::Counter& injected_spikes;
  obs::Counter& degraded_intervals;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& rebuild_reads;
  obs::Gauge& rebuild_pending;

  static FaultMetrics& get() {
    static FaultMetrics m = [] {
      auto& reg = obs::MetricRegistry::global();
      return FaultMetrics{reg.counter("fault.injected.outages"),
                          reg.counter("fault.injected.spikes"),
                          reg.counter("fault.degraded_intervals"),
                          reg.counter("fault.retries"),
                          reg.counter("fault.timeouts"),
                          reg.counter("fault.rebuild.reads"),
                          reg.gauge("fault.rebuild.pending_reads")};
    }();
    return m;
  }
};

obs::EventDetail trace_detail(RetrievalPath path) noexcept {
  switch (path) {
    case RetrievalPath::kUnset: return obs::EventDetail::kNone;
    case RetrievalPath::kPrimary: return obs::EventDetail::kPrimary;
    case RetrievalPath::kSlotMatched: return obs::EventDetail::kSlotMatched;
    case RetrievalPath::kSurplus: return obs::EventDetail::kSurplus;
    case RetrievalPath::kAlignedDtr: return obs::EventDetail::kDtrFastPath;
    case RetrievalPath::kAlignedMaxFlow: return obs::EventDetail::kMaxFlowFallback;
    case RetrievalPath::kDegraded: return obs::EventDetail::kDegraded;
    case RetrievalPath::kWrite: return obs::EventDetail::kWrite;
    case RetrievalPath::kFailed: return obs::EventDetail::kNone;
    case RetrievalPath::kShed: return obs::EventDetail::kNone;
  }
  return obs::EventDetail::kNone;
}

/// Post-run observability fold: counters, histograms (including the
/// per-stage latency attribution), and (when tracing is on) the
/// per-request arrival → admission → retrieval spans plus one stage slice
/// per lifecycle segment. Reads the finished outcomes only — it cannot
/// perturb the replay.
/// Value→count tally for one histogram, flushed with record_n on scope
/// exit. Latency multisets here usually hold a few distinct values (fixed
/// service quanta — the flat line), so a short linear scan beats one
/// shared-atomic record() per outcome; genuinely high-cardinality series
/// blow past the cap and fall through to direct records, where the
/// histogram's overflowed-tracker fast path keeps the cost bounded.
class HistogramTally {
 public:
  explicit HistogramTally(obs::LatencyHistogram& h) : hist_(h) {}
  HistogramTally(const HistogramTally&) = delete;
  HistogramTally& operator=(const HistogramTally&) = delete;
  ~HistogramTally() {
    for (const auto& [v, n] : items_) hist_.record_n(v, n);
  }

  void add(std::int64_t v) {
    for (auto& [val, n] : items_) {
      if (val == v) {
        ++n;
        return;
      }
    }
    if (items_.size() < kCap) {
      items_.emplace_back(v, 1);
    } else {
      hist_.record(v);
    }
  }

 private:
  static constexpr std::size_t kCap = 16;
  obs::LatencyHistogram& hist_;
  std::vector<std::pair<std::int64_t, std::uint64_t>> items_;
};

/// One QoS window's in-flight tally for a windowed time-series. The replay
/// loop adds into these plain locals (no locking) and merges each non-empty
/// tally into its obs::TimeSeries exactly once, at the interval rollover —
/// all stats are the associative/commutative merges the series contract
/// requires, so this batching cannot change exported window content.
struct WindowAgg {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  SimTime first_time = 0;

  void add(SimTime at, std::int64_t value) {
    if (count == 0) {
      min = value;
      max = value;
      first_time = at;
    } else {
      min = std::min(min, value);
      max = std::max(max, value);
      first_time = std::min(first_time, at);
    }
    sum += value;
    ++count;
  }
};

void record_outcome_observability(const PipelineResult& result) {
  auto& m = PipelineMetrics::get();
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t failed = 0;
  std::uint64_t deferred = 0;
  std::array<std::uint64_t, kPathCount> by_path{};
  {
    HistogramTally response(m.response_ns);
    HistogramTally e2e(m.e2e_ns);
    HistogramTally delay(m.delay_ns);
    HistogramTally stage_queue(m.stage_queue_ns);
    HistogramTally stage_schedule(m.stage_schedule_ns);
    HistogramTally stage_service(m.stage_service_ns);
    for (const auto& o : result.outcomes) {
      ++by_path[static_cast<std::size_t>(o.path)];
      if (o.failed) {
        ++failed;
        continue;
      }
      if (o.is_write) {
        ++writes;
        continue;
      }
      ++reads;
      response.add(o.response());
      e2e.add(o.end_to_end());
      stage_queue.add(o.dispatch - o.arrival);
      stage_schedule.add(o.start - o.dispatch);
      stage_service.add(o.finish - o.start);
      if (o.deferred()) {
        ++deferred;
        delay.add(o.delay());
      }
    }
  }
  m.requests.inc(result.outcomes.size());
  m.reads_served.inc(reads);
  m.writes.inc(writes);
  m.failed.inc(failed);
  m.deferred.inc(deferred);
  m.deadline_violations.inc(result.deadline_violations);
  for (std::size_t i = 0; i < kPathCount; ++i) {
    if (by_path[i] > 0) m.by_path[i]->inc(by_path[i]);
  }

  auto& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& o = result.outcomes[i];
    const auto req = static_cast<std::int64_t>(i);
    tracer.record({.request = req,
                   .start = o.arrival,
                   .end = o.arrival,
                   .value = 0,
                   .device = -1,
                   .kind = obs::EventKind::kArrival,
                   .detail = obs::EventDetail::kNone});
    tracer.record({.request = req,
                   .start = o.dispatch,
                   .end = o.dispatch,
                   .value = o.q_ppm,
                   .device = -1,
                   .kind = obs::EventKind::kAdmission,
                   .detail = o.failed      ? obs::EventDetail::kRejected
                             : o.deferred() ? obs::EventDetail::kDeferred
                                            : obs::EventDetail::kAdmitted});
    tracer.record({.request = req,
                   .start = o.dispatch,
                   .end = o.finish,
                   .value = 0,
                   .device = o.device == kInvalidDevice
                                 ? -1
                                 : static_cast<std::int32_t>(o.device),
                   .kind = obs::EventKind::kRetrieval,
                   .detail = trace_detail(o.path)});
    // Stage slices exist only for served reads: failed/shed requests never
    // reach the device and writes follow the replication path instead.
    if (o.failed || o.is_write) continue;
    tracer.record({.request = req,
                   .start = o.arrival,
                   .end = o.dispatch,
                   .value = o.dispatch - o.arrival,
                   .device = -1,
                   .kind = obs::EventKind::kStage,
                   .detail = obs::EventDetail::kStageQueue});
    tracer.record({.request = req,
                   .start = o.dispatch,
                   .end = o.start,
                   .value = o.start - o.dispatch,
                   .device = -1,
                   .kind = obs::EventKind::kStage,
                   .detail = obs::EventDetail::kStageSchedule});
    tracer.record({.request = req,
                   .start = o.start,
                   .end = o.finish,
                   .value = o.finish - o.start,
                   .device = o.device == kInvalidDevice
                                 ? -1
                                 : static_cast<std::int32_t>(o.device),
                   .kind = obs::EventKind::kStage,
                   .detail = obs::EventDetail::kStageService});
  }
}

/// A request waiting for dispatch. Ordered by (dispatch time, seq); seq is
/// the trace position, so deferred requests keep FIFO priority over newer
/// arrivals at the same boundary.
struct Pending {
  SimTime dispatch = 0;
  std::uint64_t seq = 0;
  std::size_t idx = 0;  // index into trace events / outcomes

  bool operator>(const Pending& other) const noexcept {
    return dispatch != other.dispatch ? dispatch > other.dispatch : seq > other.seq;
  }
};

/// Incremental bipartite matching of requests onto replica-device slots.
///
/// The deterministic online admission rule is "admit only what can start
/// inside the access budget right now": device d exposes
///   slots(d) = how many service quanta fit in [max(free, now), now + M·L]
/// and a request is admissible iff an augmenting path assigns it (possibly
/// remapping earlier admissions — the paper's "necessary remappings are
/// performed" for same-instant batches).
class SlotMatcher {
 public:
  /// `service` is the base quantum L defining the guarantee window
  /// [now, now + M·L]. `per_device` (optional) gives each device's
  /// *effective* quantum — stretched by a latency-spike window — so a
  /// degraded device exposes fewer slots inside the same window and the
  /// admission rule stays honest about what can actually finish in time.
  SlotMatcher(const decluster::AllocationScheme& scheme,
              const std::vector<SimTime>& free_at, SimTime now, SimTime service,
              std::uint32_t budget, const std::vector<bool>& available,
              const std::vector<SimTime>* per_device = nullptr)
      : scheme_(scheme) {
    capacity_.resize(scheme.devices());
    occupants_.resize(scheme.devices());
    const SimTime window_end = now + static_cast<SimTime>(budget) * service;
    for (DeviceId d = 0; d < scheme.devices(); ++d) {
      if (!available.empty() && !available[d]) continue;  // down: 0 slots
      const SimTime svc = per_device != nullptr ? (*per_device)[d] : service;
      const SimTime start = std::max(free_at[d], now);
      const SimTime room = window_end - start;
      capacity_[d] = room <= 0 ? 0
                               : static_cast<std::uint32_t>(
                                     std::min<SimTime>(room / svc, budget));
    }
  }

  /// Try to admit one more request for `bucket`; true on success. On
  /// success the internal assignment covers every admitted request.
  bool add(BucketId bucket) {
    buckets_.push_back(bucket);
    visited_.assign(buckets_.size(), false);
    if (augment(buckets_.size() - 1)) return true;
    buckets_.pop_back();
    return false;
  }

  /// Device of each admitted request, in admission order.
  [[nodiscard]] std::vector<DeviceId> assignment() const {
    std::vector<DeviceId> out(buckets_.size(), kInvalidDevice);
    for (DeviceId d = 0; d < occupants_.size(); ++d) {
      for (const auto r : occupants_[d]) out[r] = d;
    }
    return out;
  }

 private:
  bool augment(std::size_t request) {
    visited_[request] = true;
    const auto reps = scheme_.replicas(buckets_[request]);
    // First pass: a device with a free slot.
    for (const auto d : reps) {
      if (occupants_[d].size() < capacity_[d]) {
        occupants_[d].push_back(request);
        return true;
      }
    }
    // Second pass: evict-and-relocate (augmenting path).
    for (const auto d : reps) {
      for (auto& occupant : occupants_[d]) {
        if (!visited_[occupant] && augment(occupant)) {
          occupant = request;
          return true;
        }
      }
    }
    return false;
  }

  const decluster::AllocationScheme& scheme_;
  std::vector<std::uint32_t> capacity_;
  std::vector<std::vector<std::size_t>> occupants_;  // request indices per device
  std::vector<BucketId> buckets_;
  std::vector<bool> visited_;
};

/// Build the FIM transaction database for one reporting-interval slice:
/// each QoS interval's distinct blocks form one transaction.
fim::TransactionDb build_transactions(const trace::Trace& t, std::size_t begin,
                                      std::size_t end, SimTime qos_interval) {
  fim::TransactionDb db;
  std::vector<fim::Item> current;
  std::int64_t current_window = -1;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& e = t.events[i];
    if (!e.is_read) continue;  // the paper mines read requests
    const std::int64_t w = e.time / qos_interval;
    if (w != current_window) {
      if (!current.empty()) db.add(std::move(current));
      current = {};
      current_window = w;
    }
    current.push_back(e.block);
  }
  if (!current.empty()) db.add(std::move(current));
  return db;
}

}  // namespace

std::vector<fim::FrequentPair> mine_event_range(const trace::Trace& t,
                                                std::size_t begin, std::size_t end,
                                                SimTime qos_interval,
                                                std::uint64_t min_support) {
  const auto db = build_transactions(t, begin, end, qos_interval);
  return fim::mine_pairs_apriori(db, min_support).pairs;
}

IntervalReport summarize_outcome_range(std::span<const RequestOutcome> outcomes,
                                       std::size_t begin, std::size_t end) {
  IntervalReport r;
  Accumulator resp, e2e, delay, write_ms;
  std::size_t matched = 0;
  std::size_t reads = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& o = outcomes[i];
    ++r.requests;
    if (o.failed) {
      ++r.failed;
      continue;  // never served: no response/delay statistics
    }
    if (o.is_write) {
      ++r.writes;
      write_ms.add(to_ms(o.end_to_end()));
      continue;  // write completion tracked separately from read QoS
    }
    ++reads;
    resp.add(to_ms(o.response()));
    e2e.add(to_ms(o.end_to_end()));
    if (o.deferred()) {
      ++r.deferred;
      delay.add(to_ms(o.delay()));
    }
    if (o.fim_matched) ++matched;
  }
  if (r.requests == 0) return r;
  r.avg_response_ms = resp.mean();
  r.max_response_ms = resp.max();
  r.avg_e2e_ms = e2e.mean();
  r.max_e2e_ms = e2e.max();
  r.avg_write_ms = write_ms.count() ? write_ms.mean() : 0.0;
  if (reads > 0) {
    r.pct_deferred = static_cast<double>(r.deferred) / static_cast<double>(reads);
    r.fim_match_rate = static_cast<double>(matched) / static_cast<double>(reads);
  }
  r.avg_delay_ms = delay.count() ? delay.mean() : 0.0;
  return r;
}

namespace {

void finalize_reports(PipelineResult& result, const trace::Trace& t) {
  const auto slices = trace::report_slices(t);
  result.intervals.clear();
  result.intervals.reserve(slices.size());
  for (const auto& [begin, end] : slices) {
    result.intervals.push_back(
        summarize_outcome_range(result.outcomes, begin, end));
  }
  result.overall =
      summarize_outcome_range(result.outcomes, 0, result.outcomes.size());
}

}  // namespace

std::vector<std::string> PipelineConfig::validate(std::uint32_t devices) const {
  std::vector<std::string> out;
  if (qos_interval <= 0) out.push_back("qos_interval must be positive");
  if (access_budget < 1) {
    out.push_back("access_budget must be at least 1 (a zero budget admits nothing)");
  }
  if (service_time <= 0) out.push_back("service_time must be positive");
  if (write_latency <= 0) out.push_back("write_latency must be positive");
  if (fim_min_support < 1) out.push_back("fim_min_support must be at least 1");
  if (admission == AdmissionMode::kStatistical) {
    if (p_table.empty()) {
      out.push_back(
          "statistical admission needs a sampled p_table "
          "(core::sample_optimal_probabilities)");
    }
    for (const double p : p_table) {
      if (p < 0.0 || p > 1.0) {
        out.push_back("p_table values must be probabilities in [0, 1]");
        break;
      }
    }
    if (epsilon < 0.0 || epsilon > 1.0) out.push_back("epsilon must be in [0, 1]");
  }
  if (p_table_samples == 0) out.push_back("p_table_samples must be positive");
  for (const auto& d : faults.validate(devices)) out.push_back("faults: " + d);
  if (!tenants.empty()) {
    if (admission == AdmissionMode::kStatistical) {
      out.push_back(
          "statistical admission is not supported with a [tenants] section "
          "(the surplus rule and the WFQ share interact; use deterministic "
          "admission)");
    }
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const auto& s = tenants[i];
      const std::string who = "tenant '" + s.name + "': ";
      if (s.name.empty()) out.push_back("tenant names must be non-empty");
      if (!(s.weight > 0.0) || !std::isfinite(s.weight)) {
        out.push_back(who + "weight must be positive and finite");
      }
      if (s.queue_capacity < 1) {
        out.push_back(who + "queue_capacity must be at least 1");
      }
      if (s.mark_threshold < 1 || s.mark_threshold > s.queue_capacity) {
        out.push_back(who + "mark_threshold must be in [1, queue_capacity]");
      }
      for (std::size_t j = i + 1; j < tenants.size(); ++j) {
        if (tenants[j].name == s.name) {
          out.push_back("duplicate tenant name '" + s.name + "'");
        }
      }
    }
  }
  for (const auto& spec : slos) {
    const std::string who = "slo '" + spec.name() + "': ";
    if (const auto d = spec.validate(); !d.empty()) out.push_back(who + d);
    if (spec.tenant.empty()) continue;
    const bool known =
        std::any_of(tenants.begin(), tenants.end(),
                    [&](const TenantSpec& s) { return s.name == spec.tenant; });
    if (!known) {
      out.push_back(who + "tenant is not declared in the [tenants] section");
    }
  }
  return out;
}

QosPipeline::QosPipeline(const decluster::AllocationScheme& scheme, PipelineConfig cfg)
    : scheme_(scheme), cfg_(std::move(cfg)), retriever_(scheme_, cfg_.service_time) {
  auto diags = cfg_.validate(scheme_.devices());
  if (!cfg_.tenants.empty()) {
    // Needs the scheme (S depends on c), so it lives here, not validate().
    const std::uint64_t s_budget =
        design::guarantee_buckets(scheme_.copies(), cfg_.access_budget);
    std::uint64_t reserved = 0;
    for (const auto& ten : cfg_.tenants) reserved += ten.reservation;
    if (reserved > s_budget) {
      diags.push_back("tenant reservations (" + std::to_string(reserved) +
                      ") exceed the interval budget S=" +
                      std::to_string(s_budget));
    }
  }
  for (const auto& d : diags) {
    // flashqos-lint: allow(adhoc-logging): diagnostics before the contract abort
    std::fprintf(stderr, "flashqos: invalid pipeline config: %s\n", d.c_str());
  }
  FLASHQOS_EXPECT(diags.empty(),
                  "invalid pipeline configuration (diagnostics on stderr)");
}

PipelineResult QosPipeline::run(const trace::Trace& t, FimSource* fim) {
  auto result = replay(t, fim);
  finalize_reports(result, t);
  return result;
}

PipelineResult QosPipeline::replay(const trace::Trace& t, FimSource* fim) {
  PipelineResult result;
  result.outcomes.resize(t.events.size());
  if (t.events.empty()) return result;
  FLASHQOS_EXPECT(valid_trace(t), "pipeline input must be a valid trace");

  const SimTime T = cfg_.qos_interval;
  const SimTime L = cfg_.service_time;
  BlockMapper mapper(scheme_);
  DeterministicAdmission det(scheme_.copies(), cfg_.access_budget);
  std::optional<StatisticalAdmission> stat;
  if (cfg_.admission == AdmissionMode::kStatistical) {
    stat.emplace(cfg_.p_table, det.limit(), cfg_.epsilon);
  }

  // Multi-tenant WFQ front end (core/tenant_scheduler.hpp). Lives entirely
  // inside this serial loop, so serial ≡ parallel bit-identity holds for
  // tenant configs the same way it does for admission and retrieval. An
  // empty [tenants] section takes none of the tenant branches below.
  const bool tenant_mode = !cfg_.tenants.empty();
  std::optional<TenantScheduler> ts;
  if (tenant_mode) ts.emplace(cfg_.tenants, det.limit(), cfg_.wfq_knobs);
  // Lifecycle of each read under the front end: 0 = not yet seen,
  // 1 = queued in its tenant FIFO (one wake outstanding), 2 = final
  // (dispatched, shed, or failed). A popped Pending whose request is
  // already final is a stale wake and is skipped.
  std::vector<std::uint8_t> tstate;
  if (tenant_mode) tstate.assign(t.events.size(), 0);
  std::vector<bool> tenant_blocked;
  std::vector<std::uint64_t> dispensed;   // matched request ids, add order
  std::vector<std::size_t> aligned_ids;   // aligned-mode dispensed batch
  std::vector<BucketId> aligned_buckets;
  std::vector<obs::LatencyHistogram*> depth_hist;
  if constexpr (obs::kEnabled) {
    if (tenant_mode) {
      auto& reg = obs::MetricRegistry::global();
      depth_hist.reserve(cfg_.tenants.size());
      for (const auto& s : cfg_.tenants) {
        depth_hist.push_back(
            &reg.histogram("wfq.queue_depth", "tenant=\"" + s.name + "\""));
      }
    }
  }

  // Windowed time-series (obs v2). Per-event values accumulate in plain
  // WindowAgg locals — every tally instant below is the current dispatch
  // instant `now`, so one agg per series covers exactly the open QoS
  // window — and flush_windows() merges them into the registry at each
  // interval rollover (plus once after the loop for the final interval).
  // Null pointers (obs compiled out, or a mode that never produces the
  // quantity) skip their tally sites.
  obs::TimeSeries* win_reads = nullptr;
  obs::TimeSeries* win_writes = nullptr;
  obs::TimeSeries* win_shed = nullptr;
  obs::TimeSeries* win_failed = nullptr;
  obs::TimeSeries* win_degraded = nullptr;
  obs::TimeSeries* win_response = nullptr;
  obs::TimeSeries* win_q = nullptr;
  std::vector<obs::TimeSeries*> win_device;
  std::vector<obs::TimeSeries*> win_tenant_reads;
  std::vector<obs::TimeSeries*> win_tenant_shed;
  WindowAgg agg_reads, agg_writes, agg_shed, agg_failed, agg_degraded,
      agg_response, agg_q;
  std::vector<WindowAgg> agg_device;
  std::vector<WindowAgg> agg_tenant_reads;
  std::vector<WindowAgg> agg_tenant_shed;
  // Live SLO evaluation: per-spec {total, bad} tallies for the open window,
  // fed to the global SloMonitor at the same rollover flush. `tenant` is
  // the resolved tenant index (-1 = all traffic).
  struct SloTally {
    obs::SloKind kind;
    std::int64_t threshold_ns;
    std::int32_t tenant;
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
  };
  std::vector<SloTally> slo_tallies;
  if constexpr (obs::kEnabled) {
    auto& tsr = obs::TimeSeriesRegistry::global();
    const auto series = [&](const char* name, const std::string& labels = {}) {
      return &tsr.series(name, labels, T);
    };
    win_reads = series("win.reads");
    win_writes = series("win.writes");
    win_failed = series("win.failed");
    win_degraded = series("win.degraded");
    win_response = series("win.response_ns");
    if (stat.has_value()) win_q = series("win.q_ppm");
    win_device.reserve(scheme_.devices());
    agg_device.resize(scheme_.devices());
    for (DeviceId d = 0; d < scheme_.devices(); ++d) {
      win_device.push_back(
          series("win.device.reads", "device=\"" + std::to_string(d) + "\""));
    }
    if (tenant_mode) {
      win_shed = series("win.shed");
      agg_tenant_reads.resize(cfg_.tenants.size());
      agg_tenant_shed.resize(cfg_.tenants.size());
      for (const auto& s : cfg_.tenants) {
        const std::string label = "tenant=\"" + s.name + "\"";
        win_tenant_reads.push_back(series("win.tenant.reads", label));
        win_tenant_shed.push_back(series("win.tenant.shed", label));
      }
    }
    if (!cfg_.slos.empty()) {
      obs::SloMonitor::global().configure(cfg_.slos);
      slo_tallies.reserve(cfg_.slos.size());
      for (const auto& spec : cfg_.slos) {
        std::int32_t tid = -1;
        for (std::size_t k = 0; k < cfg_.tenants.size(); ++k) {
          if (cfg_.tenants[k].name == spec.tenant) {
            tid = static_cast<std::int32_t>(k);
          }
        }
        slo_tallies.push_back(
            {spec.kind, spec.threshold_ns, tid, 0, 0});
      }
    }
  }
  // Merge every non-empty window tally into its series and feed the SLO
  // monitor one sample per spec. Called with the window index that just
  // closed; windows with no dispatch instants are simply never flushed
  // (they hold no data and contribute no SLO sample).
  const auto flush_windows = [&](std::int64_t window) {
    const auto fl = [&](obs::TimeSeries* s, WindowAgg& a) {
      if (s == nullptr || a.count == 0) return;
      s->merge(window, a.first_time, a.sum, a.count, a.min, a.max);
      a = WindowAgg{};
    };
    fl(win_reads, agg_reads);
    fl(win_writes, agg_writes);
    fl(win_shed, agg_shed);
    fl(win_failed, agg_failed);
    fl(win_degraded, agg_degraded);
    fl(win_response, agg_response);
    fl(win_q, agg_q);
    for (std::size_t d = 0; d < win_device.size(); ++d) {
      fl(win_device[d], agg_device[d]);
    }
    for (std::size_t k = 0; k < win_tenant_reads.size(); ++k) {
      fl(win_tenant_reads[k], agg_tenant_reads[k]);
      fl(win_tenant_shed[k], agg_tenant_shed[k]);
    }
    for (std::size_t si = 0; si < slo_tallies.size(); ++si) {
      auto& st = slo_tallies[si];
      obs::SloMonitor::global().record(si, window, st.total, st.bad);
      st.total = 0;
      st.bad = 0;
    }
  };

  // Fault state. The compiled plan is a pure function of (plan, scheme,
  // horizon), so the serial engine and every parallel shard materialize
  // identical fault schedules — serial ≡ parallel bit-identity holds under
  // any plan. An empty plan takes none of the branches below.
  const SimTime horizon = t.events.back().time + T;
  fault::FaultInjector injector(cfg_.faults, scheme_, horizon);
  const bool faults_active = injector.active();
  const SimTime retry_timeout = injector.compiled().retry_timeout;

  // Adaptive degraded-mode budgets. While devices are down, deterministic
  // admission runs against the surviving sub-design's guarantee
  // S' = (c-f-1)M² + (c-f)M (f = worst-case dead replicas over buckets
  // that still have a live copy) and statistical admission re-derives Q
  // from a P_k table sampled on the degraded array. Recomputed whenever
  // the down-set changes; tables are memoized per mask.
  std::uint64_t det_limit_now = det.limit();
  std::vector<bool> down_mask;     // empty = all devices up
  std::vector<bool> mask_scratch;
  std::map<std::vector<bool>, std::vector<double>> degraded_tables;

  std::uint64_t retries_tally = 0;
  std::uint64_t timeouts_tally = 0;
  std::uint64_t degraded_interval_tally = 0;
  std::int64_t last_degraded_qi = -1;

  // Deterministic admission against the *live* budget (S while healthy,
  // S' while degraded). DeterministicAdmission itself stays fixed at S;
  // only this wrapper tracks the adaptive limit.
  const auto accept_det = [&](std::uint64_t already,
                              std::uint64_t count) -> std::uint64_t {
    return already >= det_limit_now
               ? 0
               : std::min<std::uint64_t>(count, det_limit_now - already);
  };

  const auto update_budgets = [&]() {
    if (down_mask.empty()) {
      det_limit_now = det.limit();
      if (stat.has_value()) stat->set_budget(det.limit(), cfg_.p_table);
      if (tenant_mode) ts->set_live_budget(det_limit_now);
      return;
    }
    std::uint32_t f = 0;
    for (BucketId b = 0; b < scheme_.buckets(); ++b) {
      std::uint32_t dead = 0;
      std::uint32_t alive = 0;
      for (const auto d : scheme_.replicas(b)) {
        if (down_mask[d]) {
          ++alive;
        } else {
          ++dead;
        }
      }
      if (alive > 0) f = std::max(f, dead);
    }
    const std::uint32_t c_eff = scheme_.copies() > f ? scheme_.copies() - f : 1;
    det_limit_now = design::guarantee_buckets(c_eff, cfg_.access_budget);
    if (stat.has_value()) {
      auto [it, fresh] = degraded_tables.try_emplace(down_mask);
      if (fresh) {
        const auto max_k = static_cast<std::uint32_t>(cfg_.p_table.size() - 1);
        it->second = sample_optimal_probabilities(
            scheme_, max_k,
            {.samples_per_size = cfg_.p_table_samples,
             .seed = cfg_.p_table_seed,
             .threads = 1},
            down_mask);
      }
      stat->set_budget(det_limit_now, it->second);
    }
    if (tenant_mode) ts->set_live_budget(det_limit_now);
  };

  flashsim::FlashArray array(
      scheme_.devices(),
      std::make_shared<flashsim::FixedLatencyModel>(L, cfg_.write_latency));
  std::uint64_t next_background_op = result.outcomes.size();  // array ids for
      // per-replica write ops and background rebuild reads — anything whose
      // completion is not a trace outcome
  std::vector<SimTime> free_at(scheme_.devices(), 0);

  // Seed the dispatch queue. Online mode dispatches at arrival; aligned
  // mode at the enclosing interval boundary (requests already exactly on a
  // boundary run in that interval, matching the paper's synthetic setup).
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const SimTime arrival = t.events[i].time;
    const SimTime dispatch = cfg_.retrieval == RetrievalMode::kOnline
                                 ? arrival
                                 : next_interval_start(arrival, T);
    queue.push(Pending{dispatch, i, i});
    result.outcomes[i].arrival = arrival;
  }

  const auto slices = trace::report_slices(t);
  std::size_t report_idx = 0;  // which reporting interval the mapper is built for

  std::int64_t current_qi = -1;  // current QoS interval index
  std::uint64_t admitted = 0;    // requests admitted in current QoS interval
  std::uint64_t demand = 0;      // requests that asked for this interval

  // Per-event counters are tallied in plain locals and published once after
  // the loop — the shared sharded counters cost an atomic RMW per inc,
  // which is measurable at one inc per dispatched request.
  std::uint64_t dispatches_tally = 0;
  std::uint64_t deferrals_tally = 0;
  std::uint64_t write_ops_tally = 0;

  // Effective read service on `dev` for a read starting at `at`: the base
  // quantum stretched by any covering latency-spike window. Passed to the
  // simulator as a per-request override so the dispatch model and the
  // event simulator agree exactly.
  const auto read_service = [&](DeviceId dev, SimTime at) -> SimTime {
    if (!faults_active) return L;
    const double factor = injector.service_multiplier(dev, at);
    if (factor == 1.0) return L;
    return std::max<SimTime>(
        1, static_cast<SimTime>(std::llround(static_cast<double>(L) * factor)));
  };

  const auto dispatch_request = [&](std::size_t idx, DeviceId dev, SimTime start) {
    const SimTime svc = read_service(dev, start);
    array.submit(flashsim::IoRequest{.id = idx,
                                     .device = dev,
                                     .submit_time = start,
                                     .pages = 1,
                                     .service_override =
                                         faults_active ? svc : SimTime{0}});
    auto& o = result.outcomes[idx];
    o.device = dev;
    o.start = start;
    o.finish = start + svc;
    free_at[dev] = std::max(free_at[dev], o.finish);
    if constexpr (obs::kEnabled) {
      ++dispatches_tally;
      // Window tallies key on the dispatch instant (== the loop's `now` at
      // every call site), which always lies in the open QoS window.
      const SimTime at = o.dispatch;
      const std::int64_t resp = o.finish - o.dispatch;
      agg_reads.add(at, 1);
      agg_response.add(at, resp);
      agg_device[dev].add(at, 1);
      if (win_q != nullptr) agg_q.add(at, o.q_ppm);
      if (o.path == RetrievalPath::kDegraded) agg_degraded.add(at, 1);
      if (tenant_mode) {
        agg_tenant_reads[static_cast<std::size_t>(o.tenant)].add(at, 1);
      }
      for (auto& st : slo_tallies) {
        if (st.kind == obs::SloKind::kAdmissionFloor) continue;
        if (st.tenant >= 0 &&
            static_cast<std::uint32_t>(st.tenant) != o.tenant) {
          continue;
        }
        ++st.total;
        if (resp > st.threshold_ns) ++st.bad;
      }
    }
  };

  // Hot-spare rebuild reads are paced background work: submitted to the
  // simulator like foreground dispatches (they occupy real device time, so
  // the dispatch model folds them into free_at), but their completions are
  // not trace outcomes.
  const auto submit_rebuild_due = [&](SimTime now) {
    const auto due = injector.take_rebuild_due(now);
    for (const auto& rr : due) {
      const SimTime start = std::max(free_at[rr.source], rr.time);
      const SimTime svc = read_service(rr.source, start);
      array.submit(flashsim::IoRequest{.id = next_background_op++,
                                       .device = rr.source,
                                       .submit_time = start,
                                       .pages = 1,
                                       .service_override = svc});
      free_at[rr.source] = start + svc;
    }
    if constexpr (obs::kEnabled) {
      if (!due.empty()) {
        auto& fm = FaultMetrics::get();
        fm.rebuild_reads.inc(due.size());
        fm.rebuild_pending.add(-static_cast<std::int64_t>(due.size()));
      }
    }
  };
  if constexpr (obs::kEnabled) {
    if (injector.rebuild_reads_total() > 0) {
      FaultMetrics::get().rebuild_pending.add(
          static_cast<std::int64_t>(injector.rebuild_reads_total()));
    }
  }

  // Per-instant buffers, hoisted out of the dispatch loop so steady-state
  // scheduling reuses their capacity instead of reallocating every group.
  std::vector<Pending> group;
  std::vector<BucketId> buckets;
  std::vector<bool> available;
  std::vector<Pending> live;
  std::vector<BucketId> live_buckets;
  std::vector<Pending> reads;
  std::vector<BucketId> read_buckets;
  std::vector<std::size_t> order;
  std::vector<std::size_t> matched_members;  // indices into group/buckets
  std::vector<std::size_t> surplus_members;
  std::vector<SimTime> cursor;
  std::vector<SimTime> svc_now;  // per-device effective quanta under spikes

  while (!queue.empty()) {
    // Pop the group of requests dispatching at the same instant.
    const SimTime now = queue.top().dispatch;
    group.clear();
    while (!queue.empty() && queue.top().dispatch == now) {
      group.push_back(queue.top());
      queue.pop();
    }
    if (tenant_mode) {
      // Drop stale wakes: requests dispensed (or failed) at an earlier
      // instant while their boundary wake was still pending.
      std::erase_if(group,
                    [&](const Pending& g) { return tstate[g.idx] == 2; });
    }
    if (faults_active) submit_rebuild_due(now);
    array.run_until(now);

    // Reporting-interval rollover: rebuild the FIM mapping from the slice
    // that just closed (paper: "we use the trace one previous than the
    // current interval for mining").
    if (cfg_.mapping == MappingMode::kFim && t.report_interval > 0) {
      const auto target = static_cast<std::size_t>(now / t.report_interval);
      while (report_idx < target && report_idx < slices.size()) {
        if (fim != nullptr) {
          mapper.rebuild(fim->slice(report_idx));
        } else {
          const auto [begin, end] = slices[report_idx];
          mapper.rebuild(mine_event_range(t, begin, end, T, cfg_.fim_min_support));
        }
        ++report_idx;
      }
    }

    // QoS interval rollover: reset the admission budget.
    const std::int64_t qi = now / T;
    if (qi != current_qi) {
      if (stat.has_value() && current_qi >= 0) stat->end_interval(demand, admitted);
      if constexpr (obs::kEnabled) {
        if (current_qi >= 0) {
          obs::Tracer::global().record(
              {.request = -1,
               .start = now,
               .end = now,
               .value = static_cast<std::int64_t>(admitted),
               .device = -1,
               .kind = obs::EventKind::kInterval,
               .detail = obs::EventDetail::kNone});
          flush_windows(current_qi);
        }
      }
      current_qi = qi;
      admitted = 0;
      demand = 0;
      if (tenant_mode) {
        // Depth sampled at the boundary = backlog carried across it.
        ts->observe_depths();
        if constexpr (obs::kEnabled) {
          for (std::size_t k = 0; k < depth_hist.size(); ++k) {
            depth_hist[k]->record(static_cast<std::int64_t>(ts->depth(k)));
          }
        }
        ts->begin_interval(det_limit_now);
      }
    }
    // Q estimate for this interval (constant between end_interval calls);
    // recorded on every outcome dispatched at this instant.
    const auto q_ppm =
        stat.has_value()
            ? static_cast<std::int32_t>(std::llround(stat->q_with() * 1e6))
            : 0;
    for (const auto& g : group) {
      if (t.events[g.idx].is_read) ++demand;  // writes bypass read admission
    }

    // Resolve buckets through the mapper; record dispatch tentatively (a
    // deferred request's outcome is overwritten on its next pass).
    buckets.resize(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      const auto m = mapper.map(t.events[group[i].idx].block);
      buckets[i] = m.bucket;
      auto& o = result.outcomes[group[i].idx];
      o.dispatch = now;
      o.fim_matched = cfg_.mapping == MappingMode::kFim && m.matched;
      o.q_ppm = q_ppm;
      o.tenant = t.events[group[i].idx].tenant;
    }

    const auto defer = [&](const Pending& p) {
      Pending d = p;
      d.dispatch = (qi + 1) * T;
      queue.push(d);
      if constexpr (obs::kEnabled) ++deferrals_tally;
    };

    // Device availability at this instant. Requests whose replicas are all
    // down either wait for the earliest recovery (re-queued with retry
    // accounting) or are marked failed — when no replica ever comes back,
    // or when the wait would blow the plan's retry timeout. (`available`
    // stays empty — meaning all-up — while zero devices are down, so a
    // fully recovered array is indistinguishable from a healthy one.)
    if (faults_active) {
      const std::uint32_t down =
          injector.fill_availability(now, scheme_.devices(), mask_scratch);
      if (down == 0) {
        available.clear();
      } else {
        available = mask_scratch;
      }
      if (available != down_mask) {
        down_mask = available;
        update_budgets();
      }
      if (down > 0) {
        if (qi != last_degraded_qi) {
          ++degraded_interval_tally;
          last_degraded_qi = qi;
        }
        live.clear();
        live_buckets.clear();
        for (std::size_t i = 0; i < group.size(); ++i) {
          if (tenant_mode && t.events[group[i].idx].is_read) {
            // Reads pass through: stranded heads are handled at dispense
            // time (strand_check below), where the WFQ queue can drop
            // them; failing them here would leave stale queue entries.
            live.push_back(group[i]);
            live_buckets.push_back(buckets[i]);
            continue;
          }
          const auto reps = scheme_.replicas(buckets[i]);
          if (std::any_of(reps.begin(), reps.end(),
                          [&](DeviceId d) { return available[d]; })) {
            live.push_back(group[i]);
            live_buckets.push_back(buckets[i]);
            continue;
          }
          // Stranded: earliest instant any replica is up again (chasing
          // chained windows), pushed out to the next interval boundary.
          SimTime recovery = DeviceFailure::kNeverRecovers;
          for (const auto d : reps) {
            recovery = std::min(recovery, injector.device_up_at(d, now));
          }
          auto& o = result.outcomes[group[i].idx];
          SimTime next_dispatch = 0;
          if (recovery != DeviceFailure::kNeverRecovers) {
            next_dispatch =
                std::max((qi + 1) * T, next_interval_start(recovery, T));
          }
          const bool timed_out =
              recovery != DeviceFailure::kNeverRecovers &&
              retry_timeout != fault::RetryPolicy::kNoTimeout &&
              next_dispatch - o.arrival > retry_timeout;
          if (recovery == DeviceFailure::kNeverRecovers || timed_out) {
            o.failed = true;
            o.start = now;
            o.finish = now;
            o.path = RetrievalPath::kFailed;
            if (timed_out) ++timeouts_tally;
            if constexpr (obs::kEnabled) agg_failed.add(now, 1);
            continue;
          }
          Pending p = group[i];
          p.dispatch = next_dispatch;
          queue.push(p);
          ++retries_tally;
        }
        std::swap(group, live);
        std::swap(buckets, live_buckets);
        // Tenant mode proceeds even with an empty group: queued backlog
        // may still be dispensable at this instant.
        if (group.empty() && !tenant_mode) continue;
      }
    }

    // Writes (extension): replicate the program to every live copy. They
    // bypass read admission, but the device time they consume is real — the
    // matcher sees the updated free times and defers reads accordingly.
    // Processed before the group's reads (pessimistic for read QoS).
    {
      reads.clear();
      read_buckets.clear();
      bool any_write = false;
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (t.events[group[i].idx].is_read) {
          reads.push_back(group[i]);
          read_buckets.push_back(buckets[i]);
          continue;
        }
        any_write = true;
        auto& o = result.outcomes[group[i].idx];
        o.is_write = true;
        o.path = RetrievalPath::kWrite;
        SimTime first_start = INT64_MAX;
        SimTime last_finish = 0;
        DeviceId first_dev = kInvalidDevice;
        for (const auto dev : scheme_.replicas(buckets[i])) {
          if (!available.empty() && !available[dev]) continue;
          const SimTime start = std::max(free_at[dev], now);
          const SimTime finish = start + cfg_.write_latency;
          array.submit(flashsim::IoRequest{.id = next_background_op++,
                                           .device = dev,
                                           .submit_time = now,
                                           .pages = 1,
                                           .is_write = true});
          if constexpr (obs::kEnabled) ++write_ops_tally;
          free_at[dev] = finish;
          if (start < first_start) {
            first_start = start;
            first_dev = dev;
          }
          last_finish = std::max(last_finish, finish);
        }
        FLASHQOS_ASSERT(first_dev != kInvalidDevice, "filter left a dead write");
        o.device = first_dev;
        o.start = first_start;
        o.finish = last_finish;
        if constexpr (obs::kEnabled) agg_writes.add(now, 1);
      }
      if (any_write) {
        std::swap(group, reads);
        std::swap(buckets, read_buckets);
        if (group.empty() && !tenant_mode) continue;
      }
    }

    // Multi-tenant WFQ front end: fresh reads join their tenant queue
    // (mark/shed backpressure applied at enqueue), then the scheduler
    // dispenses the live budget across backlogged tenants in virtual-
    // finish-time order, reservations honored as floors. The Pending
    // queue doubles as the wake clock — every still-queued request holds
    // exactly one wake at the next interval boundary, so backlog keeps
    // draining after the last arrival and every request reaches a final
    // state (dispatched, shed, or failed).
    if (tenant_mode) {
      for (std::size_t i = 0; i < group.size(); ++i) {
        const std::size_t id = group[i].idx;
        if (tstate[id] != 0) continue;  // a wake, already in its FIFO
        auto& o = result.outcomes[id];
        const auto tid = static_cast<std::size_t>(t.events[id].tenant);
        if constexpr (obs::kEnabled) {
          // Admission-floor SLOs count every fresh enqueue attempt; sheds
          // below add the bad half.
          for (auto& st : slo_tallies) {
            if (st.kind != obs::SloKind::kAdmissionFloor) continue;
            if (st.tenant >= 0 && static_cast<std::size_t>(st.tenant) != tid) {
              continue;
            }
            ++st.total;
          }
        }
        switch (ts->enqueue(tid, id)) {
          case WfqQueues::Enqueue::kShed:
            // Hard backpressure: dropped at the front end, never queued.
            // Finalized at the arrival instant so shed requests cannot
            // distort the latency populations.
            o.dispatch = now;
            o.start = now;
            o.finish = now;
            o.failed = true;
            o.path = RetrievalPath::kShed;
            tstate[id] = 2;
            if constexpr (obs::kEnabled) {
              agg_shed.add(now, 1);
              agg_tenant_shed[tid].add(now, 1);
              for (auto& st : slo_tallies) {
                if (st.kind != obs::SloKind::kAdmissionFloor) continue;
                if (st.tenant >= 0 &&
                    static_cast<std::size_t>(st.tenant) != tid) {
                  continue;
                }
                ++st.bad;
              }
            }
            break;
          case WfqQueues::Enqueue::kMarked:
            o.wfq_marked = true;
            [[fallthrough]];
          case WfqQueues::Enqueue::kAccepted:
            tstate[id] = 1;
            break;
        }
      }

      const bool unlimited = cfg_.admission == AdmissionMode::kNone;
      tenant_blocked.assign(ts->tenants(), false);

      // Head with every replica down right now: 0 = servable, 1 = wait
      // (tenant blocked this instant; its wake retries at the boundary),
      // 2 = failed and removed from its queue.
      const auto strand_check = [&](std::size_t tid, std::uint64_t id,
                                    BucketId bucket) -> int {
        if (available.empty()) return 0;
        const auto reps = scheme_.replicas(bucket);
        if (std::any_of(reps.begin(), reps.end(),
                        [&](DeviceId d) { return available[d]; })) {
          return 0;
        }
        SimTime recovery = DeviceFailure::kNeverRecovers;
        for (const auto d : reps) {
          recovery = std::min(recovery, injector.device_up_at(d, now));
        }
        auto& o = result.outcomes[id];
        SimTime next_dispatch = 0;
        if (recovery != DeviceFailure::kNeverRecovers) {
          next_dispatch =
              std::max((qi + 1) * T, next_interval_start(recovery, T));
        }
        const bool timed_out =
            recovery != DeviceFailure::kNeverRecovers &&
            retry_timeout != fault::RetryPolicy::kNoTimeout &&
            next_dispatch - o.arrival > retry_timeout;
        if (recovery == DeviceFailure::kNeverRecovers || timed_out) {
          ts->drop_head(tid);
          o.dispatch = now;
          o.start = now;
          o.finish = now;
          o.failed = true;
          o.path = RetrievalPath::kFailed;
          if (timed_out) ++timeouts_tally;
          tstate[id] = 2;
          if constexpr (obs::kEnabled) agg_failed.add(now, 1);
          return 2;
        }
        tenant_blocked[tid] = true;
        return 1;
      };

      // Dispatch metadata shared by every dispense site. The dispatch
      // instant is when the scheduler releases the request — delay and
      // deferral semantics match the single-tenant admission path.
      const auto dispense_meta = [&](std::uint64_t id, bool matched) {
        auto& o = result.outcomes[id];
        o.dispatch = now;
        o.fim_matched = cfg_.mapping == MappingMode::kFim && matched;
        o.q_ppm = 0;
      };

      if (cfg_.scheduler == SchedulerMode::kPrimaryOnly) {
        while (const auto tid =
                   ts->next_candidate(tenant_blocked, unlimited)) {
          const std::uint64_t id = ts->head(*tid);
          if (tstate[id] == 2) {
            ts->drop_head(*tid);
            continue;
          }
          const auto m = mapper.map(t.events[id].block);
          if (strand_check(*tid, id, m.bucket) != 0) continue;
          ts->pop(*tid, unlimited);
          ++admitted;
          dispense_meta(id, m.matched);
          tstate[id] = 2;
          DeviceId dev = kInvalidDevice;
          for (const auto d : scheme_.replicas(m.bucket)) {
            if (available.empty() || available[d]) {
              dev = d;
              break;
            }
          }
          FLASHQOS_ASSERT(dev != kInvalidDevice,
                          "strand check left a dead head");
          result.outcomes[id].path = RetrievalPath::kPrimary;
          dispatch_request(id, dev, std::max(free_at[dev], now));
        }
      } else if (cfg_.retrieval == RetrievalMode::kIntervalAligned) {
        // Batch path: dispense by budget in VFT order, then schedule the
        // whole batch with DTR + max-flow exactly like the single-tenant
        // aligned path.
        aligned_ids.clear();
        aligned_buckets.clear();
        while (const auto tid =
                   ts->next_candidate(tenant_blocked, unlimited)) {
          const std::uint64_t id = ts->head(*tid);
          if (tstate[id] == 2) {
            ts->drop_head(*tid);
            continue;
          }
          const auto m = mapper.map(t.events[id].block);
          if (strand_check(*tid, id, m.bucket) != 0) continue;
          ts->pop(*tid, unlimited);
          ++admitted;
          dispense_meta(id, m.matched);
          tstate[id] = 2;
          aligned_ids.push_back(id);
          aligned_buckets.push_back(m.bucket);
        }
        if (!aligned_ids.empty()) {
          const retrieval::Schedule* sched =
              retriever_.schedule(aligned_buckets, available);
          FLASHQOS_ASSERT(sched != nullptr, "strand check left a dead head");
          const RetrievalPath batch_path =
              !available.empty() ? RetrievalPath::kDegraded
              : sched->via == retrieval::SolvedBy::kMaxFlow
                  ? RetrievalPath::kAlignedMaxFlow
                  : RetrievalPath::kAlignedDtr;
          order.resize(aligned_ids.size());
          for (std::size_t i = 0; i < aligned_ids.size(); ++i) order[i] = i;
          std::stable_sort(order.begin(), order.end(),
                           [&](std::size_t a, std::size_t b) {
                             return sched->assignments[a].round <
                                    sched->assignments[b].round;
                           });
          for (const auto i : order) {
            const DeviceId dev = sched->assignments[i].device;
            result.outcomes[aligned_ids[i]].path = batch_path;
            dispatch_request(aligned_ids[i], dev,
                             std::max(free_at[dev], now));
          }
        }
      } else {
        // Online deterministic: offer heads to the slot matcher in VFT
        // order. A refused head blocks its tenant for this instant only —
        // the next head in VFT order may still fit, which is what keeps
        // slots from idling while any queue is backlogged. With no
        // admission (kNone) nothing queues across instants: refused heads
        // overflow to their earliest-finishing replica, like the
        // single-tenant baseline.
        const std::vector<SimTime>* svc_ptr = nullptr;
        if (faults_active && injector.any_spike_at(now)) {
          svc_now.resize(scheme_.devices());
          for (DeviceId d = 0; d < scheme_.devices(); ++d) {
            svc_now[d] = read_service(d, now);
          }
          svc_ptr = &svc_now;
        }
        SlotMatcher matcher(scheme_, free_at, now, L, cfg_.access_budget,
                            available, svc_ptr);
        dispensed.clear();
        bool matching_open = true;
        while (const auto tid =
                   ts->next_candidate(tenant_blocked, unlimited)) {
          const std::uint64_t id = ts->head(*tid);
          if (tstate[id] == 2) {
            ts->drop_head(*tid);
            continue;
          }
          const auto m = mapper.map(t.events[id].block);
          if (strand_check(*tid, id, m.bucket) != 0) continue;
          if (matching_open && matcher.add(m.bucket)) {
            ts->pop(*tid, unlimited);
            ++admitted;
            dispense_meta(id, m.matched);
            tstate[id] = 2;
            dispensed.push_back(id);
            continue;
          }
          if (unlimited) {
            // Surplus placements change free_at under the matcher, so the
            // slot view is stale from the first refusal on (same rule as
            // the single-tenant kNone path).
            matching_open = false;
            ts->pop(*tid, true);
            dispense_meta(id, m.matched);
            tstate[id] = 2;
            DeviceId best = kInvalidDevice;
            for (const auto d : scheme_.replicas(m.bucket)) {
              if (!available.empty() && !available[d]) continue;
              if (best == kInvalidDevice ||
                  std::max(free_at[d], now) < std::max(free_at[best], now)) {
                best = d;
              }
            }
            FLASHQOS_ASSERT(best != kInvalidDevice,
                            "strand check left a dead head");
            result.outcomes[id].path = RetrievalPath::kSurplus;
            dispatch_request(id, best, std::max(free_at[best], now));
            continue;
          }
          tenant_blocked[*tid] = true;
        }
        // Materialize matched placements: add order is dispense order, so
        // per-device slots follow the WFQ dispatch order.
        const auto assignment = matcher.assignment();
        cursor.assign(free_at.size(), -1);
        for (std::size_t a = 0; a < dispensed.size(); ++a) {
          const std::uint64_t id = dispensed[a];
          const DeviceId dev = assignment[a];
          FLASHQOS_ASSERT(dev != kInvalidDevice,
                          "matched request must have a device");
          SimTime& c = cursor[dev];
          if (c < 0) c = std::max(free_at[dev], now);
          result.outcomes[id].path = RetrievalPath::kSlotMatched;
          dispatch_request(id, dev, c);
          c = result.outcomes[id].finish;
        }
      }

      // One wake per still-queued member of this group; queued requests
      // from older groups already hold theirs.
      for (const auto& g : group) {
        if (tstate[g.idx] != 1) continue;
        Pending d = g;
        d.dispatch = (qi + 1) * T;
        queue.push(d);
        if constexpr (obs::kEnabled) ++deferrals_tally;
      }
      continue;
    }

    if (cfg_.scheduler == SchedulerMode::kPrimaryOnly) {
      // Baseline dispatch: every request reads its first copy, FIFO behind
      // whatever is queued there; no admission interplay beyond the budget.
      for (std::size_t i = 0; i < group.size(); ++i) {
        std::uint64_t ok = group.size();
        switch (cfg_.admission) {
          case AdmissionMode::kNone:
            ok = 1;
            break;
          case AdmissionMode::kDeterministic:
            ok = accept_det(admitted, 1);
            break;
          case AdmissionMode::kStatistical:
            ok = stat->accept(admitted, 1);
            break;
        }
        if (ok == 0) {
          defer(group[i]);
          continue;
        }
        ++admitted;
        // First *live* replica — a degraded RAID read.
        DeviceId dev = kInvalidDevice;
        for (const auto d : scheme_.replicas(buckets[i])) {
          if (available.empty() || available[d]) {
            dev = d;
            break;
          }
        }
        FLASHQOS_ASSERT(dev != kInvalidDevice, "filter left a dead request");
        result.outcomes[group[i].idx].path = RetrievalPath::kPrimary;
        dispatch_request(group[i].idx, dev, std::max(free_at[dev], now));
      }
      continue;
    }

    if (cfg_.retrieval == RetrievalMode::kIntervalAligned) {
      // Batch path: admit up to the budget, schedule with DTR + max-flow,
      // dispatch round by round behind any residual device work.
      std::uint64_t n_accept = group.size();
      switch (cfg_.admission) {
        case AdmissionMode::kNone:
          break;
        case AdmissionMode::kDeterministic:
          n_accept = accept_det(admitted, group.size());
          break;
        case AdmissionMode::kStatistical:
          n_accept = stat->accept(admitted, group.size());
          break;
      }
      admitted += n_accept;
      for (std::size_t i = n_accept; i < group.size(); ++i) defer(group[i]);
      if (n_accept == 0) continue;
      buckets.resize(n_accept);

      const retrieval::Schedule* degraded = retriever_.schedule(buckets, available);
      FLASHQOS_ASSERT(degraded != nullptr, "filter left a dead request");
      const auto& schedule = *degraded;
      const RetrievalPath batch_path =
          !available.empty() ? RetrievalPath::kDegraded
          : schedule.via == retrieval::SolvedBy::kMaxFlow
              ? RetrievalPath::kAlignedMaxFlow
              : RetrievalPath::kAlignedDtr;
      // Requests on one device start back to back in round order.
      order.resize(n_accept);
      for (std::size_t i = 0; i < n_accept; ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return schedule.assignments[a].round <
                                schedule.assignments[b].round;
                       });
      for (const auto i : order) {
        const DeviceId dev = schedule.assignments[i].device;
        result.outcomes[group[i].idx].path = batch_path;
        dispatch_request(group[i].idx, dev, std::max(free_at[dev], now));
      }
      continue;
    }

    // Online mode. Deterministic portion: a request is admitted only if it
    // can be fitted inside the access budget on currently-available device
    // slots (with remapping of the same-instant batch); otherwise it is
    // delayed — this is what makes every admitted request meet the
    // guarantee exactly (the paper's flat 0.132507 ms line). Statistical
    // surplus beyond S: admitted while Q < ε and served from the earliest-
    // finishing replica, queueing allowed (the Fig. 10 response-time cost).
    const std::vector<SimTime>* svc_ptr = nullptr;
    if (faults_active && injector.any_spike_at(now)) {
      svc_now.resize(scheme_.devices());
      for (DeviceId d = 0; d < scheme_.devices(); ++d) {
        svc_now[d] = read_service(d, now);
      }
      svc_ptr = &svc_now;
    }
    SlotMatcher matcher(scheme_, free_at, now, L, cfg_.access_budget, available,
                        svc_ptr);
    matched_members.clear();
    surplus_members.clear();
    bool matching_open = true;
    for (std::size_t i = 0; i < group.size(); ++i) {
      const bool in_budget =
          cfg_.admission == AdmissionMode::kNone || admitted < det_limit_now;
      if (in_budget && matching_open && matcher.add(buckets[i])) {
        matched_members.push_back(i);
        ++admitted;
        continue;
      }
      if (cfg_.admission == AdmissionMode::kNone) {
        // Baseline: no deferral, queue on the earliest-finishing replica.
        matching_open = false;
        surplus_members.push_back(i);
        continue;
      }
      if (cfg_.admission == AdmissionMode::kStatistical &&
          admitted >= det_limit_now && stat->accept(admitted, 1) > 0) {
        matching_open = false;  // placements below invalidate the slot view
        surplus_members.push_back(i);
        ++admitted;
        continue;
      }
      defer(group[i]);
    }

    // Materialize the matched placements: per device, slot order follows
    // FIFO (matched_members is already in seq order).
    const auto assignment = matcher.assignment();
    cursor.assign(free_at.size(), -1);
    for (std::size_t a = 0; a < matched_members.size(); ++a) {
      const std::size_t i = matched_members[a];
      const DeviceId dev = assignment[a];
      FLASHQOS_ASSERT(dev != kInvalidDevice, "matched request must have a device");
      SimTime& c = cursor[dev];
      if (c < 0) c = std::max(free_at[dev], now);
      result.outcomes[group[i].idx].path = RetrievalPath::kSlotMatched;
      dispatch_request(group[i].idx, dev, c);
      // Advance by the *actual* finish — under a latency spike the slot is
      // wider than L, and the next slot on this device starts after it.
      c = result.outcomes[group[i].idx].finish;
    }
    // Statistical surplus / no-admission overflow: earliest finish replica.
    for (const auto i : surplus_members) {
      const auto reps = scheme_.replicas(buckets[i]);
      DeviceId best = kInvalidDevice;
      for (const auto d : reps) {
        if (!available.empty() && !available[d]) continue;
        if (best == kInvalidDevice ||
            std::max(free_at[d], now) < std::max(free_at[best], now)) {
          best = d;
        }
      }
      FLASHQOS_ASSERT(best != kInvalidDevice, "filter left a dead request");
      result.outcomes[group[i].idx].path = RetrievalPath::kSurplus;
      dispatch_request(group[i].idx, best, std::max(free_at[best], now));
    }
  }
  if (stat.has_value()) stat->end_interval(demand, admitted);
  if (tenant_mode) {
    FLASHQOS_ASSERT(!ts->backlogged(),
                    "tenant backlog must drain before the replay ends");
    result.tenant_usage.resize(ts->tenants());
    for (std::size_t k = 0; k < ts->tenants(); ++k) {
      result.tenant_usage[k] = ts->usage(k);
    }
  }

  array.run();
  for (const auto& c : array.take_completions()) {
    if (c.id >= result.outcomes.size()) continue;  // per-replica write op
    auto& o = result.outcomes[c.id];
    FLASHQOS_ASSERT(o.start == c.start && o.finish == c.finish,
                    "pipeline dispatch model diverged from the simulator");
    o.start = c.start;
    o.finish = c.finish;
  }

  for (const auto& o : result.outcomes) {
    if (o.failed || o.is_write) continue;
    if (o.response() > cfg_.qos_interval) ++result.deadline_violations;
  }
  if constexpr (obs::kEnabled) {
    // The loop only flushes a window when a later instant opens the next
    // one; the final interval still holds its tallies.
    if (current_qi >= 0) flush_windows(current_qi);
    auto& m = PipelineMetrics::get();
    m.dispatches.inc(dispatches_tally);
    m.deferral_events.inc(deferrals_tally);
    m.write_replica_ops.inc(write_ops_tally);
    if (faults_active) {
      auto& fm = FaultMetrics::get();
      fm.injected_outages.inc(injector.compiled().outages.size());
      fm.injected_spikes.inc(injector.compiled().spikes.size());
      if (degraded_interval_tally > 0) fm.degraded_intervals.inc(degraded_interval_tally);
      if (retries_tally > 0) fm.retries.inc(retries_tally);
      if (timeouts_tally > 0) fm.timeouts.inc(timeouts_tally);
      // Rebuild reads due after the last dispatch instant never run (the
      // trace ended); return their pending-gauge contribution so the gauge
      // reads 0 between replays.
      const auto leftover = static_cast<std::int64_t>(
          injector.rebuild_reads_total() - injector.rebuild_reads_issued());
      if (leftover > 0) fm.rebuild_pending.add(-leftover);
    }
    if (tenant_mode) {
      // Per-tenant WFQ tallies, published once per replay like everything
      // else; wfq.vtime accumulates virtual-clock progress (micro-units)
      // across replays.
      auto& reg = obs::MetricRegistry::global();
      reg.gauge("wfq.vtime").add(std::llround(ts->virtual_time() * 1e6));
      for (std::size_t k = 0; k < ts->tenants(); ++k) {
        const auto& u = ts->usage(k);
        const std::string label = "tenant=\"" + cfg_.tenants[k].name + "\"";
        if (u.arrivals > 0) reg.counter("wfq.arrivals", label).inc(u.arrivals);
        if (u.admitted > 0) reg.counter("wfq.admitted", label).inc(u.admitted);
        if (u.shed > 0) reg.counter("wfq.shed", label).inc(u.shed);
        if (u.marked > 0) reg.counter("wfq.marked", label).inc(u.marked);
      }
    }
    record_outcome_observability(result);
  }
  return result;
}

PipelineResult replay_original(const trace::Trace& t, SimTime service_time,
                               SimTime deadline) {
  PipelineResult result;
  result.outcomes.resize(t.events.size());
  if (t.events.empty()) return result;
  FLASHQOS_EXPECT(valid_trace(t), "replay input must be a valid trace");
  FLASHQOS_EXPECT(t.volumes > 0, "original replay needs the trace volume count");

  flashsim::FlashArray array(
      t.volumes, std::make_shared<flashsim::FixedLatencyModel>(service_time));
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const auto& e = t.events[i];
    array.submit(flashsim::IoRequest{.id = i,
                                     .device = e.device,
                                     .submit_time = e.time,
                                     .pages = e.size_blocks});
    result.outcomes[i].arrival = e.time;
    result.outcomes[i].dispatch = e.time;
    result.outcomes[i].device = e.device;
  }
  array.run();
  for (const auto& c : array.take_completions()) {
    result.outcomes[c.id].start = c.start;
    result.outcomes[c.id].finish = c.finish;
  }
  for (const auto& o : result.outcomes) {
    if (o.response() > deadline) ++result.deadline_violations;
  }
  finalize_reports(result, t);
  return result;
}

}  // namespace flashqos::core
