// End-to-end QoS pipeline (the paper's full system, §III-§IV).
//
// A pipeline owns the glue: trace events → FIM block mapping → admission
// control → retrieval scheduling → flash-array simulation → per-interval
// metrics. Two retrieval modes:
//
//  * kIntervalAligned — requests arriving inside an interval are deferred
//    to the next interval boundary and scheduled as one batch with
//    design-theoretic retrieval (+ max-flow remapping). §III-C.
//  * kOnline — requests are served the moment they arrive (FCFS, earliest-
//    finish replica); same-instant bursts are batch-scheduled. §IV-B.
//
// Admission is per QoS interval T: deterministic (≤ S), statistical
// (Q < ε), or none (baseline comparisons). Requests over the budget are
// *delayed* to the next interval (the paper's choice: "canceling the
// requests may effect the running state of applications").
//
// Metric conventions (matching the paper's figures):
//  * response time  = finish − dispatch. Dispatch is when admission releases
//    the request; the flat 0.132507 ms lines in Figs. 8/9 are this metric.
//  * delay          = dispatch − arrival; a request is "delayed" iff
//    admission pushed it to a later interval. Figs. 8(c,d), 9 labels, 12.
//  * end-to-end     = finish − arrival (reported for completeness).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/block_mapper.hpp"
#include "core/tenant_scheduler.hpp"
#include "decluster/allocation.hpp"
#include "fault/fault_plan.hpp"
#include "fim/transaction.hpp"
#include "flashsim/flash_array.hpp"
#include "obs/slo.hpp"
#include "retrieval/retriever.hpp"
#include "trace/event.hpp"

namespace flashqos::trace {
class TraceCursor;
}

namespace flashqos::core {

enum class RetrievalMode { kIntervalAligned, kOnline };
enum class AdmissionMode { kNone, kDeterministic, kStatistical };
enum class MappingMode { kModulo, kFim };

/// How a dispatched request picks among its replicas.
///  * kReplicaScheduled — the framework's retrieval machinery (batch DTR +
///    max-flow remapping, earliest-finish for singletons).
///  * kPrimaryOnly — always read the first copy. This is how the paper's
///    RAID-1 baselines behave in Table III (they have an allocation but no
///    retrieval algorithm); a mirrored layout under primary-only reads
///    concentrates each group's load on one device and collapses.
enum class SchedulerMode { kReplicaScheduled, kPrimaryOnly };

/// A device outage window (now defined by the fault subsystem; the core
/// spelling remains for existing code). Requests are never routed to a
/// down device; replication serves them from surviving copies (degraded
/// mode). A request whose replicas are all down waits for the earliest
/// recovery, or is marked failed if none of them ever comes back.
using DeviceFailure = fault::DeviceFailure;

struct PipelineConfig {
  SimTime qos_interval = kBaseInterval;  // T
  std::uint32_t access_budget = 1;       // M
  SimTime service_time = kPageReadLatency;
  RetrievalMode retrieval = RetrievalMode::kOnline;
  AdmissionMode admission = AdmissionMode::kDeterministic;
  SchedulerMode scheduler = SchedulerMode::kReplicaScheduled;
  double epsilon = 0.0;                  // statistical admission budget
  std::vector<double> p_table;           // P_k for statistical admission
  MappingMode mapping = MappingMode::kFim;
  std::uint64_t fim_min_support = 1;
  /// Everything that can go wrong during the replay: scripted outage and
  /// latency-spike windows, seeded generators, hot-spare rebuild, retry
  /// timeouts. Empty plan (the default) = healthy array, bit-identical to
  /// a run without the fault subsystem. Scripted outages live in
  /// `faults.outages` (the former `failures` vector).
  fault::FaultPlan faults;
  /// Monte-Carlo effort and stream for the *degraded* P_k tables the
  /// adaptive statistical admission re-samples when devices go down (the
  /// healthy table arrives pre-sampled in `p_table`).
  std::size_t p_table_samples = 400;
  std::uint64_t p_table_seed = 7;
  /// Page program time for write requests (extension; the paper's
  /// evaluation is read-only). Writes go to every live replica and bypass
  /// read admission, but they occupy devices — reads defer around them.
  SimTime write_latency = flashsim::kPageWriteLatency;
  /// Multi-tenant WFQ front end. Empty (the default) = single-tenant
  /// pipeline, bit-identical to a build without the tenant subsystem.
  /// Non-empty: every read is queued per its event's tenant index and the
  /// scheduler dispenses the live interval budget across tenants in
  /// virtual-finish-time order, reservations honored as floors
  /// (core/tenant_scheduler.hpp). Statistical admission is not yet
  /// supported with tenants (the surplus rule and the WFQ share interact;
  /// validate() rejects the combination).
  std::vector<TenantSpec> tenants;
  /// Deliberate-defect switches for the fairness oracle's liveness tests
  /// (see WfqKnobs); production configs leave this default.
  WfqKnobs wfq_knobs;
  /// Declarative SLOs evaluated live while this config replays (obs v2).
  /// Non-empty: the pipeline configures obs::SloMonitor::global() at
  /// replay start and feeds it one {total, bad} sample per spec per QoS
  /// window at interval rollovers. Response/miss specs count dispatched
  /// reads whose response exceeds the spec threshold; admission-floor
  /// specs count WFQ enqueue attempts vs sheds. A spec naming a tenant
  /// applies to that tenant's requests only (the name must exist in
  /// `tenants`); an empty tenant means all traffic. One SLO-configured
  /// pipeline at a time — the monitor is process-global, so concurrent
  /// sweep jobs must leave this empty.
  std::vector<obs::SloSpec> slos;

  /// Readable diagnostics; empty means the config is coherent. `devices`
  /// bounds fault-plan device ids when nonzero. QosPipeline's constructor
  /// and build_experiment() both call this, so an invalid combination
  /// fails at the boundary with context instead of deep inside the run.
  [[nodiscard]] std::vector<std::string> validate(std::uint32_t devices = 0) const;
};

/// Which serving path a request took. Recorded for observability but part
/// of the result contract: the serial and parallel engines must agree on
/// it exactly (audited by flashqos_verify --replay), so instrumentation
/// cannot silently change behaviour.
enum class RetrievalPath : std::uint8_t {
  kUnset = 0,
  kPrimary,         // primary-only scheduler: first live replica
  kSlotMatched,     // online deterministic slot matching (the flat line)
  kSurplus,         // online statistical surplus / no-admission overflow
  kAlignedDtr,      // aligned batch, DTR fast path produced the schedule
  kAlignedMaxFlow,  // aligned batch, max-flow fallback produced it
  kDegraded,        // scheduled around a device outage
  kWrite,           // replicated page program
  kFailed,          // no replica ever available
  kShed,            // dropped at the WFQ front end: tenant queue full
};

[[nodiscard]] const char* to_string(RetrievalPath path) noexcept;

struct RequestOutcome {
  SimTime arrival = 0;
  SimTime dispatch = 0;
  SimTime start = 0;
  SimTime finish = 0;
  DeviceId device = kInvalidDevice;
  bool fim_matched = false;  // bucket came from the FIM mapping table
  bool failed = false;       // all replicas permanently down; never served
  bool is_write = false;     // replicated page program, not a QoS read
  RetrievalPath path = RetrievalPath::kUnset;
  /// Estimated long-run miss probability Q at this request's dispatch
  /// instant, in parts per million (0 outside statistical admission).
  /// Integral so the equivalence audit can compare exactly.
  std::int32_t q_ppm = 0;
  /// Tenant class index (0 outside multi-tenant configs). Part of the
  /// serial ≡ parallel result contract like every other field here.
  std::uint32_t tenant = 0;
  /// ECN-style congestion bit: the tenant queue was at or past its mark
  /// threshold when this request was accepted into it.
  bool wfq_marked = false;

  [[nodiscard]] SimTime delay() const noexcept { return dispatch - arrival; }
  /// A request is "delayed" when it was not dispatched the instant it
  /// arrived — admission deferral in online mode, interval alignment (and
  /// deferral) in aligned mode. This is the population Figs. 8(c,d)/9/12
  /// report on.
  [[nodiscard]] bool deferred() const noexcept { return dispatch > arrival; }
  [[nodiscard]] SimTime response() const noexcept { return finish - dispatch; }
  [[nodiscard]] SimTime end_to_end() const noexcept { return finish - arrival; }
};

struct IntervalReport {
  std::size_t requests = 0;
  double avg_response_ms = 0.0;
  double max_response_ms = 0.0;
  double avg_e2e_ms = 0.0;
  double max_e2e_ms = 0.0;
  std::size_t deferred = 0;
  double pct_deferred = 0.0;      // deferred / requests
  double avg_delay_ms = 0.0;      // mean delay over deferred requests
  double fim_match_rate = 0.0;    // matched / requests
  std::size_t failed = 0;         // requests with no live replica, ever
  std::size_t writes = 0;         // write requests (excluded from read stats)
  double avg_write_ms = 0.0;      // mean write completion (finish - arrival)
};

struct PipelineResult {
  std::vector<IntervalReport> intervals;  // one per trace reporting interval
  std::vector<RequestOutcome> outcomes;   // per request, trace order
  IntervalReport overall;                 // aggregate over all requests
  std::size_t deadline_violations = 0;    // response > qos_interval
  /// Per-tenant WFQ tallies, indexed like PipelineConfig::tenants (empty
  /// for single-tenant configs). Part of the serial ≡ parallel contract.
  std::vector<TenantUsage> tenant_usage;
};

/// Observer of finalized streaming outcomes. run_stream() calls
/// on_outcome() once per event, in trace order (seq is the 0-based global
/// ingestion index, strictly increasing), at the moment the outcome folds
/// into the reports — which is exactly when the engine guarantees no field
/// can change again. This is how the service facade routes completions
/// back to live clients without materializing an outcomes vector. The
/// callback runs on the replay thread; implementations must not re-enter
/// the pipeline.
class OutcomeSink {
 public:
  virtual ~OutcomeSink() = default;
  virtual void on_outcome(std::uint64_t seq, const trace::TraceEvent& ev,
                          const RequestOutcome& out) = 0;
};

/// Options for the streaming replay path (QosPipeline::run_stream).
struct StreamOptions {
  /// Events pulled from the cursor per fill() call. Any positive value
  /// yields bit-identical results (the engine's read-ahead rule is
  /// batch-agnostic — audited by flashqos_verify --stream); larger batches
  /// amortize the per-batch virtual dispatch.
  std::size_t batch_size = 4096;
  /// Fault-schedule compile horizon. A streaming replay does not know the
  /// trace duration up front, so configs with a non-empty fault plan must
  /// pass the horizon the in-memory path derives (trace duration +
  /// qos_interval) to materialize the identical schedule. Ignored (may
  /// stay 0) when the fault plan is empty.
  SimTime horizon = 0;
  /// Retain per-reporting-interval reports (`StreamResult::intervals`).
  /// They are the one result component that grows with trace duration
  /// (one `IntervalReport` per reporting interval); trace-scale replays
  /// that only need the overall report, the deadline count, and the
  /// observability plane set this false to keep memory flat in trace
  /// length. Does not change any other field, metric, or time-series.
  bool keep_intervals = true;
  /// Deliberately break the engine's read-ahead drain bound by one
  /// instant (verification only): groups dispatching exactly at the
  /// ingestion frontier run before later batches deliver their
  /// same-instant members. The stream oracle flips this to prove it
  /// would catch an engine that dispatches ahead of ingestion.
  bool misdrain_for_test = false;
  /// Optional per-outcome observer (see OutcomeSink). Null = no callback;
  /// results, metrics, and time-series are identical either way.
  OutcomeSink* sink = nullptr;
};

/// Result of a streaming replay: everything PipelineResult carries except
/// the per-request outcomes vector, which would be O(trace) memory — the
/// point of streaming is that nothing here grows with trace length.
struct StreamResult {
  std::vector<IntervalReport> intervals;  // one per trace reporting interval
  IntervalReport overall;                 // aggregate over all requests
  std::uint64_t requests = 0;             // events consumed from the cursor
  std::size_t deadline_violations = 0;    // response > qos_interval
  std::vector<TenantUsage> tenant_usage;  // indexed like cfg.tenants
};

/// Serves the per-reporting-slice FIM mining results to the replay loop
/// (the decode→mine stage of the replay pipeline, factored out so it can
/// run ahead of the serial core). The serial engine mines inline; the
/// parallel engine hands mined slices over a bounded queue and blocks in
/// slice() until the one it needs arrives. Because mining is a pure
/// function of the trace slice (see mine_event_range), a mined-ahead run
/// is bit-identical to an inline run.
class FimSource {
 public:
  virtual ~FimSource() = default;
  /// Frequent pairs mined from reporting slice `idx`; may block. The
  /// returned span must stay valid until the next slice() call.
  [[nodiscard]] virtual std::span<const fim::FrequentPair> slice(std::size_t idx) = 0;
};

/// Mine events [begin, end) of `t`: each QoS interval's distinct read
/// blocks form one transaction, returned pairs have support >=
/// min_support. Pure and deterministic — the property the parallel replay
/// engine's bit-identical guarantee rests on.
[[nodiscard]] std::vector<fim::FrequentPair> mine_event_range(
    const trace::Trace& t, std::size_t begin, std::size_t end,
    SimTime qos_interval, std::uint64_t min_support);

/// Fold outcomes [begin, end) (trace order) into one report — the metric
/// stage of the replay pipeline. Accumulation order is fixed by the index
/// range, never by thread schedule, so per-interval reports can be
/// computed into pre-sized slots in parallel.
[[nodiscard]] IntervalReport summarize_outcome_range(
    std::span<const RequestOutcome> outcomes, std::size_t begin, std::size_t end);

/// The single-threaded replay engine. New code should not construct this
/// directly: service::PipelineService wraps it behind a thread-safe facade
/// with the same one-shot run()/run_stream() semantics plus live submit/
/// flush/drain, and is what flashqosd, flashqos_sim, and the examples use.
/// Direct construction remains supported for the engine's own harnesses
/// (oracles, model checker, benches) that need sub-facade access.
class QosPipeline {
 public:
  QosPipeline(const decluster::AllocationScheme& scheme, PipelineConfig cfg);

  /// Run the full pipeline over a trace. Trace block ids are data blocks
  /// (mapped to buckets); with MappingMode::kModulo a bucket-domain trace
  /// whose ids are < buckets() passes through unchanged. `fim` overrides
  /// inline mining with precomputed slices (parallel engine); null mines
  /// inline with identical results.
  [[nodiscard]] PipelineResult run(const trace::Trace& t, FimSource* fim = nullptr);

  /// Stages 1–4 only (decode/mapping/admission/scheduling/flashsim):
  /// outcomes and deadline_violations are filled, intervals/overall left
  /// empty. The parallel engine summarizes those itself, sharded across
  /// reporting slices; run() == replay() + serial summarization.
  [[nodiscard]] PipelineResult replay(const trace::Trace& t, FimSource* fim = nullptr);

  /// Streaming replay: pull events from `cursor` in batches and run the
  /// same engine as run() without materializing the trace or the outcomes
  /// vector — resident memory is O(batch + in-flight window), flat in
  /// trace length. Interval reports, the overall report, deadline
  /// violations, registry metrics, and windowed time-series are
  /// bit-identical to run() on the materialized trace at any batch size
  /// (audited by flashqos_verify --stream).
  [[nodiscard]] StreamResult run_stream(trace::TraceCursor& cursor,
                                        FimSource* fim = nullptr,
                                        const StreamOptions& opts = {});

 private:
  const decluster::AllocationScheme& scheme_;
  PipelineConfig cfg_;
  /// Retrieval facade owning the solver scratch, reused across every batch
  /// the pipeline schedules. One per pipeline is one per thread: the
  /// parallel replay engine constructs a fresh QosPipeline inside each job.
  retrieval::Retriever retriever_;
};

/// Baseline: replay a trace on its original volumes (the paper's "original
/// stand": "every block request is retrieved from the device it is stated
/// in the trace"), with no QoS machinery. response == end-to-end here.
[[nodiscard]] PipelineResult replay_original(const trace::Trace& t,
                                             SimTime service_time = kPageReadLatency,
                                             SimTime deadline = kBaseInterval);

}  // namespace flashqos::core
