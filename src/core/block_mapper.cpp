#include "core/block_mapper.hpp"

#include <algorithm>
#include <vector>

namespace flashqos::core {
namespace {

/// Number of shared devices between two buckets' replica sets.
std::uint32_t device_overlap(const decluster::AllocationScheme& scheme, BucketId a,
                             BucketId b) {
  std::uint32_t overlap = 0;
  for (const auto da : scheme.replicas(a)) {
    for (const auto db : scheme.replicas(b)) {
      if (da == db) ++overlap;
    }
  }
  return overlap;
}

}  // namespace

BucketId BlockMapper::pick_bucket(std::optional<BucketId> partner_bucket) {
  const std::size_t buckets = scheme_.buckets();
  // Choose the bucket minimizing, in order: device overlap with the
  // partner (zero when there is no partner), how many blocks already map
  // to the bucket (load balance — a handful of buckets are disjoint from
  // any given partner, and always reusing the same ones would funnel
  // unrelated blocks onto them), and cyclic distance from the round-robin
  // cursor (determinism / rotation). Designs are small; O(buckets) is fine.
  BucketId best = static_cast<BucketId>(cursor_ % buckets);
  std::uint32_t best_overlap = UINT32_MAX;
  std::size_t best_usage = SIZE_MAX;
  for (std::size_t i = 0; i < buckets; ++i) {
    const auto cand = static_cast<BucketId>((cursor_ + i) % buckets);
    const std::uint32_t ov =
        partner_bucket ? device_overlap(scheme_, cand, *partner_bucket) : 0;
    const std::size_t usage = usage_[cand];
    if (ov < best_overlap || (ov == best_overlap && usage < best_usage)) {
      best = cand;
      best_overlap = ov;
      best_usage = usage;
      if (ov == 0 && usage == 0) break;
    }
  }
  ++usage_[best];
  cursor_ = best + 1;
  return best;
}

void BlockMapper::rebuild(std::span<const fim::FrequentPair> pairs) {
  table_.clear();
  usage_.assign(scheme_.buckets(), 0);
  cursor_ = 0;
  // Strongest co-occurrences first: they deserve the cleanest separation.
  std::vector<const fim::FrequentPair*> order;
  order.reserve(pairs.size());
  for (const auto& p : pairs) order.push_back(&p);
  std::stable_sort(order.begin(), order.end(),
                   [](const fim::FrequentPair* x, const fim::FrequentPair* y) {
                     return x->support > y->support;
                   });
  for (const auto* p : order) {
    const auto it_a = table_.find(p->a);
    const auto it_b = table_.find(p->b);
    if (it_a == table_.end() && it_b == table_.end()) {
      const BucketId ba = pick_bucket(std::nullopt);
      table_.emplace(p->a, ba);
      table_.emplace(p->b, pick_bucket(ba));
    } else if (it_a == table_.end()) {
      table_.emplace(p->a, pick_bucket(it_b->second));
    } else if (it_b == table_.end()) {
      table_.emplace(p->b, pick_bucket(it_a->second));
    }
    // Both already placed: keep the earlier (higher-support) decisions.
  }
}

BlockMapper::MapResult BlockMapper::map(DataBlockId block) const {
  if (const auto it = table_.find(block); it != table_.end()) {
    return {it->second, true};
  }
  return {static_cast<BucketId>(block % scheme_.buckets()), false};
}

}  // namespace flashqos::core
