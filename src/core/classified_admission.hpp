// Multi-class admission: sharing one interval budget S across priority
// classes.
//
// The paper's admission control treats all requests alike; real
// deployments tier their tenants. ClassifiedAdmission splits the
// deterministic budget S into per-class *reservations* (a guaranteed
// minimum per interval) plus a shared remainder that higher-priority
// classes drain first. Invariants:
//
//   * a class can always use its full reservation, regardless of what any
//     other class does (isolation);
//   * unused reservations and the unreserved remainder are work-conserving
//     (no slot is wasted while someone wants it);
//   * total admissions per interval never exceed S, so the retrieval
//     guarantee is preserved for everyone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/expect.hpp"

namespace flashqos::core {

class ClassifiedAdmission {
 public:
  struct ClassSpec {
    std::string name;
    std::uint64_t reservation = 0;  // guaranteed slots per interval
  };

  /// `limit` is the interval budget S; reservations must sum to <= S.
  ClassifiedAdmission(std::uint64_t limit, std::vector<ClassSpec> classes);

  [[nodiscard]] std::uint64_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::size_t classes() const noexcept { return specs_.size(); }
  [[nodiscard]] const ClassSpec& spec(std::size_t cls) const {
    FLASHQOS_EXPECT(cls < specs_.size(), "class index out of range");
    return specs_[cls];
  }

  /// How many of `count` requests from `cls` may be admitted now. Draws
  /// from the class reservation first, then from the shared pool.
  /// Admissions are recorded; call end_interval() at each boundary.
  [[nodiscard]] std::uint64_t admit(std::size_t cls, std::uint64_t count);

  /// Slots a class could still get this instant (reservation remainder +
  /// shared pool).
  [[nodiscard]] std::uint64_t available(std::size_t cls) const;

  void end_interval();

  /// Totals since construction, for fairness reporting.
  [[nodiscard]] std::uint64_t admitted_total(std::size_t cls) const {
    FLASHQOS_EXPECT(cls < specs_.size(), "class index out of range");
    return lifetime_admitted_[cls];
  }

 private:
  std::uint64_t limit_;
  std::uint64_t shared_;  // S minus all reservations
  std::vector<ClassSpec> specs_;
  std::vector<std::uint64_t> used_reservation_;  // this interval
  std::uint64_t used_shared_ = 0;                // this interval
  std::vector<std::uint64_t> lifetime_admitted_;
};

}  // namespace flashqos::core
