#include "core/wfq.hpp"

#include <algorithm>
#include <cmath>

namespace flashqos::core {

WfqQueues::WfqQueues(std::vector<double> weights,
                     std::vector<std::size_t> capacities,
                     std::vector<std::size_t> mark_thresholds, WfqKnobs knobs)
    : weights_(std::move(weights)),
      capacities_(std::move(capacities)),
      marks_(std::move(mark_thresholds)),
      knobs_(knobs) {
  FLASHQOS_EXPECT(!weights_.empty(), "WFQ needs at least one queue");
  FLASHQOS_EXPECT(capacities_.size() == weights_.size() &&
                      marks_.size() == weights_.size(),
                  "WFQ parameter arrays must be the same length");
  for (std::size_t q = 0; q < weights_.size(); ++q) {
    FLASHQOS_EXPECT(std::isfinite(weights_[q]) && weights_[q] > 0.0,
                    "WFQ weights must be positive and finite");
    FLASHQOS_EXPECT(capacities_[q] >= 1, "WFQ queue capacity must be >= 1");
    FLASHQOS_EXPECT(marks_[q] >= 1 && marks_[q] <= capacities_[q],
                    "WFQ mark threshold must be in [1, capacity]");
    total_weight_ += weights_[q];
  }
  fifo_.resize(weights_.size());
  last_finish_.assign(weights_.size(), 0.0);
}

double WfqQueues::backlogged_weight() const {
  // Recomputed by summation in queue-index order — never maintained
  // incrementally — so the reference simulator's arithmetic matches ours
  // bit for bit (same additions in the same order).
  if (knobs_.skip_renormalization) return total_weight_;
  double w = 0.0;
  for (std::size_t q = 0; q < weights_.size(); ++q) {
    if (!fifo_[q].empty()) w += weights_[q];
  }
  return w;
}

WfqQueues::Enqueue WfqQueues::enqueue(std::size_t q, std::uint64_t id) {
  FLASHQOS_ASSERT(q < fifo_.size(), "WFQ enqueue to an unknown queue");
  auto& fifo = fifo_[q];
  if (fifo.size() >= capacities_[q]) return Enqueue::kShed;
  const double finish = std::max(vtime_, last_finish_[q]) + 1.0 / weights_[q];
  last_finish_[q] = finish;
  fifo.push_back(Item{id, finish});
  ++queued_;
  return fifo.size() >= marks_[q] ? Enqueue::kMarked : Enqueue::kAccepted;
}

std::optional<std::size_t> WfqQueues::next(
    const std::vector<bool>& exclude) const {
  std::optional<std::size_t> best;
  for (std::size_t q = 0; q < fifo_.size(); ++q) {
    if (fifo_[q].empty()) continue;
    if (!exclude.empty() && exclude[q]) continue;
    if (knobs_.fifo_order) return q;  // mutation: lowest backlogged index
    if (!best.has_value() || fifo_[q].front().finish < fifo_[*best].front().finish) {
      best = q;
    }
  }
  return best;
}

std::uint64_t WfqQueues::pop(std::size_t q) {
  FLASHQOS_ASSERT(!fifo_[q].empty(), "pop() on an empty WFQ queue");
  // Rate measured while the served queue still counts as backlogged.
  const double rate = backlogged_weight();
  const std::uint64_t id = fifo_[q].front().id;
  fifo_[q].pop_front();
  --queued_;
  vtime_ += 1.0 / rate;
  return id;
}

std::uint64_t WfqQueues::drop_head(std::size_t q) {
  FLASHQOS_ASSERT(!fifo_[q].empty(), "drop_head() on an empty WFQ queue");
  const std::uint64_t id = fifo_[q].front().id;
  fifo_[q].pop_front();
  --queued_;
  return id;
}

}  // namespace flashqos::core
