// Admission control (paper §III-A1 and §III-B2).
//
// Deterministic: the design guarantees any S = (c-1)M² + cM buckets
// retrievable in M accesses, so at most S requests are admitted per
// interval; the rest are rejected or delayed to the next interval.
//
// Statistical: batches beyond S may still retrieve optimally (Fig. 4), so
// the controller keeps the sampled P_k table plus running counters N_k
// (intervals seen with request size k) and N_t (intervals seen), and admits
// an over-limit batch while the long-run miss probability
//     Q = Σ_k (1 - P_k) · N_k / N_t
// stays below the user's ε. ε = 0 degenerates to the deterministic rule.
//
// Application-level admission (the paper's Table I walkthrough) reserves
// per-period request budgets for long-lived applications against the same
// limit S.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "design/block_design.hpp"

namespace flashqos::core {

/// Per-interval deterministic admission: accept up to S requests.
class DeterministicAdmission {
 public:
  DeterministicAdmission(std::uint32_t copies, std::uint32_t accesses)
      : limit_(design::guarantee_buckets(copies, accesses)) {}

  [[nodiscard]] std::uint64_t limit() const noexcept { return limit_; }

  /// With `already` requests accepted this interval, how many of `count`
  /// arriving requests may be accepted.
  [[nodiscard]] std::uint64_t accept(std::uint64_t already,
                                     std::uint64_t count) const noexcept {
    return already >= limit_ ? 0 : std::min(count, limit_ - already);
  }

 private:
  std::uint64_t limit_;
};

/// Long-lived application registry: applications declare their per-period
/// request size at join time; the registry admits them while the summed
/// reservation stays within S.
class ApplicationRegistry {
 public:
  explicit ApplicationRegistry(std::uint64_t limit) : limit_(limit) {}

  /// Returns an application handle, or nullopt if the reservation would
  /// exceed the limit.
  [[nodiscard]] std::optional<std::uint32_t> admit(std::uint64_t requests_per_period);
  void remove(std::uint32_t app_id);

  [[nodiscard]] std::uint64_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::uint64_t reserved() const noexcept { return reserved_; }
  [[nodiscard]] std::size_t applications() const noexcept { return apps_.size(); }

 private:
  std::uint64_t limit_;
  std::uint64_t reserved_ = 0;
  std::uint32_t next_id_ = 0;
  std::unordered_map<std::uint32_t, std::uint64_t> apps_;
};

class StatisticalAdmission {
 public:
  /// `p_table` is P_k for k = 0..max (from core::sample_optimal_probabilities);
  /// sizes beyond the table are treated as never-optimal (P = 0), which is
  /// conservative. `deterministic_limit` is S; `epsilon` the miss budget.
  StatisticalAdmission(std::vector<double> p_table, std::uint64_t deterministic_limit,
                       double epsilon);

  /// With `already` accepted this interval, how many of `count` arriving
  /// requests may be accepted under the Q < ε rule.
  [[nodiscard]] std::uint64_t accept(std::uint64_t already, std::uint64_t count) const;

  /// Close the books on an interval: `demand` requests wanted service,
  /// `admitted` were accepted. Only intervals whose demand exceeded the
  /// deterministic limit are counted — those are the intervals the
  /// statistical rule decides about. (Counting every interval would dilute
  /// Q toward zero on sparse traces and collapse the ε control into a
  /// binary switch; counting only over-limit intervals keeps the loop's
  /// equilibrium at Q ≈ ε. The paper's "total number of intervals
  /// encountered" is ambiguous on this point; see DESIGN.md.)
  void end_interval(std::uint64_t demand, std::uint64_t admitted);

  /// The long-run miss probability with the current counters, optionally
  /// with one extra interval of size k added (the admission test value).
  [[nodiscard]] double q_with(std::optional<std::uint64_t> extra_k = std::nullopt) const;

  /// Adaptive degraded mode: swap in the surviving sub-design's budget S'
  /// and its re-sampled P_k table mid-run. The interval counters N_k / N_t
  /// are history and stay; the weighted miss sum is recomputed against the
  /// new table so Q immediately reflects the degraded probabilities.
  void set_budget(std::uint64_t deterministic_limit, std::vector<double> p_table);

  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] std::uint64_t deterministic_limit() const noexcept { return limit_; }

 private:
  [[nodiscard]] double miss_probability(std::uint64_t k) const noexcept {
    if (k < p_table_.size()) return 1.0 - p_table_[k];
    return 1.0;
  }

  std::vector<double> p_table_;
  std::uint64_t limit_;
  double epsilon_;
  std::vector<std::uint64_t> n_k_;  // interval count per request size
  std::uint64_t n_t_ = 0;           // non-empty intervals seen
  double weighted_miss_ = 0.0;      // Σ_k (1 - P_k) · N_k, kept incrementally
};

}  // namespace flashqos::core
