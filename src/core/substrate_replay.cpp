#include "core/substrate_replay.hpp"

#include <algorithm>
#include <memory>

#include "util/stats.hpp"

namespace flashqos::core {

SubstrateReplayResult replay_on_ssd(const PipelineResult& result,
                                    const trace::Trace& t,
                                    const decluster::AllocationScheme& scheme,
                                    const flashsim::SsdModuleConfig& module_config,
                                    SimTime deadline) {
  FLASHQOS_EXPECT(result.outcomes.size() == t.events.size(),
                  "pipeline result and trace must describe the same run");
  SubstrateReplayResult out;
  std::vector<std::unique_ptr<flashsim::SsdModule>> modules;
  modules.reserve(scheme.devices());
  for (DeviceId d = 0; d < scheme.devices(); ++d) {
    modules.push_back(std::make_unique<flashsim::SsdModule>(module_config));
  }
  const std::uint64_t pages = modules.front()->logical_pages();

  std::vector<bool> is_read(result.outcomes.size(), true);
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& o = result.outcomes[i];
    if (o.failed) continue;
    is_read[i] = !o.is_write;
    // Stable block -> logical-page hash (SplitMix64 finalizer).
    std::uint64_t z = t.events[i].block + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    modules[o.device]->submit({.id = i,
                               .page = (z ^ (z >> 31)) % pages,
                               .is_write = o.is_write,
                               .submit_time = o.dispatch});
  }

  Accumulator acc;
  std::vector<double> read_lat;
  std::size_t within = 0;
  for (auto& m : modules) {
    m->run();
    out.cache_hits += m->cache_hits();
    out.gc_erases += m->total_gc_erases();
    for (const auto& c : m->completions()) {
      if (!is_read[c.id]) {
        ++out.writes;
        continue;
      }
      ++out.reads;
      const double ms = to_ms(c.response_time());
      read_lat.push_back(ms);
      acc.add(ms);
      if (c.response_time() <= deadline) ++within;
    }
  }
  if (out.reads > 0) {
    out.avg_ms = acc.mean();
    out.max_ms = acc.max();
    std::sort(read_lat.begin(), read_lat.end());
    out.p99_ms = percentile_sorted(read_lat, 0.99);
    out.within_guarantee = static_cast<double>(within) / static_cast<double>(out.reads);
  }
  return out;
}

}  // namespace flashqos::core
