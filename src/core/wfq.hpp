// Weighted-fair-queueing virtual-time bookkeeping (the multi-tenant
// front end's ordering core, modeled on the MQ-ECN wfq.h idiom).
//
// Each tenant owns one bounded FIFO. An enqueued request is stamped with a
// virtual finish time
//
//   F = max(V, F_last(q)) + 1/w_q
//
// and the scheduler always serves the backlogged queue whose head carries
// the minimum F (ties broken by queue index, so dispatch order is total
// and deterministic). The virtual clock V advances by 1/W_b per unit of
// service, where W_b is the weight sum over *backlogged* queues only —
// the "renormalization" that keeps idle tenants from banking credit and
// lets active tenants split the full rate. W_b is recomputed by summation
// in queue-index order at every service so the arithmetic is bit-identical
// to the brute-force reference simulator in tests/wfq_test.cpp.
//
// ECN-style backpressure: every queue has a mark threshold and a hard
// capacity. enqueue() reports kMarked when the post-enqueue depth crosses
// the mark threshold (a congestion signal recorded on the request) and
// kShed when the queue is full (the request is dropped, never queued).
//
// Single-threaded by design: this runs inside the serial replay core, so
// serial ≡ parallel bit-identity holds the same way it does for every
// other pipeline stage. The concurrent producer seam is
// core::BasicTenantIngress (tenant_scheduler.hpp), which hands arrivals
// to this structure from one draining thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "util/expect.hpp"

namespace flashqos::core {

/// Deliberate-defect switches for oracle-liveness tests: each one breaks a
/// specific fairness invariant so tests/wfq_test.cpp can prove the
/// corresponding `flashqos_verify --fairness` check actually fails.
/// Production configs leave every knob false (the default-constructed
/// value participates in no branch the healthy path takes).
struct WfqKnobs {
  /// Freeze the virtual-clock rate at 1/W_total instead of renormalizing
  /// over backlogged queues: intermittent tenants re-enter with stale
  /// stamps and are starved of the shared pool by a steady flooder.
  bool skip_renormalization = false;
  /// Ignore virtual finish times entirely: serve the lowest-index
  /// backlogged queue (FCFS across tenants) — a flooder eats the budget.
  bool fifo_order = false;
  /// TenantScheduler: treat reservations as plain shared budget, so a
  /// flooder can consume another tenant's guaranteed floor.
  bool ignore_reservations = false;
  /// TenantScheduler: dispense without budget accounting — total
  /// admissions per interval can exceed the live budget S.
  bool leak_budget = false;

  [[nodiscard]] bool any() const noexcept {
    return skip_renormalization || fifo_order || ignore_reservations ||
           leak_budget;
  }
};

/// Per-queue static parameters (weight/bounds), owned by the caller's
/// TenantSpec; WfqQueues takes the flattened arrays so it stays decoupled
/// from the tenant-naming layer.
class WfqQueues {
 public:
  enum class Enqueue : std::uint8_t {
    kAccepted = 0,
    kMarked,  // accepted, but depth crossed the ECN mark threshold
    kShed,    // queue full: dropped, not queued
  };

  /// `weights[q]` must be positive and finite; `capacities[q]` >= 1;
  /// `mark_thresholds[q]` in [1, capacity] (the signal fires when depth
  /// after enqueue >= threshold).
  WfqQueues(std::vector<double> weights, std::vector<std::size_t> capacities,
            std::vector<std::size_t> mark_thresholds, WfqKnobs knobs = {});

  [[nodiscard]] std::size_t queues() const noexcept { return weights_.size(); }
  [[nodiscard]] std::size_t depth(std::size_t q) const {
    return fifo_[q].size();
  }
  [[nodiscard]] bool backlogged() const noexcept { return queued_ > 0; }
  [[nodiscard]] std::size_t queued() const noexcept { return queued_; }
  [[nodiscard]] double virtual_time() const noexcept { return vtime_; }

  Enqueue enqueue(std::size_t q, std::uint64_t id);

  /// Backlogged queue with the minimum head virtual finish time, skipping
  /// queues the caller has excluded (blocked this dispatch round); ties go
  /// to the lower queue index. nullopt when every backlogged queue is
  /// excluded (or nothing is queued). `exclude` may be empty (= none).
  [[nodiscard]] std::optional<std::size_t> next(
      const std::vector<bool>& exclude) const;

  [[nodiscard]] std::uint64_t head(std::size_t q) const {
    FLASHQOS_ASSERT(!fifo_[q].empty(), "head() on an empty WFQ queue");
    return fifo_[q].front().id;
  }

  /// Serve the head of `q`: advances the virtual clock by one unit of
  /// service at the renormalized rate and returns the served id.
  std::uint64_t pop(std::size_t q);

  /// Remove the head of `q` *without* serving it (a request invalidated
  /// while queued — e.g. failed by the fault path). The virtual clock does
  /// not advance: no service was rendered.
  std::uint64_t drop_head(std::size_t q);

 private:
  struct Item {
    std::uint64_t id = 0;
    double finish = 0.0;  // virtual finish time
  };

  [[nodiscard]] double backlogged_weight() const;

  std::vector<double> weights_;
  std::vector<std::size_t> capacities_;
  std::vector<std::size_t> marks_;
  std::vector<std::deque<Item>> fifo_;
  std::vector<double> last_finish_;  // per-queue F of the newest enqueue
  double vtime_ = 0.0;
  double total_weight_ = 0.0;
  std::size_t queued_ = 0;
  WfqKnobs knobs_;
};

}  // namespace flashqos::core
