#include "core/admission.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/expect.hpp"

namespace flashqos::core {

std::optional<std::uint32_t> ApplicationRegistry::admit(
    std::uint64_t requests_per_period) {
  FLASHQOS_EXPECT(requests_per_period > 0, "application must request something");
  if (reserved_ + requests_per_period > limit_) return std::nullopt;
  const std::uint32_t id = next_id_++;
  apps_.emplace(id, requests_per_period);
  reserved_ += requests_per_period;
  return id;
}

void ApplicationRegistry::remove(std::uint32_t app_id) {
  const auto it = apps_.find(app_id);
  FLASHQOS_EXPECT(it != apps_.end(), "unknown application id");
  reserved_ -= it->second;
  apps_.erase(it);
}

StatisticalAdmission::StatisticalAdmission(std::vector<double> p_table,
                                           std::uint64_t deterministic_limit,
                                           double epsilon)
    : p_table_(std::move(p_table)), limit_(deterministic_limit), epsilon_(epsilon) {
  FLASHQOS_EXPECT(!p_table_.empty(), "statistical admission needs a P_k table");
  FLASHQOS_EXPECT(epsilon_ >= 0.0 && epsilon_ <= 1.0, "epsilon must be in [0,1]");
  for (const double p : p_table_) {
    FLASHQOS_EXPECT(p >= 0.0 && p <= 1.0, "P_k values must be probabilities");
  }
}

double StatisticalAdmission::q_with(std::optional<std::uint64_t> extra_k) const {
  double weighted = weighted_miss_;
  std::uint64_t total = n_t_;
  if (extra_k.has_value() && *extra_k > 0) {
    weighted += miss_probability(*extra_k);
    ++total;
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

std::uint64_t StatisticalAdmission::accept(std::uint64_t already,
                                           std::uint64_t count) const {
  // Everything within the deterministic limit is always safe.
  if (already + count <= limit_) return count;
  // Find the largest k' in (limit, already+count] that keeps Q < ε; sizes
  // are small so a downward linear scan is fine.
  for (std::uint64_t k = already + count; k > limit_; --k) {
    if (k <= already) return 0;  // already over the acceptable size
    if (q_with(k) < epsilon_) return k - already;
  }
  return already >= limit_ ? 0 : limit_ - already;
}

void StatisticalAdmission::set_budget(std::uint64_t deterministic_limit,
                                      std::vector<double> p_table) {
  FLASHQOS_EXPECT(!p_table.empty(), "statistical admission needs a P_k table");
  for (const double p : p_table) {
    FLASHQOS_EXPECT(p >= 0.0 && p <= 1.0, "P_k values must be probabilities");
  }
  limit_ = deterministic_limit;
  p_table_ = std::move(p_table);
  weighted_miss_ = 0.0;
  for (std::uint64_t k = 0; k < n_k_.size(); ++k) {
    if (n_k_[k] > 0) {
      weighted_miss_ += static_cast<double>(n_k_[k]) * miss_probability(k);
    }
  }
}

void StatisticalAdmission::end_interval(std::uint64_t demand, std::uint64_t admitted) {
  if (demand <= limit_) return;
  if (n_k_.size() <= admitted) n_k_.resize(admitted + 1, 0);
  ++n_k_[admitted];
  ++n_t_;
  // Trimmed intervals (admitted <= limit) contribute zero miss, so the
  // running Q decays while the controller is throttling and the loop
  // settles near ε.
  weighted_miss_ += miss_probability(admitted);
  if constexpr (obs::kEnabled) {
    // The Q time series: one sample per over-limit interval, after its
    // counters land (ppm keeps the histogram integral).
    auto& reg = obs::MetricRegistry::global();
    static obs::Counter& over_limit =
        reg.counter("admission.over_limit_intervals");
    static obs::LatencyHistogram& q_hist = reg.histogram("admission.q_ppm");
    over_limit.inc();
    q_hist.record(static_cast<std::int64_t>(std::llround(q_with() * 1e6)));
  }
}

}  // namespace flashqos::core
