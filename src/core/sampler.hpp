// Optimal-retrieval probability sampling (paper §III-B1, Fig. 4).
//
// For a given allocation scheme, P_k is the probability that k buckets
// drawn uniformly *with replacement* (the paper: "the same design block is
// allowed to be chosen multiple times for fair results") can be retrieved
// in the optimal ⌈k/N⌉ accesses. The statistical admission controller
// uses the P_k table to accept batches beyond the deterministic limit S.
#pragma once

#include <cstdint>
#include <vector>

#include "decluster/allocation.hpp"

namespace flashqos::core {

struct SamplerParams {
  std::size_t samples_per_size = 5000;
  std::uint64_t seed = 7;
  /// Worker threads for the per-size Monte Carlo (0 = hardware
  /// concurrency, 1 = serial). Results are identical for any thread count:
  /// each request size gets its own deterministic RNG stream.
  std::size_t threads = 1;
};

/// P[k] for k = 0..max_k (P[0] = 1). Each P[k] estimated by Monte Carlo
/// with the exact max-flow optimality check.
[[nodiscard]] std::vector<double> sample_optimal_probabilities(
    const decluster::AllocationScheme& scheme, std::uint32_t max_k,
    const SamplerParams& params = {});

}  // namespace flashqos::core
