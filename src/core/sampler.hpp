// Optimal-retrieval probability sampling (paper §III-B1, Fig. 4).
//
// For a given allocation scheme, P_k is the probability that k buckets
// drawn uniformly *with replacement* (the paper: "the same design block is
// allowed to be chosen multiple times for fair results") can be retrieved
// in the optimal ⌈k/N⌉ accesses. The statistical admission controller
// uses the P_k table to accept batches beyond the deterministic limit S.
#pragma once

#include <cstdint>
#include <vector>

#include "decluster/allocation.hpp"

namespace flashqos::core {

struct SamplerParams {
  std::size_t samples_per_size = 5000;
  std::uint64_t seed = 7;
  /// Worker threads for the per-size Monte Carlo (0 = hardware
  /// concurrency, 1 = serial). Results are identical for any thread count:
  /// each request size gets its own deterministic RNG stream.
  std::size_t threads = 1;
  /// Consult the process-wide P_k memo (below). The memo never changes
  /// results — a cached table is the stored output of the same
  /// deterministic computation — so this exists only for benchmarks and
  /// cache-behavior tests.
  bool cache = true;
};

/// P[k] for k = 0..max_k (P[0] = 1). Each P[k] estimated by Monte Carlo
/// with the exact max-flow optimality check.
///
/// Results are memoized process-wide, keyed by the scheme's full replica
/// table (not its name) plus (max_k, samples_per_size, seed) — the inputs
/// that determine the output bit for bit; `threads` is deliberately
/// excluded because per-size RNG streams make the table thread-count
/// invariant. Replay sweeps hammer identical (scheme, seed) configs across
/// jobs, so the memo collapses 16 samplings into one; concurrent callers
/// of the same key dedupe (one computes, the rest block and share).
/// Hit/miss counts are exported as `retrieval.pk_cache.{hit,miss}` and
/// audited by `flashqos_verify --obs`.
[[nodiscard]] std::vector<double> sample_optimal_probabilities(
    const decluster::AllocationScheme& scheme, std::uint32_t max_k,
    const SamplerParams& params = {});

/// Degraded-mode P_k: only devices with available[d] == true may serve,
/// batches are drawn from the buckets that still have a live replica, and
/// "optimal" means ⌈k / live-devices⌉ accesses — the surviving sub-array's
/// optimum. An empty mask is exactly the healthy overload (same memo key),
/// so callers can pass their current availability unconditionally. The
/// adaptive statistical admission re-derives its Q from these tables when
/// devices go down.
[[nodiscard]] std::vector<double> sample_optimal_probabilities(
    const decluster::AllocationScheme& scheme, std::uint32_t max_k,
    const SamplerParams& params, const std::vector<bool>& available);

}  // namespace flashqos::core
