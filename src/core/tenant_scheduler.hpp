// Multi-tenant WFQ front end for the interval budget S.
//
// TenantScheduler binds the WFQ ordering core (core/wfq.hpp) to the
// paper's admission accounting: each QoS interval it dispenses the *live*
// budget — S = (c-1)M² + cM while healthy, the degraded S′ from src/fault
// while devices are down — across tenants in virtual-finish-time order,
// with ClassifiedAdmission-style reservations honored as per-tenant
// floors. A tenant's grant per interval is
//
//   up to  res_i  (its scaled reservation, held for it all interval)
//   plus   its WFQ share of the shared remainder S_live − Σ res_i
//
// so a flooder can exhaust the shared pool but never another tenant's
// floor, and backlogged tenants split the remainder in weight proportion
// (WFQ's one-unit fairness bound). Under a degraded budget S′ < S the
// floors scale as floor(res_i · S′/S) — guarantees shrink proportionally,
// exactly like the admission budget itself.
//
// The scheduler is single-threaded replay-core state (see wfq.hpp). The
// concurrent seam for a future daemon front end is BasicTenantIngress
// below: per-tenant bounded MPSC queues with shed-on-full backpressure,
// model-checked via check::Sched ("tenant_ingress.mpsc_drain") and
// TSan-stressed in tests/parallel_stress_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/wfq.hpp"
#include "util/annotations.hpp"
#include "util/expect.hpp"
#include "util/sync.hpp"

namespace flashqos::core {

/// One tenant class: weight drives the WFQ share of the shared pool,
/// reservation is the guaranteed per-interval floor (ClassifiedAdmission
/// semantics), queue bounds provide the ECN-style backpressure.
struct TenantSpec {
  std::string name;
  double weight = 1.0;
  std::uint64_t reservation = 0;     // guaranteed slots per interval
  std::size_t queue_capacity = 64;   // arrivals beyond this are shed
  std::size_t mark_threshold = 48;   // ECN mark when depth crosses this
};

/// Per-tenant tallies accumulated over one replay (reported in
/// PipelineResult and published to obs once per replay).
struct TenantUsage {
  std::uint64_t arrivals = 0;  // read requests that reached the queue
  std::uint64_t admitted = 0;  // dispensed into the dispatch machinery
  std::uint64_t shed = 0;      // dropped: queue full
  std::uint64_t marked = 0;    // accepted above the mark threshold
  std::uint64_t max_depth = 0; // deepest queue occupancy observed
};

class TenantScheduler {
 public:
  /// `configured_budget` is the healthy interval budget S the reservations
  /// were validated against (Σ res_i ≤ S, enforced here).
  TenantScheduler(const std::vector<TenantSpec>& specs,
                  std::uint64_t configured_budget, WfqKnobs knobs = {});

  [[nodiscard]] std::size_t tenants() const noexcept { return specs_.size(); }
  [[nodiscard]] const TenantSpec& spec(std::size_t t) const {
    return specs_[t];
  }
  [[nodiscard]] const TenantUsage& usage(std::size_t t) const {
    return usage_[t];
  }
  [[nodiscard]] double virtual_time() const noexcept {
    return wfq_.virtual_time();
  }
  [[nodiscard]] bool backlogged() const noexcept { return wfq_.backlogged(); }
  [[nodiscard]] std::size_t depth(std::size_t t) const { return wfq_.depth(t); }

  /// Start a new QoS interval: reset per-tenant draws and rescale the
  /// floors to the live budget (S, or the degraded S′).
  void begin_interval(std::uint64_t live_budget);

  /// Mid-interval budget change (the down-set changed): floors rescale,
  /// draws already made this interval are kept and clamp saturating.
  void set_live_budget(std::uint64_t live_budget);

  /// Queue a read for tenant `t`; stamps the WFQ virtual finish time.
  /// kShed means the request was dropped (queue full) and must be failed
  /// by the caller; kMarked means accepted with the congestion bit.
  WfqQueues::Enqueue enqueue(std::size_t t, std::uint64_t id);

  /// Tenant whose queue head should dispense next: minimum virtual finish
  /// time among backlogged tenants that still have budget this interval
  /// (reservation remainder + shared pool), skipping tenants the caller
  /// blocked this round (head not physically schedulable right now).
  /// `unlimited` ignores budget accounting (AdmissionMode::kNone).
  [[nodiscard]] std::optional<std::size_t> next_candidate(
      const std::vector<bool>& blocked, bool unlimited) const;

  [[nodiscard]] std::uint64_t head(std::size_t t) const { return wfq_.head(t); }

  /// Dispense the head of `t`: draws the tenant's reservation first, then
  /// the shared pool (skipped when `unlimited`), and advances the WFQ
  /// clock. Returns the dispensed request id.
  std::uint64_t pop(std::size_t t, bool unlimited);

  /// Remove the head of `t` without dispensing (request invalidated while
  /// queued, e.g. failed by the fault path). No budget is drawn.
  std::uint64_t drop_head(std::size_t t);

  /// Record a queue-depth observation (called at interval boundaries by
  /// the pipeline so the obs histograms sample steady-state occupancy).
  void observe_depths();

 private:
  void rescale(std::uint64_t live_budget);
  [[nodiscard]] bool has_budget(std::size_t t) const;

  std::vector<TenantSpec> specs_;
  WfqQueues wfq_;
  std::uint64_t configured_budget_ = 0;
  std::uint64_t live_budget_ = 0;
  std::uint64_t shared_pool_ = 0;   // live budget minus scaled floors
  std::uint64_t shared_used_ = 0;
  std::vector<std::uint64_t> floor_;       // scaled reservation per tenant
  std::vector<std::uint64_t> floor_used_;
  std::vector<TenantUsage> usage_;
  WfqKnobs knobs_;
  mutable std::vector<bool> exclude_;  // next_candidate() scratch
};

/// Concurrent arrival seam: per-tenant bounded MPSC queues between
/// producer threads (a future daemon's connection handlers) and the
/// single replay/scheduler thread that drains them. try_push() sheds on a
/// full queue — the ECN backpressure signal crosses the thread boundary as
/// a false return the producer can surface to its client. pop_any() is the
/// blocking drain: lowest-index non-empty tenant first (the WFQ stamp is
/// applied *after* the handoff, by the single consumer, so fairness
/// ordering never depends on producer interleaving).
///
/// Templated on the sync policy so check::Sched can exhaustively model the
/// blocking protocol (lost-wakeup freedom of the close/drain handshake).
template <typename T, typename Sync = util::StdSyncPolicy>
class BasicTenantIngress {
 public:
  BasicTenantIngress(std::size_t tenants, std::size_t capacity)
      : capacity_(capacity), queues_(tenants) {
    FLASHQOS_EXPECT(tenants > 0, "tenant ingress needs at least one tenant");
    FLASHQOS_EXPECT(capacity > 0, "tenant ingress capacity must be positive");
  }

  BasicTenantIngress(const BasicTenantIngress&) = delete;
  BasicTenantIngress& operator=(const BasicTenantIngress&) = delete;

  [[nodiscard]] std::size_t tenants() const noexcept {
    return queues_.rd().size();
  }

  /// Non-blocking enqueue for `tenant`. False = shed (queue at capacity)
  /// or closed; the item is dropped either way.
  bool try_push(std::size_t tenant, T item) {
    {
      const typename Sync::LockGuard lock(mutex_);
      if (closed_.rd()) return false;
      auto& q = queues_.rw()[tenant];
      if (q.size() >= capacity_) return false;
      q.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking drain: (tenant, item) from the lowest-index non-empty
  /// queue; nullopt iff closed and fully drained.
  std::optional<std::pair<std::size_t, T>> pop_any() {
    typename Sync::UniqueLock lock(mutex_);
    while (true) {
      auto& qs = queues_.rw();
      for (std::size_t t = 0; t < qs.size(); ++t) {
        if (qs[t].empty()) continue;
        std::pair<std::size_t, T> out{t, std::move(qs[t].front())};
        qs[t].pop_front();
        return out;
      }
      if (closed_.rd()) return std::nullopt;
      not_empty_.wait(lock);
    }
  }

  /// Refuse further pushes and wake the consumer; queued items remain
  /// poppable (close-then-drain, like HandoffQueue).
  void close() {
    {
      const typename Sync::LockGuard lock(mutex_);
      closed_.rw() = true;
    }
    not_empty_.notify_all();
  }

 private:
  const std::size_t capacity_;
  mutable typename Sync::Mutex mutex_;
  typename Sync::CondVar not_empty_;
  typename Sync::template Shared<std::vector<std::deque<T>>> queues_
      FLASHQOS_GUARDED_BY(mutex_);
  typename Sync::template Shared<bool> closed_ FLASHQOS_GUARDED_BY(mutex_){
      false};
};

using TenantIngress = BasicTenantIngress<std::uint64_t>;

}  // namespace flashqos::core
