#include "core/experiment.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/parallel_replay.hpp"
#include "core/sampler.hpp"
#include "obs/metrics.hpp"
#include "decluster/schemes.hpp"
#include "design/catalog.hpp"
#include "design/constructions.hpp"
#include "design/galois.hpp"
#include "design/resolution.hpp"
#include "design/transversal.hpp"
#include "trace/disksim_format.hpp"
#include "trace/msr_format.hpp"
#include "trace/synthetic.hpp"
#include "trace/workload.hpp"

namespace flashqos::core {
namespace {

[[noreturn]] void fail(const std::string& msg) { throw std::runtime_error(msg); }

std::unique_ptr<design::BlockDesign> make_design(const std::string& spec) {
  // Catalog names first.
  for (const auto& e : design::catalog()) {
    if (e.name == spec) {
      return std::make_unique<design::BlockDesign>(e.make());
    }
  }
  // Constructor shorthands: sts:v, ag:q, pg:q, td:k,n, kts:15.
  const auto colon = spec.find(':');
  if (colon != std::string::npos) {
    const std::string kind = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);
    try {
      if (kind == "sts") {
        return std::make_unique<design::BlockDesign>(
            design::sts(static_cast<std::uint32_t>(std::stoul(arg))));
      }
      if (kind == "ag") {
        return std::make_unique<design::BlockDesign>(
            design::affine_plane_gf(static_cast<std::uint32_t>(std::stoul(arg))));
      }
      if (kind == "pg") {
        return std::make_unique<design::BlockDesign>(design::projective_plane_gf(
            static_cast<std::uint32_t>(std::stoul(arg))));
      }
      if (kind == "kts" && arg == "15") {
        return std::make_unique<design::BlockDesign>(design::kirkman_15());
      }
      if (kind == "td") {
        const auto comma = arg.find(',');
        if (comma == std::string::npos) fail("td needs k,n: " + spec);
        const auto k = static_cast<std::uint32_t>(std::stoul(arg.substr(0, comma)));
        const auto n =
            static_cast<std::uint32_t>(std::stoul(arg.substr(comma + 1)));
        return std::make_unique<design::BlockDesign>(
            design::transversal_design(k, n));
      }
    } catch (const std::invalid_argument&) {
      fail("bad design argument: " + spec);
    }
  }
  fail("unknown design: " + spec +
       " (catalog name, or sts:v / ag:q / pg:q / td:k,n / kts:15)");
}

trace::Trace make_workload(const Config& cfg) {
  const std::string kind = cfg.get("workload", "kind", "synthetic");
  const double scale = cfg.get_double("workload", "scale", 0.25);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("workload", "seed", 42));
  if (kind == "exchange" || kind == "tpce") {
    auto p = kind == "exchange" ? trace::exchange_params(scale, seed)
                                : trace::tpce_params(scale, seed);
    p.write_fraction = cfg.get_double("workload", "write_fraction", 0.0);
    if (cfg.has("workload", "report_intervals")) {
      p.report_intervals = static_cast<std::size_t>(
          cfg.get_int("workload", "report_intervals", 0));
    }
    return trace::generate_workload(p);
  }
  if (kind == "synthetic") {
    trace::SyntheticParams p;
    p.bucket_pool =
        static_cast<std::size_t>(cfg.get_int("workload", "bucket_pool", 36));
    p.interval = from_ms(cfg.get_double("workload", "interval_ms", 0.133));
    p.requests_per_interval = static_cast<std::uint32_t>(
        cfg.get_int("workload", "requests_per_interval", 5));
    p.total_requests =
        static_cast<std::size_t>(cfg.get_int("workload", "total_requests", 10000));
    p.seed = seed;
    return trace::generate_synthetic(p);
  }
  if (kind == "multi_tenant") {
    trace::MultiTenantParams p;
    p.interval = from_ms(cfg.get_double("workload", "interval_ms", 0.133));
    p.intervals =
        static_cast<std::size_t>(cfg.get_int("workload", "intervals", 100));
    p.bucket_base =
        static_cast<std::size_t>(cfg.get_int("workload", "bucket_base", 0));
    p.seed = seed;
    p.jitter_slots = static_cast<std::uint32_t>(
        cfg.get_int("workload", "jitter_slots", 0));
    for (const auto& spec : cfg.all("tenants", "load")) {
      std::istringstream ss(spec);
      trace::TenantLoad l;
      if (!(ss >> l.requests_per_interval >> l.bucket_pool)) {
        fail("bad tenant load (want: requests_per_interval bucket_pool "
             "[active_intervals]): " + spec);
      }
      std::uint64_t active = 0;
      if (ss >> active) l.active_intervals = static_cast<std::size_t>(active);
      p.tenants.push_back(l);
    }
    if (p.tenants.empty()) {
      fail("multi_tenant workload needs one 'load =' line per tenant in [tenants]");
    }
    if (p.tenants.size() != cfg.all("tenants", "tenant").size()) {
      fail("multi_tenant workload: 'load =' lines must match 'tenant =' lines "
           "one-to-one (same index order)");
    }
    return trace::generate_multi_tenant(p);
  }
  if (kind == "disksim" || kind == "msr") {
    const std::string path = cfg.get("workload", "path");
    if (path.empty()) fail("workload kind " + kind + " needs a path");
    std::ifstream in(path);
    if (!in) fail("cannot open workload file: " + path);
    const auto volumes =
        static_cast<std::uint32_t>(cfg.get_int("workload", "volumes", 0));
    if (kind == "disksim") {
      if (volumes == 0) fail("disksim workloads need volumes = N");
      return trace::read_disksim_ascii(in, path, volumes, kSecond);
    }
    trace::MsrReadOptions opts;
    opts.volumes = volumes;
    opts.reads_only = cfg.get_bool("workload", "reads_only", false);
    return trace::read_msr_csv(in, path, opts);
  }
  fail("unknown workload kind: " + kind);
}

}  // namespace

Experiment build_experiment_config(const Config& cfg) {
  Experiment e;
  e.design = make_design(cfg.get("design", "name", "(9,3,1)"));
  e.scheme = std::make_unique<decluster::DesignTheoretic>(
      *e.design, cfg.get_bool("design", "rotations", true));

  e.pipeline.qos_interval = from_ms(cfg.get_double("pipeline", "interval_ms", 0.133));
  e.pipeline.access_budget =
      static_cast<std::uint32_t>(cfg.get_int("pipeline", "access_budget", 1));

  const std::string retrieval = cfg.get("pipeline", "retrieval", "online");
  if (retrieval == "online") {
    e.pipeline.retrieval = RetrievalMode::kOnline;
  } else if (retrieval == "aligned") {
    e.pipeline.retrieval = RetrievalMode::kIntervalAligned;
  } else {
    fail("unknown retrieval mode: " + retrieval);
  }

  const std::string admission = cfg.get("pipeline", "admission", "deterministic");
  if (admission == "none") {
    e.pipeline.admission = AdmissionMode::kNone;
  } else if (admission == "deterministic") {
    e.pipeline.admission = AdmissionMode::kDeterministic;
  } else if (admission == "statistical") {
    e.pipeline.admission = AdmissionMode::kStatistical;
    e.pipeline.epsilon = cfg.get_double("pipeline", "epsilon", 0.001);
  } else {
    fail("unknown admission mode: " + admission);
  }

  const std::string mapping = cfg.get("pipeline", "mapping", "fim");
  if (mapping == "fim") {
    e.pipeline.mapping = MappingMode::kFim;
  } else if (mapping == "modulo") {
    e.pipeline.mapping = MappingMode::kModulo;
  } else {
    fail("unknown mapping mode: " + mapping);
  }

  const std::string scheduler = cfg.get("pipeline", "scheduler", "replica");
  if (scheduler == "replica") {
    e.pipeline.scheduler = SchedulerMode::kReplicaScheduled;
  } else if (scheduler == "primary") {
    e.pipeline.scheduler = SchedulerMode::kPrimaryOnly;
  } else {
    fail("unknown scheduler mode: " + scheduler);
  }

  // Multi-tenant WFQ front end: one line per tenant class, index order
  // (trace events name tenants by this index).
  // "tenant = <name> <weight> <reservation> [capacity [mark]]"
  for (const auto& spec : cfg.all("tenants", "tenant")) {
    std::istringstream ss(spec);
    TenantSpec t;
    if (!(ss >> t.name >> t.weight >> t.reservation)) {
      fail("bad tenant spec (want: name weight reservation [capacity [mark]]): " +
           spec);
    }
    std::uint64_t cap = 0;
    if (ss >> cap) {
      t.queue_capacity = static_cast<std::size_t>(cap);
      // Default mark threshold tracks the capacity at the stock 3/4 ratio
      // unless the line pins it explicitly.
      t.mark_threshold = std::max<std::size_t>(1, t.queue_capacity * 3 / 4);
      std::uint64_t mark = 0;
      if (ss >> mark) t.mark_threshold = static_cast<std::size_t>(mark);
    }
    e.pipeline.tenants.push_back(std::move(t));
  }

  // Scripted outages: "fail = device fail_ms recover_ms" (-1 recover =
  // permanent). The legacy [failures] section and the [faults] section
  // accept the same lines; both land in the fault plan's outage list.
  const auto parse_outages = [&](const char* section) {
    for (const auto& spec : cfg.all(section, "fail")) {
      std::istringstream ss(spec);
      std::uint32_t device = 0;
      double fail_ms = 0.0, recover_ms = -1.0;
      if (!(ss >> device >> fail_ms)) fail("bad failure spec: " + spec);
      ss >> recover_ms;
      fault::DeviceFailure f;
      f.device = device;
      f.fail_at = from_ms(fail_ms);
      f.recover_at = recover_ms < 0 ? fault::DeviceFailure::kNeverRecovers
                                    : from_ms(recover_ms);
      e.pipeline.faults.outages.push_back(f);
    }
  };
  parse_outages("failures");
  parse_outages("faults");

  // The rest of the fault plan: scripted spikes, seeded generators,
  // rebuild policy, retry timeout.
  for (const auto& spec : cfg.all("faults", "spike")) {
    std::istringstream ss(spec);
    std::uint32_t device = 0;
    double start_ms = 0.0, end_ms = 0.0, factor = 0.0;
    if (!(ss >> device >> start_ms >> end_ms >> factor)) {
      fail("bad spike spec (want: device start_ms end_ms factor): " + spec);
    }
    e.pipeline.faults.spikes.push_back(
        {device, from_ms(start_ms), from_ms(end_ms), factor});
  }
  if (cfg.has("faults", "transient")) {
    std::istringstream ss(cfg.get("faults", "transient"));
    std::uint32_t count = 0;
    double mean_ms = 0.0;
    if (!(ss >> count >> mean_ms)) {
      fail("bad transient spec (want: count mean_ms): " +
           cfg.get("faults", "transient"));
    }
    e.pipeline.faults.transient = {count, from_ms(mean_ms)};
  }
  if (cfg.has("faults", "latency_spike")) {
    std::istringstream ss(cfg.get("faults", "latency_spike"));
    std::uint32_t count = 0;
    double mean_ms = 0.0, factor = 0.0;
    if (!(ss >> count >> mean_ms >> factor)) {
      fail("bad latency_spike spec (want: count mean_ms factor): " +
           cfg.get("faults", "latency_spike"));
    }
    e.pipeline.faults.latency_spike = {count, from_ms(mean_ms), factor};
  }
  e.pipeline.faults.rebuild.pages_per_second =
      cfg.get_double("faults", "rebuild", 0.0);
  if (cfg.has("faults", "retry_timeout_ms")) {
    e.pipeline.faults.retry.timeout =
        from_ms(cfg.get_double("faults", "retry_timeout_ms", 0.0));
  }
  e.pipeline.faults.seed =
      static_cast<std::uint64_t>(cfg.get_int("faults", "seed", 1));

  if (e.pipeline.admission == AdmissionMode::kStatistical) {
    const auto samples = static_cast<std::size_t>(
        cfg.get_int("pipeline", "samples", 2000));
    const auto max_k =
        static_cast<std::uint32_t>(cfg.get_int("pipeline", "p_table_max_k", 48));
    e.pipeline.p_table = sample_optimal_probabilities(
        *e.scheme, max_k, {.samples_per_size = samples, .seed = 7});
    e.pipeline.p_table_samples = samples;
  }

  const auto diags = e.pipeline.validate(e.scheme->devices());
  if (!diags.empty()) {
    std::string msg = "invalid experiment config:";
    for (const auto& d : diags) msg += "\n  - " + d;
    fail(msg);
  }

  return e;
}

Experiment build_experiment(const Config& cfg) {
  Experiment e = build_experiment_config(cfg);
  e.workload = make_workload(cfg);
  return e;
}

PipelineResult run_experiment(const Config& cfg) {
  const auto e = build_experiment(cfg);
  return QosPipeline(*e.scheme, e.pipeline).run(e.workload);
}

std::vector<PipelineResult> run_experiments(std::span<const Config> cfgs,
                                            std::size_t threads) {
  ParallelReplayEngine engine({.threads = threads});
  // Build stage, sharded: each config materializes into its own slot;
  // parallel_for rethrows the lowest-index build error (bad design name,
  // unreadable trace file, ...) so sweep callers see the same exception a
  // serial build_experiment would have thrown.
  std::vector<Experiment> experiments(cfgs.size());
  if constexpr (obs::kEnabled) {
    obs::MetricRegistry::global().counter("experiments.sweep_configs")
        .inc(cfgs.size());
  }
  parallel_for(engine.pool(), cfgs.size(), [&](std::size_t i) {
    experiments[i] = build_experiment(cfgs[i]);
  });
  std::vector<ReplayJob> jobs;
  jobs.reserve(cfgs.size());
  for (const auto& e : experiments) {
    jobs.push_back({e.scheme.get(), &e.workload, e.pipeline});
  }
  return engine.run_jobs(jobs);
}

std::string experiment_template() {
  return R"(# flashqos_sim experiment file
[design]
name = (9,3,1)            # catalog name, or sts:15 / ag:4 / pg:8 / td:3,5 / kts:15
rotations = true

[pipeline]
interval_ms = 0.133
access_budget = 1
retrieval = online        # online | aligned
admission = deterministic # none | deterministic | statistical
# epsilon = 0.001         # statistical only
mapping = fim             # fim | modulo
scheduler = replica       # replica | primary

[workload]
kind = exchange           # exchange | tpce | synthetic | disksim | msr
scale = 0.25
seed = 42
write_fraction = 0.0
# path = trace.csv        # for disksim / msr kinds
# volumes = 9
# intervals = 100         # multi_tenant kind: trace length in intervals
# jitter_slots = 0        # multi_tenant kind: spread arrivals inside T

[tenants]
# Multi-tenant WFQ front end (empty section = single-tenant pipeline).
# One line per tenant class; trace events name tenants by line order.
# tenant = gold 4.0 2 64 48     # name weight reservation [capacity [mark]]
# tenant = bronze 1.0 0
# With workload kind = multi_tenant, pair each tenant with a load line:
# load = 3 8                    # requests/interval bucket_pool [active_intervals]
# load = 1 8 50

[faults]
# seed = 1                      # generator seed; same seed -> same windows
# fail = 3 10.0 50.0            # device, fail-at ms, recover-at ms (-1 = never)
# spike = 2 5.0 20.0 4.0        # device, start ms, end ms, service-time factor
# transient = 4 5.0             # generated outages: count, mean duration ms
# latency_spike = 2 5.0 4.0     # generated spikes: count, mean ms, factor
# rebuild = 50000               # hot-spare rebuild pages/second (0 = off)
# retry_timeout_ms = 10.0       # fail stranded requests past this wait

# Legacy alias for scripted outages, kept for old experiment files:
# [failures]
# fail = 3 10.0 50.0
)";
}

}  // namespace flashqos::core
