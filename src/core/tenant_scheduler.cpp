#include "core/tenant_scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace flashqos::core {

namespace {

std::vector<double> spec_weights(const std::vector<TenantSpec>& specs) {
  std::vector<double> w;
  w.reserve(specs.size());
  for (const auto& s : specs) w.push_back(s.weight);
  return w;
}

std::vector<std::size_t> spec_capacities(const std::vector<TenantSpec>& specs) {
  std::vector<std::size_t> c;
  c.reserve(specs.size());
  for (const auto& s : specs) c.push_back(s.queue_capacity);
  return c;
}

std::vector<std::size_t> spec_marks(const std::vector<TenantSpec>& specs) {
  std::vector<std::size_t> m;
  m.reserve(specs.size());
  for (const auto& s : specs) m.push_back(s.mark_threshold);
  return m;
}

}  // namespace

TenantScheduler::TenantScheduler(const std::vector<TenantSpec>& specs,
                                 std::uint64_t configured_budget,
                                 WfqKnobs knobs)
    : specs_(specs),
      wfq_(spec_weights(specs), spec_capacities(specs), spec_marks(specs),
           knobs),
      configured_budget_(configured_budget),
      knobs_(knobs) {
  FLASHQOS_EXPECT(configured_budget_ >= 1,
                  "tenant scheduler needs a positive interval budget");
  std::uint64_t reserved = 0;
  for (const auto& s : specs_) {
    FLASHQOS_EXPECT(!s.name.empty(), "tenant names must be non-empty");
    reserved += s.reservation;
  }
  FLASHQOS_EXPECT(reserved <= configured_budget_,
                  "tenant reservations must not exceed the interval budget S");
  floor_.assign(specs_.size(), 0);
  floor_used_.assign(specs_.size(), 0);
  usage_.assign(specs_.size(), TenantUsage{});
  begin_interval(configured_budget_);
}

void TenantScheduler::rescale(std::uint64_t live_budget) {
  live_budget_ = live_budget;
  std::uint64_t reserved = 0;
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    std::uint64_t res = specs_[t].reservation;
    if (knobs_.ignore_reservations) {
      res = 0;  // mutation: floors collapse into the shared pool
    } else if (live_budget < configured_budget_) {
      // Degraded S′ < S: guarantees shrink proportionally, floor() so the
      // scaled floors never oversubscribe the smaller budget.
      res = res * live_budget / configured_budget_;
    }
    floor_[t] = res;
    reserved += res;
  }
  shared_pool_ = live_budget >= reserved ? live_budget - reserved : 0;
  // Progress guarantee: if the floors consume the whole live budget while
  // some tenant's floor rounded (or was configured) to zero, that tenant
  // could never drain its backlog. Move one slot from the largest floor
  // (lowest index on ties) into the shared pool — deterministic, and a
  // one-slot perturbation of a guarantee that already shrank.
  if (shared_pool_ == 0 && live_budget >= 1) {
    bool starved = false;
    std::size_t donor = 0;
    for (std::size_t t = 0; t < floor_.size(); ++t) {
      if (floor_[t] == 0) starved = true;
      if (floor_[t] > floor_[donor]) donor = t;
    }
    if (starved && floor_[donor] > 0) {
      --floor_[donor];
      shared_pool_ = 1;
    }
  }
}

void TenantScheduler::begin_interval(std::uint64_t live_budget) {
  rescale(live_budget);
  std::fill(floor_used_.begin(), floor_used_.end(), 0);
  shared_used_ = 0;
}

void TenantScheduler::set_live_budget(std::uint64_t live_budget) {
  // Draws already made this interval stay spent; has_budget() saturates
  // when a shrunken pool dips below what was already drawn.
  rescale(live_budget);
}

WfqQueues::Enqueue TenantScheduler::enqueue(std::size_t t, std::uint64_t id) {
  FLASHQOS_EXPECT(t < specs_.size(),
                  "trace event names a tenant the [tenants] section does not");
  const auto verdict = wfq_.enqueue(t, id);
  auto& u = usage_[t];
  if (verdict == WfqQueues::Enqueue::kShed) {
    ++u.shed;
    return verdict;
  }
  ++u.arrivals;
  if (verdict == WfqQueues::Enqueue::kMarked) ++u.marked;
  u.max_depth = std::max<std::uint64_t>(u.max_depth, wfq_.depth(t));
  return verdict;
}

bool TenantScheduler::has_budget(std::size_t t) const {
  if (knobs_.leak_budget) return true;  // mutation: admissions unbounded
  if (floor_used_[t] < floor_[t]) return true;
  return shared_used_ < shared_pool_;
}

std::optional<std::size_t> TenantScheduler::next_candidate(
    const std::vector<bool>& blocked, bool unlimited) const {
  // Budget exclusion folds into the WFQ exclusion mask so the pick is
  // still "minimum virtual finish time among eligible heads".
  exclude_.assign(specs_.size(), false);
  bool any = false;
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    const bool out = (!blocked.empty() && blocked[t]) ||
                     (!unlimited && !has_budget(t));
    exclude_[t] = out;
    any = any || out;
  }
  if (!any) exclude_.clear();  // empty mask = no exclusions
  return wfq_.next(exclude_);
}

std::uint64_t TenantScheduler::pop(std::size_t t, bool unlimited) {
  if (!unlimited && !knobs_.leak_budget) {
    if (floor_used_[t] < floor_[t]) {
      ++floor_used_[t];
    } else {
      FLASHQOS_ASSERT(shared_used_ < shared_pool_,
                      "dispensed past the interval budget");
      ++shared_used_;
    }
  }
  ++usage_[t].admitted;
  return wfq_.pop(t);
}

std::uint64_t TenantScheduler::drop_head(std::size_t t) {
  return wfq_.drop_head(t);
}

void TenantScheduler::observe_depths() {
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    usage_[t].max_depth =
        std::max<std::uint64_t>(usage_[t].max_depth, wfq_.depth(t));
  }
}

}  // namespace flashqos::core
