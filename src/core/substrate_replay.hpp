// Substrate validation: replay a QoS pipeline's dispatch decisions on the
// deep SSD-module model.
//
// The paper's evaluation (and this repo's QoS pipeline) abstracts a flash
// module as a fixed-latency unit server. The deep substrate
// (flashsim::SsdModule) models what is really inside — dies, a shared
// channel, DRAM cache, garbage collection. replay_on_ssd() takes the
// pipeline's per-request decisions (device + dispatch instant) and submits
// them to a bank of SsdModules, measuring how many admitted requests still
// meet the guarantee when the abstraction is peeled away.
#pragma once

#include "core/qos_pipeline.hpp"
#include "flashsim/ssd_module.hpp"

namespace flashqos::core {

struct SubstrateReplayResult {
  std::size_t reads = 0;
  std::size_t writes = 0;
  double avg_ms = 0.0;         // read response (finish - dispatch)
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double within_guarantee = 0.0;  // fraction of reads meeting the deadline
  std::uint64_t cache_hits = 0;
  std::uint64_t gc_erases = 0;
};

/// Replay `result`'s dispatch plan (device + dispatch time per request) on
/// one SsdModule per device. The bucket id hashes to a stable logical page
/// inside its module. Failed requests are skipped; writes are submitted to
/// their recorded primary device (the substrate question is contention, not
/// replication fan-out, which the pipeline already decided).
[[nodiscard]] SubstrateReplayResult replay_on_ssd(
    const PipelineResult& result, const trace::Trace& t,
    const decluster::AllocationScheme& scheme,
    const flashsim::SsdModuleConfig& module_config,
    SimTime deadline = kBaseInterval);

}  // namespace flashqos::core
