#include "core/slot_matcher.hpp"

#include <algorithm>

namespace flashqos::core {

SlotMatcher::SlotMatcher(const decluster::AllocationScheme& scheme)
    : scheme_(scheme), devices_(scheme.devices()) {
  cap_epoch_.assign(devices_, 0);
  capacity_.assign(devices_, 0);
  occ_count_.assign(devices_, 0);
}

SlotMatcher::SlotMatcher(const decluster::AllocationScheme& scheme,
                         const std::vector<SimTime>& free_at, SimTime now,
                         SimTime service, std::uint32_t budget,
                         const std::vector<bool>& available,
                         const std::vector<SimTime>* per_device)
    : SlotMatcher(scheme) {
  begin_instant(free_at, now, service, budget, available, per_device);
}

void SlotMatcher::begin_instant(const std::vector<SimTime>& free_at,
                                SimTime now, SimTime service,
                                std::uint32_t budget,
                                const std::vector<bool>& available,
                                const std::vector<SimTime>* per_device) {
  free_at_ = &free_at;
  available_ = &available;
  per_device_ = per_device;
  now_ = now;
  service_ = service;
  budget_ = budget;
  window_end_ = now + static_cast<SimTime>(budget) * service;
  ++epoch_;
  const std::size_t need =
      static_cast<std::size_t>(devices_) * static_cast<std::size_t>(budget);
  if (occ_.size() < need) {
    // flashqos-lint: allow(hot-path-alloc): grows to devices x budget once, then stable
    occ_.resize(need);
  }
  buckets_.clear();
  assigned_.clear();
  visited_.clear();
}

void SlotMatcher::touch(DeviceId d) {
  if (cap_epoch_[d] == epoch_) return;
  cap_epoch_[d] = epoch_;
  occ_count_[d] = 0;
  std::uint32_t cap = 0;
  if (available_->empty() || (*available_)[d]) {  // down devices expose 0 slots
    const SimTime svc = per_device_ != nullptr ? (*per_device_)[d] : service_;
    const SimTime start = std::max((*free_at_)[d], now_);
    const SimTime room = window_end_ - start;
    cap = room <= 0 ? 0
                    : static_cast<std::uint32_t>(
                          std::min<SimTime>(room / svc, budget_));
  }
  capacity_[d] = cap;
}

bool SlotMatcher::add(BucketId bucket) {
  const std::size_t request = buckets_.size();
  // flashqos-lint: allow(hot-path-alloc): amortized growth, capacity persists across instants
  buckets_.push_back(bucket);
  // flashqos-lint: allow(hot-path-alloc): amortized growth, capacity persists across instants
  assigned_.push_back(kInvalidDevice);
  // flashqos-lint: allow(hot-path-alloc): amortized growth, capacity persists across instants
  visited_.push_back(0);
  ++add_stamp_;
  if (augment(request)) return true;
  buckets_.pop_back();
  assigned_.pop_back();
  visited_.pop_back();
  return false;
}

bool SlotMatcher::augment(std::size_t request) {
  visited_[request] = add_stamp_;
  const auto reps = scheme_.replicas(buckets_[request]);
  // First pass: a device with a free slot.
  for (const auto d : reps) {
    touch(d);
    if (occ_count_[d] < capacity_[d]) {
      occ_[static_cast<std::size_t>(d) * budget_ + occ_count_[d]] =
          static_cast<std::uint32_t>(request);
      ++occ_count_[d];
      assigned_[request] = d;
      return true;
    }
  }
  // Second pass: evict-and-relocate (augmenting path) over occupants in
  // insertion order — the same traversal the per-instant implementation
  // used, so assignments match it exactly.
  for (const auto d : reps) {
    const std::size_t base = static_cast<std::size_t>(d) * budget_;
    for (std::uint32_t j = 0; j < occ_count_[d]; ++j) {
      const std::size_t occupant = occ_[base + j];
      if (visited_[occupant] != add_stamp_ && augment(occupant)) {
        occ_[base + j] = static_cast<std::uint32_t>(request);
        assigned_[request] = d;
        return true;
      }
    }
  }
  return false;
}

}  // namespace flashqos::core
