// FP-growth — the third base FIM algorithm family the paper names
// (Apriori, Eclat, FP-growth; Han et al. 2000) — and, through it, general
// k-itemset mining. The QoS framework itself only consumes pairs, but the
// paper's §IV-A motivates size-3 association rules ("customers who bought
// item1 and item2 together also bought item3"), which need a real itemset
// miner.
#pragma once

#include <cstddef>
#include <vector>

#include "fim/apriori.hpp"
#include "fim/transaction.hpp"

namespace flashqos::fim {

struct Itemset {
  std::vector<Item> items;  // sorted ascending
  std::uint64_t support = 0;

  friend bool operator==(const Itemset&, const Itemset&) = default;
};

/// All frequent itemsets of size in [1, max_size] with support >=
/// min_support, mined with an FP-tree (no candidate generation). Sorted by
/// (size, lexicographic items).
[[nodiscard]] std::vector<Itemset> mine_itemsets_fpgrowth(const TransactionDb& db,
                                                          std::uint64_t min_support,
                                                          std::size_t max_size);

/// Pair-only front-end with the same MiningResult contract as the other
/// two miners (identical result sets; see fim_test).
[[nodiscard]] MiningResult mine_pairs_fpgrowth(const TransactionDb& db,
                                               std::uint64_t min_support);

/// Exponential reference miner for tests and tiny inputs.
[[nodiscard]] std::vector<Itemset> mine_itemsets_naive(const TransactionDb& db,
                                                       std::uint64_t min_support,
                                                       std::size_t max_size);

}  // namespace flashqos::fim
