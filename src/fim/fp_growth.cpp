#include "fim/fp_growth.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <unordered_map>

#include "util/expect.hpp"
#include "util/memory.hpp"

namespace flashqos::fim {
namespace {

// The FP-tree works on dense item ids ordered by descending support (the
// classic heuristic: frequent items near the root maximize path sharing).
struct FpNode {
  std::uint32_t item = UINT32_MAX;  // dense id; UINT32_MAX at the root
  std::uint64_t count = 0;
  FpNode* parent = nullptr;
  FpNode* sibling = nullptr;  // header-table chain
  std::map<std::uint32_t, std::unique_ptr<FpNode>> children;
};

class FpTree {
 public:
  explicit FpTree(std::size_t items) : header_(items, nullptr) {}

  /// Insert a transaction (dense ids, ascending == descending support
  /// order) with multiplicity `count`.
  void insert(std::span<const std::uint32_t> txn, std::uint64_t count) {
    FpNode* node = &root_;
    for (const auto item : txn) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        child->sibling = header_[item];
        header_[item] = child.get();
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += count;
      node = it->second.get();
    }
  }

  [[nodiscard]] const FpNode* header(std::uint32_t item) const { return header_[item]; }
  [[nodiscard]] std::size_t items() const noexcept { return header_.size(); }

 private:
  FpNode root_;
  std::vector<FpNode*> header_;
};

/// Recursive FP-growth over a (conditional) tree. `suffix` holds the dense
/// ids already fixed, in *descending* dense-id order (deepest first).
void grow(const FpTree& tree, std::uint64_t min_support, std::size_t max_size,
          std::vector<std::uint32_t>& suffix,
          std::vector<std::pair<std::vector<std::uint32_t>, std::uint64_t>>& out) {
  if (suffix.size() >= max_size) return;
  // Walk items from the deepest (largest dense id = least frequent) up, the
  // standard bottom-up order.
  for (std::uint32_t item = static_cast<std::uint32_t>(tree.items()); item-- > 0;) {
    std::uint64_t support = 0;
    for (const FpNode* n = tree.header(item); n != nullptr; n = n->sibling) {
      support += n->count;
    }
    if (support < min_support) continue;

    suffix.push_back(item);
    out.emplace_back(suffix, support);

    if (suffix.size() < max_size) {
      // Conditional tree: prefix paths of every `item` node, weighted by
      // the node's count, with items below the conditional support pruned.
      std::vector<std::uint64_t> cond_support(tree.items(), 0);
      for (const FpNode* n = tree.header(item); n != nullptr; n = n->sibling) {
        for (const FpNode* p = n->parent; p != nullptr && p->item != UINT32_MAX;
             p = p->parent) {
          cond_support[p->item] += n->count;
        }
      }
      FpTree cond(tree.items());
      bool any = false;
      for (const FpNode* n = tree.header(item); n != nullptr; n = n->sibling) {
        std::vector<std::uint32_t> path;
        for (const FpNode* p = n->parent; p != nullptr && p->item != UINT32_MAX;
             p = p->parent) {
          if (cond_support[p->item] >= min_support) path.push_back(p->item);
        }
        if (path.empty()) continue;
        std::reverse(path.begin(), path.end());  // root-to-leaf order
        cond.insert(path, n->count);
        any = true;
      }
      if (any) grow(cond, min_support, max_size, suffix, out);
    }
    suffix.pop_back();
  }
}

}  // namespace

std::vector<Itemset> mine_itemsets_fpgrowth(const TransactionDb& db,
                                            std::uint64_t min_support,
                                            std::size_t max_size) {
  FLASHQOS_EXPECT(max_size >= 1, "itemsets have at least one item");
  if (min_support == 0) min_support = 1;
  std::vector<Itemset> result;
  if (db.empty()) return result;

  // Pass 1: item supports; dense ids by descending support (ties: item id).
  std::unordered_map<Item, std::uint64_t> support;
  for (const auto& t : db.transactions()) {
    for (const auto item : t) ++support[item];
  }
  std::vector<std::pair<Item, std::uint64_t>> frequent;
  for (const auto& [item, count] : support) {
    if (count >= min_support) frequent.emplace_back(item, count);
  }
  std::sort(frequent.begin(), frequent.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::unordered_map<Item, std::uint32_t> dense;
  std::vector<Item> undense(frequent.size());
  for (std::uint32_t i = 0; i < frequent.size(); ++i) {
    dense.emplace(frequent[i].first, i);
    undense[i] = frequent[i].first;
  }
  if (frequent.empty()) return result;

  // Pass 2: build the tree.
  FpTree tree(frequent.size());
  std::vector<std::uint32_t> txn;
  for (const auto& t : db.transactions()) {
    txn.clear();
    for (const auto item : t) {
      if (const auto it = dense.find(item); it != dense.end()) {
        txn.push_back(it->second);
      }
    }
    std::sort(txn.begin(), txn.end());  // ascending dense == descending support
    if (!txn.empty()) tree.insert(txn, 1);
  }

  // Mine.
  std::vector<std::uint32_t> suffix;
  std::vector<std::pair<std::vector<std::uint32_t>, std::uint64_t>> raw;
  grow(tree, min_support, max_size, suffix, raw);

  result.reserve(raw.size());
  for (auto& [ids, sup] : raw) {
    Itemset is;
    is.support = sup;
    is.items.reserve(ids.size());
    for (const auto id : ids) is.items.push_back(undense[id]);
    std::sort(is.items.begin(), is.items.end());
    result.push_back(std::move(is));
  }
  std::sort(result.begin(), result.end(), [](const Itemset& a, const Itemset& b) {
    return a.items.size() != b.items.size() ? a.items.size() < b.items.size()
                                            : a.items < b.items;
  });
  return result;
}

MiningResult mine_pairs_fpgrowth(const TransactionDb& db, std::uint64_t min_support) {
  // flashqos-lint: allow(wall-clock): miner self-timing (elapsed_seconds metric)
  const auto t0 = std::chrono::steady_clock::now();
  MiningResult res;
  res.transactions = db.size();
  res.total_items = db.total_items();
  const auto sets = mine_itemsets_fpgrowth(db, min_support, 2);
  for (const auto& s : sets) {
    if (s.items.size() == 1) ++res.frequent_items;
    if (s.items.size() == 2) {
      res.pairs.push_back(FrequentPair{s.items[0], s.items[1], s.support});
    }
  }
  std::sort(res.pairs.begin(), res.pairs.end(),
            [](const FrequentPair& a, const FrequentPair& b) {
              return a.a != b.a ? a.a < b.a : a.b < b.b;
            });
  res.elapsed_seconds =
      // flashqos-lint: allow(wall-clock): miner self-timing (elapsed_seconds metric)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  res.peak_memory_bytes = peak_rss_bytes();
  return res;
}

std::vector<Itemset> mine_itemsets_naive(const TransactionDb& db,
                                         std::uint64_t min_support,
                                         std::size_t max_size) {
  if (min_support == 0) min_support = 1;
  std::map<std::vector<Item>, std::uint64_t> counts;
  // Enumerate every subset of size <= max_size of every transaction.
  for (const auto& t : db.transactions()) {
    const std::size_t n = t.size();
    std::vector<std::size_t> pick;
    // Iterative subset enumeration bounded by max_size.
    const auto recurse = [&](auto&& self, std::size_t from) -> void {
      if (!pick.empty()) {
        std::vector<Item> key;
        key.reserve(pick.size());
        for (const auto i : pick) key.push_back(t[i]);
        ++counts[key];
      }
      if (pick.size() == max_size) return;
      for (std::size_t i = from; i < n; ++i) {
        pick.push_back(i);
        self(self, i + 1);
        pick.pop_back();
      }
    };
    recurse(recurse, 0);
  }
  std::vector<Itemset> out;
  for (const auto& [items, count] : counts) {
    if (count >= min_support) out.push_back(Itemset{items, count});
  }
  std::sort(out.begin(), out.end(), [](const Itemset& a, const Itemset& b) {
    return a.items.size() != b.items.size() ? a.items.size() < b.items.size()
                                            : a.items < b.items;
  });
  return out;
}

}  // namespace flashqos::fim
