// Frequent-pair mining.
//
// The QoS framework mines set-size-2 itemsets only (paper §IV-A), so the
// miners here are specialized pair miners rather than general k-itemset
// engines. Two algorithms with identical output:
//
//  * apriori  — the paper's fim_apriori-lowmem stand-in: pass 1 counts item
//    supports and prunes infrequent items (the apriori property: a pair can
//    only be frequent if both items are); pass 2 counts surviving pairs in
//    a hash table.
//  * eclat    — vertical layout: per-item transaction-id lists, pair support
//    by list intersection.
//
// Both return pairs sorted by (a, b) with a < b, support >= min_support.
#pragma once

#include <cstddef>
#include <vector>

#include "fim/transaction.hpp"

namespace flashqos::fim {

struct MiningResult {
  std::vector<FrequentPair> pairs;
  double elapsed_seconds = 0.0;
  std::size_t peak_memory_bytes = 0;   // process VmHWM after the run
  std::size_t transactions = 0;
  std::size_t total_items = 0;
  std::size_t frequent_items = 0;      // items surviving pass 1
};

[[nodiscard]] MiningResult mine_pairs_apriori(const TransactionDb& db,
                                              std::uint64_t min_support);

[[nodiscard]] MiningResult mine_pairs_eclat(const TransactionDb& db,
                                            std::uint64_t min_support);

/// Reference implementation: O(items²) dense counting per transaction with
/// no pruning. For tests and tiny inputs.
[[nodiscard]] std::vector<FrequentPair> mine_pairs_naive(const TransactionDb& db,
                                                         std::uint64_t min_support);

}  // namespace flashqos::fim
