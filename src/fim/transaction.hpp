// Transaction databases for frequent itemset mining.
//
// In this project a "transaction" is the set of data blocks requested
// within one QoS interval T (paper §IV-A); mining frequent pairs over the
// previous interval's transactions tells the block mapper which data blocks
// tend to be requested together.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace flashqos::fim {

using Item = DataBlockId;

class TransactionDb {
 public:
  TransactionDb() = default;

  /// Add one transaction; duplicates within it are collapsed and items
  /// sorted (canonical form required by the miners).
  void add(std::vector<Item> items) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    if (!items.empty()) transactions_.push_back(std::move(items));
  }

  [[nodiscard]] std::size_t size() const noexcept { return transactions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return transactions_.empty(); }
  [[nodiscard]] std::span<const std::vector<Item>> transactions() const noexcept {
    return transactions_;
  }

  /// Total item occurrences across transactions (the "requests size" the
  /// paper quotes for FIM inputs in Table IV).
  [[nodiscard]] std::size_t total_items() const noexcept {
    std::size_t n = 0;
    for (const auto& t : transactions_) n += t.size();
    return n;
  }

 private:
  std::vector<std::vector<Item>> transactions_;
};

struct FrequentPair {
  Item a = 0;  // a < b
  Item b = 0;
  std::uint64_t support = 0;

  friend bool operator==(const FrequentPair&, const FrequentPair&) = default;
};

}  // namespace flashqos::fim
