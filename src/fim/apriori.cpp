#include "fim/apriori.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/memory.hpp"

namespace flashqos::fim {
namespace {

// flashqos-lint: allow(wall-clock): miner self-timing (elapsed_seconds metric)
using Clock = std::chrono::steady_clock;

/// Pass 1 shared by both miners: item supports, then a dense re-id of the
/// frequent items (0..F-1) so pair keys pack into one uint64.
struct FrequentItemIndex {
  std::unordered_map<Item, std::uint32_t> to_dense;
  std::vector<Item> to_item;  // dense id -> original item
};

FrequentItemIndex index_frequent_items(const TransactionDb& db,
                                       std::uint64_t min_support) {
  std::unordered_map<Item, std::uint64_t> support;
  for (const auto& t : db.transactions()) {
    for (const auto item : t) ++support[item];
  }
  FrequentItemIndex idx;
  for (const auto& [item, count] : support) {
    if (count >= min_support) idx.to_item.push_back(item);
  }
  // Deterministic dense ids regardless of hash order.
  std::sort(idx.to_item.begin(), idx.to_item.end());
  idx.to_dense.reserve(idx.to_item.size());
  for (std::uint32_t i = 0; i < idx.to_item.size(); ++i) {
    idx.to_dense.emplace(idx.to_item[i], i);
  }
  return idx;
}

}  // namespace

MiningResult mine_pairs_apriori(const TransactionDb& db, std::uint64_t min_support) {
  const auto t0 = Clock::now();
  MiningResult res;
  res.transactions = db.size();
  res.total_items = db.total_items();
  if (min_support == 0) min_support = 1;

  // Flat sort/run-count passes instead of hash maps: the miner sits on the
  // streaming replay's per-interval critical path, and sorted runs over
  // contiguous arrays beat pointer-chasing hash tables there. Output is
  // identical to the hash-map formulation — run-counting a sorted multiset
  // IS its exact histogram, and dense ids / pair keys are emitted in the
  // same (item-order, lo < hi) encoding finalize_pairs sorted into.

  // Pass 1: item supports by sort + run-count; survivors (already in item
  // order) become the dense id table.
  std::vector<Item> items;
  items.reserve(db.total_items());
  for (const auto& t : db.transactions()) {
    items.insert(items.end(), t.begin(), t.end());
  }
  std::sort(items.begin(), items.end());
  std::vector<Item> to_item;  // dense id -> item, ascending
  for (std::size_t i = 0; i < items.size();) {
    std::size_t j = i;
    while (j < items.size() && items[j] == items[i]) ++j;
    if (j - i >= min_support) to_item.push_back(items[i]);
    i = j;
  }
  res.frequent_items = to_item.size();

  // Pass 2: pair keys of frequent items per transaction, flattened, then
  // sort + run-count. Dense ids are assigned in item order and transactions
  // are sorted, so lo < hi holds by construction and key order equals the
  // (a, b) item order the result contract requires.
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> dense;
  for (const auto& t : db.transactions()) {
    dense.clear();
    for (const auto item : t) {
      const auto it = std::lower_bound(to_item.begin(), to_item.end(), item);
      if (it != to_item.end() && *it == item) {
        dense.push_back(static_cast<std::uint32_t>(it - to_item.begin()));
      }
    }
    for (std::size_t i = 0; i < dense.size(); ++i) {
      for (std::size_t j = i + 1; j < dense.size(); ++j) {
        keys.push_back((static_cast<std::uint64_t>(dense[i]) << 32) | dense[j]);
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  std::vector<FrequentPair> pairs;
  for (std::size_t i = 0; i < keys.size();) {
    std::size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    if (j - i >= min_support) {
      const auto lo = static_cast<std::uint32_t>(keys[i] >> 32);
      const auto hi = static_cast<std::uint32_t>(keys[i] & 0xFFFFFFFFULL);
      pairs.push_back(FrequentPair{to_item[lo], to_item[hi], j - i});
    }
    i = j;
  }
  res.pairs = std::move(pairs);
  res.elapsed_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  res.peak_memory_bytes = peak_rss_bytes();
  return res;
}

MiningResult mine_pairs_eclat(const TransactionDb& db, std::uint64_t min_support) {
  const auto t0 = Clock::now();
  MiningResult res;
  res.transactions = db.size();
  res.total_items = db.total_items();
  if (min_support == 0) min_support = 1;

  const FrequentItemIndex idx = index_frequent_items(db, min_support);
  res.frequent_items = idx.to_item.size();

  // Vertical layout: per frequent item, the sorted list of transaction ids
  // containing it.
  std::vector<std::vector<std::uint32_t>> tids(idx.to_item.size());
  const auto txs = db.transactions();
  for (std::uint32_t t = 0; t < txs.size(); ++t) {
    for (const auto item : txs[t]) {
      if (const auto it = idx.to_dense.find(item); it != idx.to_dense.end()) {
        tids[it->second].push_back(t);
      }
    }
  }

  // Candidate pairs: only pairs that co-occur at least once can be
  // frequent, so enumerate them from the horizontal data instead of testing
  // all F² combinations (min_support is often 1 here, which would defeat
  // size-based pruning).
  std::unordered_set<std::uint64_t> candidates;
  std::vector<std::uint32_t> dense;
  for (const auto& t : txs) {
    dense.clear();
    for (const auto item : t) {
      if (const auto it = idx.to_dense.find(item); it != idx.to_dense.end()) {
        dense.push_back(it->second);
      }
    }
    for (std::size_t i = 0; i < dense.size(); ++i) {
      for (std::size_t j = i + 1; j < dense.size(); ++j) {
        candidates.insert((static_cast<std::uint64_t>(dense[i]) << 32) | dense[j]);
      }
    }
  }

  // Exact supports by tid-list intersection (the vertical step).
  std::vector<FrequentPair> pairs;
  for (const auto key : candidates) {
    const auto a = static_cast<std::uint32_t>(key >> 32);
    const auto b = static_cast<std::uint32_t>(key & 0xFFFFFFFFULL);
    const auto& la = tids[a];
    const auto& lb = tids[b];
    if (std::min(la.size(), lb.size()) < min_support) continue;
    std::uint64_t support = 0;
    std::size_t i = 0, j = 0;
    while (i < la.size() && j < lb.size()) {
      if (la[i] < lb[j]) {
        ++i;
      } else if (la[i] > lb[j]) {
        ++j;
      } else {
        ++support;
        ++i;
        ++j;
      }
    }
    if (support >= min_support) {
      pairs.push_back(FrequentPair{idx.to_item[a], idx.to_item[b], support});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const FrequentPair& x, const FrequentPair& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  res.pairs = std::move(pairs);
  res.elapsed_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  res.peak_memory_bytes = peak_rss_bytes();
  return res;
}

std::vector<FrequentPair> mine_pairs_naive(const TransactionDb& db,
                                           std::uint64_t min_support) {
  if (min_support == 0) min_support = 1;
  std::map<std::pair<Item, Item>, std::uint64_t> counts;
  for (const auto& t : db.transactions()) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        ++counts[{t[i], t[j]}];
      }
    }
  }
  std::vector<FrequentPair> out;
  for (const auto& [pair, count] : counts) {
    if (count >= min_support) {
      out.push_back(FrequentPair{pair.first, pair.second, count});
    }
  }
  return out;
}

}  // namespace flashqos::fim
