// Fault plans: the value type behind PipelineConfig's fault injection.
//
// A FaultPlan describes everything that can go wrong with the array during
// a replay, in one declarative object:
//
//  * scripted outage windows (transient or permanent — the legacy
//    `[failures] fail = d t0 t1` lines map 1:1 onto these);
//  * scripted latency spikes — a device stays up but serves reads slower
//    by a multiplicative factor for a window (media retries, background
//    GC, thermal throttling);
//  * seeded stochastic generators for both, so chaos runs are one seed
//    away from reproducible;
//  * a hot-spare rebuild policy: a permanent failure triggers a paced
//    background read stream (planned by the rebuild planner in this
//    directory) and the device re-enters service when the last affected
//    bucket has been copied out;
//  * retry/timeout semantics for requests stranded with every replica
//    down: by default they wait for the earliest recovery, with a timeout
//    they are marked failed once the wait would exceed it.
//
// compile() materializes a plan against a concrete allocation scheme and
// replay horizon: generators are expanded into concrete windows, rebuild
// read streams are planned and paced, and permanent outages under a
// rebuild policy get their actual recovery instant folded in. The result
// is pure data — the pipeline's injector and the chaos oracle in
// src/verify both consume it, which is what makes the oracle's
// "recomputed from the plan" checks meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decluster/allocation.hpp"
#include "util/time.hpp"

namespace flashqos::fault {

/// A device outage window [fail_at, recover_at). Requests are never routed
/// to a down device; replication serves them from surviving copies. A
/// request whose replicas are all down waits for the earliest recovery, or
/// is marked failed if none of them ever comes back (or the plan's retry
/// timeout expires first).
struct DeviceFailure {
  DeviceId device = 0;
  SimTime fail_at = 0;
  SimTime recover_at = kNeverRecovers;

  static constexpr SimTime kNeverRecovers = INT64_MAX;
};

/// A service-time degradation window: reads started on `device` inside
/// [start, end) take `factor` times the configured service time. The
/// device stays available — admission still counts it — but the slot
/// matcher sees fewer service quanta fitting in the guarantee window.
struct LatencySpike {
  DeviceId device = 0;
  SimTime start = 0;
  SimTime end = 0;
  double factor = 1.0;
};

/// Seeded generator for transient outage windows: `count` windows on
/// uniformly random devices, uniformly random start instants over the
/// replay horizon, exponentially distributed durations.
struct TransientSpec {
  std::uint32_t count = 0;
  SimTime mean_duration = 5 * kMillisecond;
};

/// Seeded generator for latency spikes (same placement distribution).
struct SpikeSpec {
  std::uint32_t count = 0;
  SimTime mean_duration = 5 * kMillisecond;
  double factor = 4.0;
};

/// Hot-spare rebuild: when a device fails permanently, read every bucket
/// it held from a surviving replica at `pages_per_second`, then bring the
/// rebuilt device back into service. Disabled at rate 0.
struct RebuildPolicy {
  double pages_per_second = 0.0;

  [[nodiscard]] bool enabled() const noexcept { return pages_per_second > 0.0; }
};

/// What happens to a request stranded with all replicas down. The default
/// waits indefinitely for the earliest recovery (legacy behaviour); a
/// finite timeout marks the request failed once its next possible
/// dispatch would exceed arrival + timeout.
struct RetryPolicy {
  SimTime timeout = kNoTimeout;

  static constexpr SimTime kNoTimeout = INT64_MAX;
};

struct FaultPlan {
  std::vector<DeviceFailure> outages;  // scripted outage windows
  std::vector<LatencySpike> spikes;    // scripted degradation windows
  TransientSpec transient;             // generated outages
  SpikeSpec latency_spike;             // generated spikes
  RebuildPolicy rebuild;
  RetryPolicy retry;
  std::uint64_t seed = 1;  // generator seed; same seed → same windows

  /// True when the plan injects nothing: no scripted windows and no
  /// generators. An empty plan leaves the pipeline on the healthy path
  /// bit for bit.
  [[nodiscard]] bool empty() const noexcept {
    return outages.empty() && spikes.empty() && transient.count == 0 &&
           latency_spike.count == 0;
  }

  /// Readable diagnostics; empty means valid. `devices` bounds device ids
  /// when nonzero (a plan parsed before the scheme is known passes 0).
  [[nodiscard]] std::vector<std::string> validate(std::uint32_t devices = 0) const;
};

/// One paced rebuild read: at `time`, read `bucket` from `source`.
struct RebuildRead {
  SimTime time = 0;
  DeviceId source = kInvalidDevice;
  BucketId bucket = 0;
};

/// Rebuild bookkeeping for one permanently failed device. `completed`
/// is false when some affected bucket has no surviving replica that ever
/// returns — the rebuild aborts and the device stays down forever.
struct RebuildJob {
  DeviceId device = kInvalidDevice;
  SimTime start = 0;
  SimTime done = DeviceFailure::kNeverRecovers;
  std::size_t reads = 0;
  bool completed = false;
};

/// A plan materialized against a scheme and replay horizon: generators
/// expanded, rebuild streams planned, recovery instants folded in.
struct CompiledFaultPlan {
  std::vector<DeviceFailure> outages;
  std::vector<LatencySpike> spikes;
  std::vector<RebuildRead> reads;  // time-ordered background rebuild reads
  std::vector<RebuildJob> rebuilds;
  SimTime retry_timeout = RetryPolicy::kNoTimeout;

  [[nodiscard]] bool active() const noexcept {
    return !outages.empty() || !spikes.empty();
  }

  /// The instant the array is fully healthy again: the latest outage
  /// recovery or spike end. kNeverRecovers when some device never comes
  /// back — there is no full recovery to re-establish the guarantee after.
  [[nodiscard]] SimTime last_disruption() const noexcept;
};

/// Materialize `plan` for a replay that ends at `horizon` (generated
/// windows start uniformly in [0, horizon]). Deterministic: same
/// (plan, scheme, horizon) → same compiled plan, independent of thread
/// count or call site. Aborts (FLASHQOS_EXPECT) on an invalid plan —
/// callers are expected to have run validate().
[[nodiscard]] CompiledFaultPlan compile(const FaultPlan& plan,
                                        const decluster::AllocationScheme& scheme,
                                        SimTime horizon);

}  // namespace flashqos::fault
