// FaultInjector: the replay-time query surface over a compiled fault plan.
//
// The pipeline builds one injector per replay (compile() is deterministic,
// so serial and parallel replays of the same config see identical faults)
// and asks it three questions at each simulated instant:
//
//   * fill_availability — which devices are up right now (and how many are
//     down), feeding both dispatch masking and the adaptive S' budget;
//   * service_multiplier — how much slower a device currently serves reads
//     (latency spikes), feeding per-dispatch service overrides and the
//     slot matcher's capacity math;
//   * take_rebuild_due — the paced background rebuild reads that have come
//     due, which the pipeline submits to the simulator ahead of foreground
//     traffic.
//
// The injector is plain sequential state over plain data; it performs no
// randomness of its own, which is what keeps every fault schedule exactly
// replayable.
#pragma once

#include <span>
#include <vector>

#include "fault/fault_plan.hpp"

namespace flashqos::fault {

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, const decluster::AllocationScheme& scheme,
                SimTime horizon)
      : compiled_(compile(plan, scheme, horizon)) {}

  explicit FaultInjector(CompiledFaultPlan compiled)
      : compiled_(std::move(compiled)) {}

  /// False for an empty plan: the pipeline skips all fault bookkeeping and
  /// replays bit-for-bit as if the subsystem did not exist.
  [[nodiscard]] bool active() const noexcept { return compiled_.active(); }

  [[nodiscard]] const CompiledFaultPlan& compiled() const noexcept {
    return compiled_;
  }

  /// Resize `out` to `devices` and mark each device's availability at
  /// `now`. Returns the number of down devices (0 means the mask is all
  /// true and callers should treat the array as healthy).
  std::uint32_t fill_availability(SimTime now, std::uint32_t devices,
                                  std::vector<bool>& out) const {
    out.assign(devices, true);
    std::uint32_t down = 0;
    for (const auto& f : compiled_.outages) {
      if (f.fail_at <= now && now < f.recover_at && f.device < devices &&
          out[f.device]) {
        out[f.device] = false;
        ++down;
      }
    }
    return down;
  }

  /// Earliest instant >= now at which `device` is up; kNeverRecovers when
  /// it is down forever. Chases chained windows so a recovery that lands
  /// inside the next outage is not reported as up.
  [[nodiscard]] SimTime device_up_at(DeviceId device, SimTime now) const {
    bool moved = true;
    while (moved) {
      moved = false;
      for (const auto& f : compiled_.outages) {
        if (f.device == device && f.fail_at <= now && now < f.recover_at) {
          if (f.recover_at == DeviceFailure::kNeverRecovers) {
            return DeviceFailure::kNeverRecovers;
          }
          now = f.recover_at;
          moved = true;
        }
      }
    }
    return now;
  }

  /// Service-time multiplier for a read starting on `device` at `now`.
  /// Overlapping spikes compound as the max of their factors (the slowest
  /// cause dominates); 1.0 when no spike covers the instant.
  [[nodiscard]] double service_multiplier(DeviceId device, SimTime now) const {
    double factor = 1.0;
    for (const auto& s : compiled_.spikes) {
      if (s.device == device && s.start <= now && now < s.end &&
          s.factor > factor) {
        factor = s.factor;
      }
    }
    return factor;
  }

  /// True when any spike window covers `now` on any device — lets the
  /// pipeline skip per-device multiplier scans on quiet instants.
  [[nodiscard]] bool any_spike_at(SimTime now) const {
    for (const auto& s : compiled_.spikes) {
      if (s.start <= now && now < s.end) return true;
    }
    return false;
  }

  /// Rebuild reads that have come due at `now`, in time order; advances
  /// the internal cursor so each read is handed out exactly once.
  [[nodiscard]] std::span<const RebuildRead> take_rebuild_due(SimTime now) {
    const std::size_t first = rebuild_cursor_;
    while (rebuild_cursor_ < compiled_.reads.size() &&
           compiled_.reads[rebuild_cursor_].time <= now) {
      ++rebuild_cursor_;
    }
    return {compiled_.reads.data() + first, rebuild_cursor_ - first};
  }

  [[nodiscard]] std::size_t rebuild_reads_total() const noexcept {
    return compiled_.reads.size();
  }

  [[nodiscard]] std::size_t rebuild_reads_issued() const noexcept {
    return rebuild_cursor_;
  }

 private:
  CompiledFaultPlan compiled_;
  std::size_t rebuild_cursor_ = 0;
};

}  // namespace flashqos::fault
