#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace flashqos::fault {
namespace {

// Distinct generator streams so adding spikes never perturbs the outage
// placement of the same seed.
inline constexpr std::uint64_t kOutageStream = 0x6f75;
inline constexpr std::uint64_t kSpikeStream = 0x7370;

void check_window(std::vector<std::string>& out, const char* what, DeviceId device,
                  SimTime start, SimTime end, std::uint32_t devices) {
  if (devices > 0 && device >= devices) {
    out.push_back(std::string(what) + " device " + std::to_string(device) +
                  " out of range (array has " + std::to_string(devices) +
                  " devices)");
  }
  if (start < 0) {
    out.push_back(std::string(what) + " on device " + std::to_string(device) +
                  " starts before t=0");
  }
  if (end <= start) {
    out.push_back(std::string(what) + " on device " + std::to_string(device) +
                  " is an empty window (end <= start)");
  }
}

/// True when `device` is inside an outage window at `t`.
bool down_at(const std::vector<DeviceFailure>& outages, DeviceId device, SimTime t) {
  return std::any_of(outages.begin(), outages.end(), [&](const DeviceFailure& f) {
    return f.device == device && f.fail_at <= t && t < f.recover_at;
  });
}

/// Earliest instant >= t at which `device` is up, chasing chained windows.
SimTime up_at(const std::vector<DeviceFailure>& outages, DeviceId device, SimTime t) {
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& f : outages) {
      if (f.device == device && f.fail_at <= t && t < f.recover_at) {
        if (f.recover_at == DeviceFailure::kNeverRecovers) {
          return DeviceFailure::kNeverRecovers;
        }
        t = f.recover_at;
        moved = true;
      }
    }
  }
  return t;
}

/// True when `device` never returns to service after `t`.
bool dead_forever(const std::vector<DeviceFailure>& outages, DeviceId device,
                  SimTime t) {
  return up_at(outages, device, t) == DeviceFailure::kNeverRecovers;
}

}  // namespace

std::vector<std::string> FaultPlan::validate(std::uint32_t devices) const {
  std::vector<std::string> out;
  for (const auto& f : outages) {
    check_window(out, "outage", f.device, f.fail_at, f.recover_at, devices);
  }
  // Overlapping outage windows on one device are almost certainly a config
  // mistake (the old vector<DeviceFailure> silently took the max recovery).
  auto sorted = outages;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const DeviceFailure& a, const DeviceFailure& b) {
                     return a.device != b.device ? a.device < b.device
                                                 : a.fail_at < b.fail_at;
                   });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].device == sorted[i - 1].device &&
        sorted[i].fail_at < sorted[i - 1].recover_at) {
      out.push_back("overlapping outage windows on device " +
                    std::to_string(sorted[i].device));
    }
  }
  for (const auto& s : spikes) {
    check_window(out, "latency spike", s.device, s.start, s.end, devices);
    if (s.factor <= 0.0) {
      out.push_back("latency spike on device " + std::to_string(s.device) +
                    " has non-positive factor");
    }
  }
  if (transient.count > 0 && transient.mean_duration <= 0) {
    out.push_back("transient generator needs a positive mean duration");
  }
  if (latency_spike.count > 0) {
    if (latency_spike.mean_duration <= 0) {
      out.push_back("latency-spike generator needs a positive mean duration");
    }
    if (latency_spike.factor <= 0.0) {
      out.push_back("latency-spike generator has non-positive factor");
    }
  }
  if (rebuild.pages_per_second < 0.0) {
    out.push_back("rebuild rate must be non-negative");
  }
  if (retry.timeout <= 0) {
    out.push_back("retry timeout must be positive (kNoTimeout disables it)");
  }
  return out;
}

SimTime CompiledFaultPlan::last_disruption() const noexcept {
  SimTime last = 0;
  for (const auto& f : outages) {
    if (f.recover_at == DeviceFailure::kNeverRecovers) {
      return DeviceFailure::kNeverRecovers;
    }
    last = std::max(last, f.recover_at);
  }
  for (const auto& s : spikes) last = std::max(last, s.end);
  return last;
}

CompiledFaultPlan compile(const FaultPlan& plan,
                          const decluster::AllocationScheme& scheme,
                          SimTime horizon) {
  FLASHQOS_EXPECT(plan.validate(scheme.devices()).empty(),
                  "cannot compile an invalid fault plan");
  FLASHQOS_EXPECT(horizon >= 0, "fault horizon must be non-negative");
  CompiledFaultPlan out;
  out.outages = plan.outages;
  out.spikes = plan.spikes;
  out.retry_timeout = plan.retry.timeout;

  if (plan.transient.count > 0) {
    Rng rng(shard_seed(plan.seed, kOutageStream));
    for (std::uint32_t i = 0; i < plan.transient.count; ++i) {
      const auto device = static_cast<DeviceId>(rng.below(scheme.devices()));
      const auto start = static_cast<SimTime>(rng.below(
          static_cast<std::uint64_t>(horizon) + 1));
      const auto duration = std::max<SimTime>(
          1, static_cast<SimTime>(std::llround(rng.exponential(
                 static_cast<double>(plan.transient.mean_duration)))));
      out.outages.push_back({device, start, start + duration});
    }
  }
  if (plan.latency_spike.count > 0) {
    Rng rng(shard_seed(plan.seed, kSpikeStream));
    for (std::uint32_t i = 0; i < plan.latency_spike.count; ++i) {
      const auto device = static_cast<DeviceId>(rng.below(scheme.devices()));
      const auto start = static_cast<SimTime>(rng.below(
          static_cast<std::uint64_t>(horizon) + 1));
      const auto duration = std::max<SimTime>(
          1, static_cast<SimTime>(std::llround(rng.exponential(
                 static_cast<double>(plan.latency_spike.mean_duration)))));
      out.spikes.push_back({device, start, start + duration,
                            plan.latency_spike.factor});
    }
  }

  if (!plan.rebuild.enabled()) return out;

  // Hot-spare rebuild of each permanent failure, in failure order — an
  // earlier rebuilt device can serve as a source for a later rebuild, and
  // the folded recovery instants feed the availability scans below.
  std::vector<std::size_t> permanents;
  for (std::size_t i = 0; i < out.outages.size(); ++i) {
    if (out.outages[i].recover_at == DeviceFailure::kNeverRecovers) {
      permanents.push_back(i);
    }
  }
  std::stable_sort(permanents.begin(), permanents.end(),
                   [&](std::size_t a, std::size_t b) {
                     return out.outages[a].fail_at < out.outages[b].fail_at;
                   });
  const auto gap = std::max<SimTime>(
      1, static_cast<SimTime>(std::llround(1e9 / plan.rebuild.pages_per_second)));
  for (const auto oi : permanents) {
    const DeviceId failed = out.outages[oi].device;
    const SimTime fail_at = out.outages[oi].fail_at;
    RebuildJob job{.device = failed, .start = fail_at};

    // Min-load greedy source choice among replicas that eventually return
    // to service (the planner's rule, restricted to recoverable sources).
    std::vector<RebuildRead> reads;
    std::vector<std::size_t> source_load(scheme.devices(), 0);
    bool recoverable = true;
    for (BucketId b = 0; b < scheme.buckets() && recoverable; ++b) {
      const auto reps = scheme.replicas(b);
      if (std::find(reps.begin(), reps.end(), failed) == reps.end()) continue;
      DeviceId best = kInvalidDevice;
      for (const auto d : reps) {
        if (d == failed || dead_forever(out.outages, d, fail_at)) continue;
        if (best == kInvalidDevice || source_load[d] < source_load[best]) best = d;
      }
      if (best == kInvalidDevice) {
        // Some bucket is unrecoverable: the rebuild aborts and the device
        // stays down forever (its data cannot be reconstructed).
        recoverable = false;
        break;
      }
      ++source_load[best];
      reads.push_back({.source = best, .bucket = b});
    }
    if (!recoverable) {
      out.rebuilds.push_back(job);
      continue;
    }

    // Pace the reads one gap apart; a read whose source is down at its
    // slot waits for that source to come back. A source can look
    // recoverable at fail_at yet die permanently later — if a slot lands
    // in that terminal window the rebuild aborts like the no-source case.
    SimTime done = fail_at + gap;
    for (std::size_t i = 0; i < reads.size() && recoverable; ++i) {
      SimTime at = fail_at + static_cast<SimTime>(i + 1) * gap;
      if (down_at(out.outages, reads[i].source, at)) {
        at = up_at(out.outages, reads[i].source, at);
        if (at == DeviceFailure::kNeverRecovers) {
          recoverable = false;
          break;
        }
      }
      reads[i].time = at;
      done = std::max(done, at + gap);
    }
    if (!recoverable) {
      out.rebuilds.push_back(job);
      continue;
    }
    out.outages[oi].recover_at = done;
    job.done = done;
    job.reads = reads.size();
    job.completed = true;
    out.rebuilds.push_back(job);
    out.reads.insert(out.reads.end(), reads.begin(), reads.end());
  }
  std::stable_sort(out.reads.begin(), out.reads.end(),
                   [](const RebuildRead& a, const RebuildRead& b) {
                     return a.time < b.time;
                   });
  return out;
}

}  // namespace flashqos::fault
