// Replica rebuild after a device failure.
//
// When a device dies permanently, every bucket that kept a copy on it is
// down to c-1 replicas; a second correlated failure could start losing
// data (see the degraded-mode benches). The rebuild planner enumerates the
// affected buckets, picks a *surviving* source replica for each with the
// read load balanced across source devices, and emits the rebuild reads as
// a paced trace that can be merged with the foreground workload — so the
// QoS impact of rebuilding is a measurable, first-class experiment rather
// than an afterthought. FaultPlan's RebuildPolicy drives the same planner
// from inside the pipeline (see fault_plan.hpp).
#pragma once

#include <vector>

#include "decluster/allocation.hpp"
#include "trace/event.hpp"

namespace flashqos::fault {

struct RebuildItem {
  BucketId bucket = 0;
  DeviceId source = kInvalidDevice;  // surviving replica to read from
};

struct RebuildPlan {
  DeviceId failed = kInvalidDevice;
  std::vector<RebuildItem> items;  // one per affected bucket

  /// Wall-clock lower bound at `pages_per_second` of rebuild bandwidth.
  [[nodiscard]] SimTime estimated_duration(double pages_per_second) const;
};

/// Plan the rebuild of `failed`: every bucket with a replica there gets a
/// surviving source, chosen to even out the per-device read load
/// (min-load greedy; exact balance is a trivial matching here because the
/// λ <= 1 property spreads the affected buckets).
[[nodiscard]] RebuildPlan plan_rebuild(const decluster::AllocationScheme& scheme,
                                       DeviceId failed);

/// Emit the plan as a read trace: one read per affected bucket, paced at
/// `pages_per_second`, starting at `start`. Block ids are bucket ids (use
/// MappingMode::kModulo when feeding a pipeline).
[[nodiscard]] trace::Trace rebuild_trace(const RebuildPlan& plan, SimTime start,
                                         double pages_per_second);

}  // namespace flashqos::fault

namespace flashqos::trace {

/// Merge two traces into one time-sorted stream (stable: `a` wins ties).
/// Metadata (name/volumes/report_interval) comes from `a`.
[[nodiscard]] Trace merge(const Trace& a, const Trace& b);

}  // namespace flashqos::trace
