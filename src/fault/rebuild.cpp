#include "fault/rebuild.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace flashqos::fault {

SimTime RebuildPlan::estimated_duration(double pages_per_second) const {
  FLASHQOS_EXPECT(pages_per_second > 0.0, "rebuild rate must be positive");
  return static_cast<SimTime>(static_cast<double>(items.size()) /
                              pages_per_second * 1e9);
}

RebuildPlan plan_rebuild(const decluster::AllocationScheme& scheme, DeviceId failed) {
  FLASHQOS_EXPECT(failed < scheme.devices(), "failed device out of range");
  RebuildPlan plan;
  plan.failed = failed;
  std::vector<std::size_t> source_load(scheme.devices(), 0);
  for (BucketId b = 0; b < scheme.buckets(); ++b) {
    const auto reps = scheme.replicas(b);
    if (std::find(reps.begin(), reps.end(), failed) == reps.end()) continue;
    DeviceId best = kInvalidDevice;
    for (const auto d : reps) {
      if (d == failed) continue;
      if (best == kInvalidDevice || source_load[d] < source_load[best]) best = d;
    }
    FLASHQOS_EXPECT(best != kInvalidDevice,
                    "rebuild needs at least two copies per bucket");
    ++source_load[best];
    plan.items.push_back({b, best});
  }
  return plan;
}

trace::Trace rebuild_trace(const RebuildPlan& plan, SimTime start,
                           double pages_per_second) {
  FLASHQOS_EXPECT(pages_per_second > 0.0, "rebuild rate must be positive");
  trace::Trace t;
  t.name = "rebuild";
  t.volumes = 0;
  const auto gap = static_cast<SimTime>(1e9 / pages_per_second);
  SimTime at = start;
  for (const auto& item : plan.items) {
    t.events.push_back({.time = at,
                        .block = item.bucket,
                        .device = item.source,
                        .size_blocks = 1,
                        .is_read = true});
    at += gap;
  }
  t.report_interval = at > start ? at - start : 1;
  return t;
}

}  // namespace flashqos::fault

namespace flashqos::trace {

Trace merge(const Trace& a, const Trace& b) {
  Trace out;
  out.name = a.name;
  out.volumes = a.volumes;
  out.report_interval = a.report_interval;
  out.events.reserve(a.events.size() + b.events.size());
  std::merge(a.events.begin(), a.events.end(), b.events.begin(), b.events.end(),
             std::back_inserter(out.events),
             [](const TraceEvent& x, const TraceEvent& y) { return x.time < y.time; });
  return out;
}

}  // namespace flashqos::trace
