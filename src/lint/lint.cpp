#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace flashqos::lint {

namespace {

// --- lexer -----------------------------------------------------------------

struct Token {
  std::string_view text;
  std::size_t line;
};

/// Lexed view of a file: identifier tokens plus the per-line allow sets
/// harvested from `// flashqos-lint: allow(rule, ...)` comments.
struct Lexed {
  std::vector<Token> idents;
  std::map<std::size_t, std::set<std::string, std::less<>>> allows;
};

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parse allow(rule, rule2) annotations out of one comment's text.
void harvest_allows(std::string_view comment, std::size_t line, Lexed& out) {
  const std::size_t tag = comment.find("flashqos-lint:");
  if (tag == std::string_view::npos) return;
  std::size_t open = comment.find("allow(", tag);
  if (open == std::string_view::npos) return;
  open += 6;
  const std::size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(open, close - open);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    std::string_view item = list.substr(0, comma);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (!item.empty()) out.allows[line].emplace(item);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

/// Tokenize `content`, skipping comments, string/char literals and raw
/// strings; identifiers come out whole, so `puts` never matches inside
/// `write_requested_outputs`.
[[nodiscard]] Lexed lex(std::string_view content) {
  Lexed out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();
  char prev_significant = '\0';  // last non-space char outside skips

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    // Line comment (also where allow-annotations live).
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t eol = content.find('\n', i);
      const std::size_t end = eol == std::string_view::npos ? n : eol;
      harvest_allows(content.substr(i, end - i), line, out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) {
        if (content[j] == '\n') ++line;
        ++j;
      }
      i = j + 1 < n ? j + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == '"' && prev_significant == 'R') {
      std::size_t j = i + 1;
      std::string delim;
      while (j < n && content[j] != '(' && delim.size() <= 16) {
        delim += content[j++];
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = content.find(closer, j);
      const std::size_t stop =
          end == std::string_view::npos ? n : end + closer.size();
      line += static_cast<std::size_t>(
          std::count(content.begin() + static_cast<std::ptrdiff_t>(i),
                     content.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(stop, n)),
                     '\n'));
      i = stop;
      prev_significant = '"';
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && content[j] != '"') {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') ++line;  // unterminated; keep counting
        ++j;
      }
      i = j + 1;
      prev_significant = '"';
      continue;
    }
    // Char literal — but a ' right after an alnum is a digit separator
    // (1'000'000), not a literal.
    if (c == '\'' && !ident_char(prev_significant)) {
      std::size_t j = i + 1;
      while (j < n && content[j] != '\'') {
        if (content[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      i = j + 1;
      prev_significant = '\'';
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(content[j])) ++j;
      out.idents.push_back({content.substr(i, j - i), line});
      prev_significant = content[j - 1];
      i = j;
      continue;
    }
    if (c != ' ' && c != '\t' && c != '\r') prev_significant = c;
    ++i;
  }
  return out;
}

// --- rule configuration ----------------------------------------------------

enum class Scope { kAll, kHotPath };

struct WordRule {
  const char* name;
  Scope scope;
  std::vector<const char*> words;
  const char* message;
  /// Exact src/-relative paths exempt from the rule (beyond the generic
  /// main.cpp exemption for adhoc-logging).
  std::vector<const char*> sanctioned;
};

[[nodiscard]] const std::vector<WordRule>& word_rules() {
  static const std::vector<WordRule> rules = {
      {"adhoc-logging",
       Scope::kAll,
       {"printf", "fprintf", "puts", "fputs", "putchar", "cout", "cerr"},
       "ad-hoc output; record through src/obs (or add an allow-comment if "
       "this really is a sanctioned reporting surface)",
       // CLI entry points (any */main.cpp) are exempt generically; these
       // are the non-main sanctioned surfaces:
       {
           "util/table.cpp",   // the table renderer IS the output surface
           "util/expect.hpp",  // contract failures report before abort()
           "obs/export.cpp",   // exporters write files + error-report
       }},
      {"hot-path-alloc",
       Scope::kHotPath,
       {"new", "malloc", "calloc", "realloc", "strdup", "make_unique",
        "make_shared", "push_back", "emplace_back", "emplace", "insert"},
       "allocation/growth in a zero-allocation hot path; pre-size in setup "
       "(allow-comment the setup site) or use the reusable workspaces",
       {}},
      {"raw-random",
       Scope::kAll,
       {"rand", "srand", "random_device", "drand48", "lrand48"},
       "unseeded randomness; use the seeded streams in util/rng.hpp so "
       "runs replay bit-identically",
       {}},
      {"wall-clock",
       Scope::kAll,
       // Blocking-I/O waits (poll/select/epoll_wait) are wall-clock time
       // too: the monitoring plane's HTTP server annotates its bounded
       // client waits explicitly. `accept` stays off the list — it would
       // collide with the admission API's vocabulary.
       {"steady_clock", "system_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "sleep", "sleep_for", "sleep_until",
        "usleep", "nanosleep", "poll", "select", "epoll_wait"},
       "wall-clock/sleep in simulation code; results may only depend on "
       "SimTime (allow-comment opt-in self-timing that never feeds results)",
       {}},
  };
  return rules;
}

[[nodiscard]] bool in_hot_path(std::string_view path) {
  // The streaming replay loop runs these per event at >= 1M req/s: the
  // chunked byte-source/parser and the online slot matcher, alongside the
  // retrieval solvers and the probability sampler.
  return path.rfind("retrieval/", 0) == 0 || path == "core/sampler.cpp" ||
         path == "trace/stream_reader.cpp" || path == "core/slot_matcher.cpp";
}

[[nodiscard]] bool is_main_cpp(std::string_view path) {
  if (path == "main.cpp") return true;
  return path.size() > 9 && path.substr(path.size() - 9) == "/main.cpp";
}

[[nodiscard]] bool rule_applies(const WordRule& rule, std::string_view path) {
  if (rule.scope == Scope::kHotPath && !in_hot_path(path)) return false;
  if (std::string_view(rule.name) == "adhoc-logging" && is_main_cpp(path)) {
    return false;
  }
  for (const char* exempt : rule.sanctioned) {
    if (path == exempt) return false;
  }
  return true;
}

[[nodiscard]] bool allowed(const Lexed& lx, std::size_t line,
                           std::string_view rule) {
  for (const std::size_t l : {line, line - 1}) {
    const auto it = lx.allows.find(l);
    if (it != lx.allows.end() && it->second.count(rule) > 0) return true;
  }
  return false;
}

// --- include hygiene -------------------------------------------------------

[[nodiscard]] bool is_header(std::string_view path) {
  return path.size() >= 4 && path.substr(path.size() - 4) == ".hpp";
}

/// Line-oriented pass: #pragma once placement, repo-rooted quoted
/// includes, duplicate includes. Runs on the raw text (directives are
/// line-structured anyway); block comments spanning directive-looking
/// lines do not occur in this codebase's style.
void check_includes(std::string_view path, std::string_view content,
                    const Lexed& lx, std::vector<Finding>& out) {
  constexpr std::string_view kRule = "include-hygiene";
  bool saw_pragma_once = false;
  bool saw_code_before_pragma = false;
  std::set<std::string, std::less<>> seen_includes;
  std::size_t line = 0;
  std::size_t pos = 0;
  bool in_block_comment = false;

  while (pos <= content.size()) {
    ++line;
    const std::size_t eol = content.find('\n', pos);
    std::string_view text = content.substr(
        pos, (eol == std::string_view::npos ? content.size() : eol) - pos);
    pos = eol == std::string_view::npos ? content.size() + 1 : eol + 1;

    // Minimal comment-state tracking so leading license/doc blocks never
    // count as code.
    std::string_view stripped = text;
    while (!stripped.empty() &&
           (stripped.front() == ' ' || stripped.front() == '\t')) {
      stripped.remove_prefix(1);
    }
    if (in_block_comment) {
      const std::size_t close = stripped.find("*/");
      if (close == std::string_view::npos) continue;
      in_block_comment = false;
      stripped.remove_prefix(close + 2);
    }
    if (stripped.rfind("//", 0) == 0 || stripped.empty()) continue;
    if (stripped.rfind("/*", 0) == 0 &&
        stripped.find("*/", 2) == std::string_view::npos) {
      in_block_comment = true;
      continue;
    }

    if (stripped.rfind("#pragma", 0) == 0 &&
        stripped.find("once") != std::string_view::npos) {
      saw_pragma_once = true;
      if (saw_code_before_pragma && !allowed(lx, line, kRule)) {
        out.push_back({std::string(kRule), std::string(path), line,
                       "#pragma once must be the first directive"});
      }
      continue;
    }
    saw_code_before_pragma = true;

    if (stripped.rfind("#include", 0) == 0) {
      std::string_view target;
      bool quoted = false;
      if (const std::size_t q1 = stripped.find('"');
          q1 != std::string_view::npos) {
        const std::size_t q2 = stripped.find('"', q1 + 1);
        if (q2 != std::string_view::npos) {
          target = stripped.substr(q1 + 1, q2 - q1 - 1);
          quoted = true;
        }
      } else if (const std::size_t a1 = stripped.find('<');
                 a1 != std::string_view::npos) {
        const std::size_t a2 = stripped.find('>', a1 + 1);
        if (a2 != std::string_view::npos) {
          target = stripped.substr(a1 + 1, a2 - a1 - 1);
        }
      }
      if (!target.empty()) {
        if (quoted && target.find('/') == std::string_view::npos &&
            !allowed(lx, line, kRule)) {
          out.push_back(
              {std::string(kRule), std::string(path), line,
               "quoted include \"" + std::string(target) +
                   "\" is not repo-rooted (include \"subdir/name.hpp\")"});
        }
        if (!seen_includes.emplace(target).second &&
            !allowed(lx, line, kRule)) {
          out.push_back({std::string(kRule), std::string(path), line,
                         "duplicate include \"" + std::string(target) +
                             "\""});
        }
      }
    }
  }

  if (is_header(path) && !saw_pragma_once) {
    out.push_back({std::string(kRule), std::string(path), 1,
                   "header is missing #pragma once"});
  }
}

}  // namespace

// --- public API ------------------------------------------------------------

std::vector<Finding> lint_file(std::string_view path,
                               std::string_view content) {
  std::vector<Finding> out;
  const Lexed lx = lex(content);

  // Word rules: one pass over the identifier stream with a word→rule map.
  std::map<std::string_view, const WordRule*> word_to_rule;
  for (const WordRule& rule : word_rules()) {
    if (!rule_applies(rule, path)) continue;
    for (const char* w : rule.words) word_to_rule.emplace(w, &rule);
  }
  for (const Token& tok : lx.idents) {
    const auto it = word_to_rule.find(tok.text);
    if (it == word_to_rule.end()) continue;
    const WordRule& rule = *it->second;
    if (allowed(lx, tok.line, rule.name)) continue;
    out.push_back({rule.name, std::string(path), tok.line,
                   "`" + std::string(tok.text) + "`: " + rule.message});
  }

  check_includes(path, content, lx, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) <
           std::tie(b.line, b.rule, b.message);
  });
  return out;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const WordRule& rule : word_rules()) v.emplace_back(rule.name);
    v.emplace_back("include-hygiene");
    return v;
  }();
  return names;
}

std::string format(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace flashqos::lint
