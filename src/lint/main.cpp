// flashqos_lint — run the contract linter over src/ (or explicit files).
//
// Exit 0 when every finding is covered by the baseline (normally: when
// there are no findings at all), 1 on new findings, 2 on usage/IO errors.
// The pre-merge gate (scripts/check.sh) runs:
//
//   flashqos_lint --root src --baseline scripts/lint_baseline.txt
//
// The committed baseline is expected to stay empty — inline allow-comments
// are the sanctioned escape hatch — but the mechanism exists so an
// unavoidable transitional violation can be landed without weakening the
// gate for everyone else. Stale baseline entries are reported (not fatal)
// so they get cleaned up.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;
using flashqos::lint::Finding;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options] [file...]\n"
      "  --root DIR       lint every .cpp/.hpp under DIR (default: src);\n"
      "                   rule scoping uses DIR-relative paths\n"
      "  --baseline FILE  accepted findings, one `rule path` per line;\n"
      "                   findings in the baseline do not fail the run\n"
      "  --list-rules     print rule names and exit\n"
      "  --help           this text\n"
      "Explicit file arguments are linted instead of --root; their rule\n"
      "scope path is the argument with any leading `src/` stripped.\n",
      argv0);
}

[[nodiscard]] bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

[[nodiscard]] std::string scope_path(std::string arg) {
  std::replace(arg.begin(), arg.end(), '\\', '/');
  if (arg.rfind("./", 0) == 0) arg.erase(0, 2);
  const std::size_t src = arg.rfind("src/");
  if (src != std::string::npos) arg.erase(0, src + 4);
  return arg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = "src";
  std::string baseline_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flashqos_lint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--root") == 0) {
      root = need_value("--root");
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = need_value("--baseline");
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const auto& name : flashqos::lint::rule_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "flashqos_lint: unknown option '%s'\n", argv[i]);
      usage(argv[0]);
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }

  // Baseline: multiset of (rule, path) pairs a finding may consume.
  std::map<std::pair<std::string, std::string>, int> baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "flashqos_lint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string rule, path;
      if (ls >> rule >> path) ++baseline[{rule, path}];
    }
  }

  // Work list: (filesystem path, rule-scope path), sorted for stable output.
  std::vector<std::pair<fs::path, std::string>> work;
  if (!files.empty()) {
    for (const auto& f : files) work.emplace_back(f, scope_path(f));
  } else {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      const std::string rel =
          fs::relative(it->path(), root).generic_string();
      work.emplace_back(it->path(), rel);
    }
    if (ec || work.empty()) {
      std::fprintf(stderr, "flashqos_lint: nothing to lint under '%s'\n",
                   root.c_str());
      return 2;
    }
  }
  std::sort(work.begin(), work.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  std::size_t checked = 0;
  std::size_t baselined = 0;
  std::vector<Finding> fresh;
  for (const auto& [path, scope] : work) {
    std::string content;
    if (!read_file(path, content)) {
      std::fprintf(stderr, "flashqos_lint: cannot read '%s'\n",
                   path.string().c_str());
      return 2;
    }
    ++checked;
    for (auto& f : flashqos::lint::lint_file(scope, content)) {
      const auto it = baseline.find({f.rule, f.path});
      if (it != baseline.end() && it->second > 0) {
        --it->second;
        ++baselined;
        continue;
      }
      fresh.push_back(std::move(f));
    }
  }

  for (const auto& f : fresh) {
    std::printf("%s\n", flashqos::lint::format(f).c_str());
  }
  for (const auto& [key, remaining] : baseline) {
    for (int k = 0; k < remaining; ++k) {
      std::fprintf(stderr,
                   "flashqos_lint: stale baseline entry: %s %s (fixed? "
                   "remove it)\n",
                   key.first.c_str(), key.second.c_str());
    }
  }

  std::printf("flashqos_lint: %zu file%s, %zu finding%s%s\n", checked,
              checked == 1 ? "" : "s", fresh.size(),
              fresh.size() == 1 ? "" : "s",
              baselined > 0 ? " (+baselined)" : "");
  return fresh.empty() ? 0 : 1;
}
