// flashqos_lint: self-contained contract linter for src/.
//
// clang-tidy is not available in every build environment this project
// targets, and generic lint rules cannot express the project-specific
// contracts anyway. This is a small token-level linter (a real lexer —
// comments, strings, char literals and raw strings are skipped, and
// identifiers match exactly, never by substring) enforcing the rules the
// codebase's determinism and performance claims rest on:
//
//   adhoc-logging    No std::cout/printf-family output outside sanctioned
//                    surfaces (CLI mains, the table renderer, exporters,
//                    contract-failure reporting). Everything else must go
//                    through src/obs, so runs stay machine-comparable.
//   hot-path-alloc   No allocation or container growth in the
//                    zero-allocation retrieval core (src/retrieval,
//                    src/core/sampler.cpp). Pre-sizing in setup phases is
//                    the idiom — each such site carries an explicit
//                    allow-comment, making "who may allocate" reviewable.
//   raw-random       No std::random_device / rand(): all randomness flows
//                    from seeded util/rng.hpp streams or replays break.
//   wall-clock       No wall-clock reads or sleeps in src/: simulated time
//                    (SimTime) is the only clock results may depend on.
//                    Self-timing of phases is opt-in via allow-comments.
//   include-hygiene  Headers start with #pragma once; quoted includes are
//                    repo-rooted (contain '/'); no duplicate includes.
//
// Any line can opt out with an inline escape hatch, on the line itself or
// the line above:
//
//   foo.push_back(x);  // flashqos-lint: allow(hot-path-alloc): grows once
//
// The allow-comment is part of the diff a reviewer sees, which is the
// point: exceptions are cheap to grant and impossible to grant silently.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace flashqos::lint {

struct Finding {
  std::string rule;
  std::string path;  // repo-relative, '/'-separated (as passed to lint_file)
  std::size_t line = 0;
  std::string message;
};

/// Lint one file's content. `path` is the virtual path rules are scoped
/// by — pass the src/-relative path (e.g. "retrieval/maxflow.cpp").
[[nodiscard]] std::vector<Finding> lint_file(std::string_view path,
                                             std::string_view content);

/// Stable list of rule names (what allow(...) accepts).
[[nodiscard]] const std::vector<std::string>& rule_names();

/// "path:line: [rule] message" — the single format everything prints.
[[nodiscard]] std::string format(const Finding& f);

}  // namespace flashqos::lint
