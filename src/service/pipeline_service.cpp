#include "service/pipeline_service.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/expect.hpp"

namespace flashqos::service {

namespace {

struct LiveItem {
  trace::TraceEvent ev;
  std::uint64_t conn = 0;
  std::uint64_t tag = 0;
};

/// Sentinel conn id for flush markers (real connection ids are small).
constexpr std::uint64_t kMarkerConn = ~std::uint64_t{0};

}  // namespace

/// The MPSC ingress, seen by the engine as a TraceCursor. Producers push
/// whole submit batches (bounded HandoffQueue — arrival order under its
/// lock IS the global ingestion order); the service thread pops them in
/// fill(), emitting the events and staging each event's (conn, tag) in a
/// side queue the sink pops back off in the same order.
///
/// The frontier promise travels THROUGH the queue, not around it: flush()
/// enqueues a marker item carrying the floor at enqueue time, and fill()
/// advances frontier() only when it consumes that marker. FIFO order
/// guarantees every event enqueued before the marker has already been
/// delivered, and the ingestion-floor clamp guarantees every event
/// enqueued after it arrives at or above the floor — so the marker's
/// floor really is a lower bound on everything not yet delivered. (An
/// atomic frontier raised at submit time would let the engine drain past
/// events still sitting in the queue.) Consuming a marker also makes
/// fill() return 0, so an engine blocked on an idle stream wakes and
/// drains up to the new frontier.
class PipelineService::LiveIngress final : public trace::TraceCursor {
 public:
  LiveIngress(trace::TraceMeta meta, std::size_t capacity)
      : meta_(std::move(meta)), q_(capacity) {}

  [[nodiscard]] const trace::TraceMeta& meta() const noexcept override {
    return meta_;
  }

  [[nodiscard]] std::size_t fill(std::span<trace::TraceEvent> out) override {
    std::size_t written = 0;
    while (written < out.size()) {
      if (stage_pos_ == stage_.size()) {
        if (written > 0) break;  // deliver what we have before blocking
        auto batch = q_.pop();
        if (!batch.has_value()) {
          done_ = true;
          return written;
        }
        if (batch->size() == 1 && batch->front().conn == kMarkerConn) {
          // Flush marker: everything before it is delivered, everything
          // after it is clamped to >= its floor — safe to promise it.
          frontier_ = std::max(frontier_, batch->front().ev.time);
          return written;  // 0: wake the engine so it drains to frontier()
        }
        if (batch->empty()) return written;  // plain wakeup, no promise
        stage_ = std::move(*batch);
        stage_pos_ = 0;
      }
      const std::size_t n =
          std::min(out.size() - written, stage_.size() - stage_pos_);
      for (std::size_t i = 0; i < n; ++i) {
        const LiveItem& item = stage_[stage_pos_ + i];
        out[written + i] = item.ev;
        routing_.push_back({item.conn, item.tag});
      }
      stage_pos_ += n;
      written += n;
    }
    return written;
  }

  void reset() override {
    FLASHQOS_EXPECT(false, "a live ingress cannot rewind");
  }

  // frontier()/exhausted() are only read on the service thread (the same
  // thread that runs fill()), so plain members suffice.
  [[nodiscard]] SimTime frontier() const noexcept override {
    return frontier_;
  }

  [[nodiscard]] bool exhausted() const noexcept override { return done_; }

  /// Producer side. push blocks while full; false iff closed.
  bool push(std::vector<LiveItem> batch) { return q_.push(std::move(batch)); }
  void close() { q_.close(); }

  /// Sink side (service thread only): the routing pair for the next
  /// outcome, in ingestion order.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> take_routing() {
    FLASHQOS_ASSERT(!routing_.empty(),
                    "outcome folded before its event was staged");
    const auto front = routing_.front();
    routing_.pop_front();
    return front;
  }

 private:
  trace::TraceMeta meta_;
  HandoffQueue<std::vector<LiveItem>> q_;
  SimTime frontier_ = 0;
  bool done_ = false;
  // Service-thread-local staging (fill/take_routing both run there).
  std::vector<LiveItem> stage_;
  std::size_t stage_pos_ = 0;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> routing_;
};

/// Adapts the engine's OutcomeSink to the service's ServedSink: reunites
/// each outcome (arriving in ingestion order) with its staged routing
/// pair, applies the verification mangle knob, and forwards.
class PipelineService::EngineSink final : public core::OutcomeSink {
 public:
  EngineSink(LiveIngress& ingress, ServedSink& sink, bool mangle)
      : ingress_(ingress), sink_(sink), mangle_(mangle) {}

  void on_outcome(std::uint64_t seq, const trace::TraceEvent& ev,
                  const core::RequestOutcome& out) override {
    FLASHQOS_ASSERT(seq == next_, "outcomes must fold in ingestion order");
    ++next_;
    Served s;
    s.seq = seq;
    std::tie(s.conn, s.tag) = ingress_.take_routing();
    s.ev = ev;
    s.out = out;
    if (mangle_) s.out.finish += 1;  // oracle-visible, deliberately wrong
    sink_.on_served(s);
  }

 private:
  LiveIngress& ingress_;
  ServedSink& sink_;
  const bool mangle_;
  std::uint64_t next_ = 0;
};

PipelineService::PipelineService(const decluster::AllocationScheme& scheme,
                                 ServiceOptions opts)
    : scheme_(scheme), opts_(std::move(opts)) {
  if (opts_.meta.name.empty()) opts_.meta.name = "live";
  if (opts_.meta.volumes == 0) opts_.meta.volumes = scheme_.devices();
  const auto diags = opts_.pipeline.validate(scheme_.devices());
  FLASHQOS_EXPECT(diags.empty(), "invalid pipeline config for service");
}

PipelineService::~PipelineService() {
  if (started_.load(std::memory_order_acquire)) (void)drain();
}

core::PipelineResult PipelineService::run(const trace::Trace& t) {
  return core::QosPipeline(scheme_, opts_.pipeline).run(t);
}

core::StreamResult PipelineService::run_stream(trace::TraceCursor& cursor) {
  core::StreamOptions so;
  so.batch_size = opts_.batch_size;
  so.horizon = opts_.horizon;
  so.keep_intervals = opts_.keep_intervals;
  return core::QosPipeline(scheme_, opts_.pipeline).run_stream(cursor, nullptr, so);
}

bool PipelineService::start(ServedSink& sink) {
  if (started_.exchange(true, std::memory_order_acq_rel)) return false;
  ingress_ = std::make_unique<LiveIngress>(opts_.meta, opts_.ingress_batches);
  engine_sink_ =
      std::make_unique<EngineSink>(*ingress_, sink, opts_.mangle_for_test);
  sink_ = &sink;
  accepting_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { service_thread(); });
  return true;
}

void PipelineService::service_thread() {
  core::StreamOptions so;
  so.batch_size = opts_.batch_size;
  so.horizon = opts_.horizon;
  so.keep_intervals = opts_.keep_intervals;
  so.sink = engine_sink_.get();
  core::QosPipeline pipe(scheme_, opts_.pipeline);
  result_.emplace(pipe.run_stream(*ingress_, nullptr, so));
}

bool PipelineService::submit(std::uint64_t conn,
                             std::span<const trace::TraceEvent> evs,
                             std::span<const std::uint64_t> tags) {
  FLASHQOS_EXPECT(evs.size() == tags.size(),
                  "submit needs one tag per event");
  if (!accepting_.load(std::memory_order_acquire)) return false;
  std::vector<LiveItem> batch;
  batch.reserve(evs.size());
  std::uint64_t clamped = 0;
  std::uint64_t folds = 0;
  const std::uint32_t tenant_count =
      static_cast<std::uint32_t>(opts_.pipeline.tenants.size());
  {
    // Clamp + enqueue are one critical section: the ingestion floor must
    // advance in exactly the order batches enter the queue, or a racing
    // producer could enqueue an earlier time after a later one and break
    // the cursor's time-sorted contract.
    const util::StdSyncPolicy::LockGuard lock(submit_mutex_);
    SimTime floor = floor_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < evs.size(); ++i) {
      LiveItem item;
      item.ev = evs[i];
      item.conn = conn;
      item.tag = tags[i];
      if (item.ev.time < floor) {
        item.ev.time = floor;  // late arrival: treated as arriving now
        ++clamped;
      }
      floor = item.ev.time;
      // An out-of-range tenant index would trip the scheduler's
      // preconditions deep inside the engine; fold it into class 0 at the
      // boundary instead (counted below — a misconfigured client, not a
      // reason to kill the daemon).
      if (item.ev.tenant != 0 &&
          (tenant_count == 0 || item.ev.tenant >= tenant_count)) {
        item.ev.tenant = 0;
        ++folds;
      }
      batch.push_back(item);
    }
    floor_.store(floor, std::memory_order_relaxed);
    if (!ingress_->push(std::move(batch))) return false;
  }
  submitted_.fetch_add(evs.size(), std::memory_order_relaxed);
  if (clamped > 0) {
    clamped_.fetch_add(clamped, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      obs::MetricRegistry::global()
          .counter("service.clamped_events")
          .inc(clamped);
    }
  }
  if (folds > 0) {
    tenant_folds_.fetch_add(folds, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      obs::MetricRegistry::global()
          .counter("service.tenant_folds")
          .inc(folds);
    }
  }
  return true;
}

void PipelineService::flush(SimTime floor) {
  if (!accepting_.load(std::memory_order_acquire)) return;
  const util::StdSyncPolicy::LockGuard lock(submit_mutex_);
  SimTime cur = floor_.load(std::memory_order_relaxed);
  if (floor <= cur) return;
  floor_.store(floor, std::memory_order_relaxed);
  LiveItem marker;
  marker.conn = kMarkerConn;
  marker.ev.time = floor;
  (void)ingress_->push({marker});  // rides the queue; see LiveIngress doc
}

core::StreamResult PipelineService::drain() {
  FLASHQOS_EXPECT(started_.load(std::memory_order_acquire),
                  "drain() before start()");
  accepting_.store(false, std::memory_order_release);
  if (ingress_ != nullptr) ingress_->close();
  if (thread_.joinable()) thread_.join();
  FLASHQOS_EXPECT(result_.has_value(), "service thread left no result");
  return *result_;
}

ServiceSetup build_service(const Config& cfg) {
  core::Experiment e = core::build_experiment_config(cfg);
  ServiceSetup s;
  s.design = std::move(e.design);
  s.scheme = std::move(e.scheme);
  s.options.pipeline = std::move(e.pipeline);
  s.options.meta.name = cfg.get("service", "name", "live");
  s.options.meta.volumes = s.scheme->devices();
  s.options.meta.report_interval = static_cast<SimTime>(
      cfg.get_double("service", "report_interval_ms", 1000.0) * 1e6);
  s.options.horizon = static_cast<SimTime>(
      cfg.get_double("service", "horizon_ms", 0.0) * 1e6);
  s.options.batch_size = static_cast<std::size_t>(
      cfg.get_int("service", "batch", 1024));
  s.options.ingress_batches = static_cast<std::size_t>(
      cfg.get_int("service", "ingress_batches", 64));
  s.options.keep_intervals = cfg.get_bool("service", "keep_intervals", false);
  return s;
}

}  // namespace flashqos::service
