// The one sanctioned embedding API: a thread-safe facade over the pipeline.
//
// service::PipelineService wraps QosPipeline (and through it the
// TenantScheduler, FaultInjector, and the retrieval facade the
// retrieval::Retriever pattern pioneered in PR 5) behind two faces:
//
//  * Embedding (single-threaded): run() / run_stream() — what examples/
//    and flashqos_sim call instead of constructing QosPipeline directly.
//    Same results, one construction point, one place to evolve the API.
//
//  * Live (multi-threaded): start() spawns a dedicated service thread that
//    runs the streaming replay engine over an MPSC ingress (a bounded
//    HandoffQueue of submit batches — the same seam PR 7's
//    BasicTenantIngress and PR 9's TraceCursor proved out). Any number of
//    producer threads submit(); verdicts come back through a ServedSink
//    in global ingestion order with full latency attribution. Admission
//    stays interval-clocked: the engine is the unmodified replay core, so
//    every guarantee the oracles audit (S = (c-1)M² + cM, Q ≤ ε, WFQ
//    floors, degraded-mode budgets) holds for live traffic verbatim.
//
// Time discipline: clients submit events stamped in simulated time. The
// service keeps one global ingestion floor — the maximum time it has
// accepted so far — and clamps any lower arrival up to it (a late request
// is treated as arriving now; service.clamped_events counts them). That
// keeps the merged multi-connection stream time-sorted, which is the
// cursor contract the streaming≡in-memory identity rests on: a
// single-connection session that submits in order is never clamped and is
// bit-identical to an in-process replay of the same stream — exactly what
// flashqos_verify --daemon proves over the loopback wire.
//
// flush(floor) promises no future event below `floor`, letting the engine
// dispatch (and answer) everything strictly below it while the stream
// stays open. drain() ends the stream: the engine drains every queued
// dispatch, outstanding verdicts flush to the sink, and the aggregate
// StreamResult comes back.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/qos_pipeline.hpp"
#include "trace/cursor.hpp"
#include "util/handoff_queue.hpp"
#include "util/sync.hpp"

namespace flashqos::service {

/// A served request: the client's routing id + opaque tag, the event as
/// ingested (post-clamp), and the full outcome (admission verdict,
/// latency attribution, Q estimate, path).
struct Served {
  std::uint64_t seq = 0;   // global ingestion sequence, strictly increasing
  std::uint64_t conn = 0;  // producer routing id (connection id; 0 embedded)
  std::uint64_t tag = 0;   // producer opaque tag, echoed verbatim
  trace::TraceEvent ev;
  core::RequestOutcome out;
};

/// Consumer of live verdicts. on_served runs on the service thread, in
/// ingestion order; implementations must be fast and never re-enter the
/// service (route, count, hand off — no blocking on the producer side).
class ServedSink {
 public:
  virtual ~ServedSink() = default;
  virtual void on_served(const Served& s) = 0;
};

struct ServiceOptions {
  core::PipelineConfig pipeline;
  /// Live-stream metadata (name, volumes, report_interval). Volumes
  /// defaults to the scheme's device count when 0.
  trace::TraceMeta meta;
  /// Fault-schedule horizon for live/streaming runs (required by the
  /// engine when the fault plan is non-empty).
  SimTime horizon = 0;
  /// Events the service thread pulls from the ingress per engine batch.
  std::size_t batch_size = 1024;
  /// Submit batches buffered ahead of the engine; producers block when
  /// it is full (bounded memory, TCP-style backpressure up the stack).
  std::size_t ingress_batches = 64;
  /// Keep per-reporting-interval reports in the final StreamResult.
  bool keep_intervals = false;
  /// Verification-only: perturb every served finish time by one
  /// nanosecond. The daemon oracle flips this to prove it would catch a
  /// service that diverges from the in-process replay.
  bool mangle_for_test = false;
};

class PipelineService {
 public:
  /// `scheme` must outlive the service (same borrow rule as QosPipeline).
  PipelineService(const decluster::AllocationScheme& scheme,
                  ServiceOptions opts);
  ~PipelineService();
  PipelineService(const PipelineService&) = delete;
  PipelineService& operator=(const PipelineService&) = delete;

  // ---- embedding API ------------------------------------------------------

  /// Full in-memory replay (what flashqos_sim and the examples call).
  [[nodiscard]] core::PipelineResult run(const trace::Trace& t);

  /// Streaming replay over a caller-supplied cursor; forwards to
  /// QosPipeline::run_stream with this service's horizon/batch options.
  [[nodiscard]] core::StreamResult run_stream(trace::TraceCursor& cursor);

  // ---- live API -----------------------------------------------------------

  /// Spawn the service thread. False if already started.
  bool start(ServedSink& sink);

  /// Enqueue a batch of events for routing id `conn` (tags[i] pairs with
  /// evs[i]). Blocks while the ingress is full; false iff the service is
  /// not accepting (never started, draining, or drained) — the batch is
  /// dropped then. Thread-safe.
  bool submit(std::uint64_t conn, std::span<const trace::TraceEvent> evs,
              std::span<const std::uint64_t> tags);

  /// Raise the ingestion floor: no future submit carries a time below
  /// `floor` (lower ones would clamp). Wakes the engine so everything
  /// strictly below the floor dispatches. Thread-safe.
  void flush(SimTime floor);

  /// Stop accepting, close the ingress, drain the engine to the end of
  /// the stream, join the service thread, and return the aggregate
  /// result. Idempotent (later calls return the stored result).
  core::StreamResult drain();

  [[nodiscard]] bool accepting() const noexcept {
    return accepting_.load(std::memory_order_acquire);
  }

  /// Events whose time was raised to the ingestion floor so far.
  [[nodiscard]] std::uint64_t clamped_events() const noexcept {
    return clamped_.load(std::memory_order_relaxed);
  }

  /// Events accepted into the ingress so far.
  [[nodiscard]] std::uint64_t submitted_events() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }

  /// Events whose tenant index was out of range and got folded to class 0.
  [[nodiscard]] std::uint64_t tenant_folds() const noexcept {
    return tenant_folds_.load(std::memory_order_relaxed);
  }

  /// Current ingestion floor (monotone).
  [[nodiscard]] SimTime floor() const noexcept {
    return floor_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const decluster::AllocationScheme& scheme() const noexcept {
    return scheme_;
  }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return opts_;
  }

 private:
  class LiveIngress;
  class EngineSink;

  void service_thread();

  const decluster::AllocationScheme& scheme_;
  ServiceOptions opts_;

  std::unique_ptr<LiveIngress> ingress_;
  std::unique_ptr<EngineSink> engine_sink_;
  ServedSink* sink_ = nullptr;
  std::thread thread_;

  util::StdSyncPolicy::Mutex submit_mutex_;  // serializes clamp + enqueue
  std::atomic<bool> started_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<SimTime> floor_{0};
  std::atomic<std::uint64_t> clamped_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> tenant_folds_{0};
  std::optional<core::StreamResult> result_;
};

/// Build a PipelineService setup straight from an experiment config: the
/// [design] and [pipeline] sections materialize exactly as
/// build_experiment() would (validate() enforced); the [workload] section
/// is ignored — a daemon's workload arrives over the wire. The scheme is
/// owned by the returned bundle.
struct ServiceSetup {
  std::unique_ptr<design::BlockDesign> design;
  std::unique_ptr<decluster::AllocationScheme> scheme;
  ServiceOptions options;
};
[[nodiscard]] ServiceSetup build_service(const Config& cfg);

}  // namespace flashqos::service
