// Config parsing, the MSR-Cambridge CSV trace reader, and the
// config-driven experiment builder.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "trace/msr_format.hpp"
#include "util/config.hpp"

namespace flashqos {
namespace {

TEST(Config, ParsesSectionsAndTypes) {
  std::istringstream in(R"(
# comment
[alpha]
name = hello world   ; trailing comment
count = 42
ratio = 0.5
flag = true

[beta]
fail = 1 2 3
fail = 4 5 6
)");
  const auto cfg = Config::parse(in);
  EXPECT_EQ(cfg.get("alpha", "name"), "hello world");
  EXPECT_EQ(cfg.get_int("alpha", "count", 0), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("alpha", "ratio", 0.0), 0.5);
  EXPECT_TRUE(cfg.get_bool("alpha", "flag", false));
  EXPECT_EQ(cfg.all("beta", "fail").size(), 2u);
  EXPECT_EQ(cfg.all("beta", "fail")[1], "4 5 6");
  EXPECT_EQ(cfg.sections(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Config, DefaultsWhenMissing) {
  std::istringstream in("[s]\nk = v\n");
  const auto cfg = Config::parse(in);
  EXPECT_FALSE(cfg.has("s", "absent"));
  EXPECT_EQ(cfg.get("s", "absent", "dflt"), "dflt");
  EXPECT_EQ(cfg.get_int("other", "x", -7), -7);
  EXPECT_FALSE(cfg.get_bool("s", "absent", false));
}

TEST(Config, RejectsMalformedInput) {
  std::istringstream bad1("[unterminated\n");
  EXPECT_THROW(Config::parse(bad1), std::runtime_error);
  std::istringstream bad2("[s]\nno-equals-sign\n");
  EXPECT_THROW(Config::parse(bad2), std::runtime_error);
  std::istringstream bad3("[s]\nx = notanumber\n");
  const auto cfg = Config::parse(bad3);
  EXPECT_THROW((void)cfg.get_int("s", "x", 0), std::runtime_error);
  EXPECT_THROW((void)cfg.get_bool("s", "x", false), std::runtime_error);
}

TEST(MsrFormat, ParsesAndRebasesTimestamps) {
  std::istringstream in(
      "128166372003061629,web,0,Read,8192,8192,151\n"
      "128166372016382155,web,1,Write,16384,16384,303\n"
      "128166372004001000,web,0,Read,0,4096,100\n");
  const auto t = trace::read_msr_csv(in, "msr");
  ASSERT_EQ(t.events.size(), 3u);
  EXPECT_TRUE(trace::valid_trace(t));
  EXPECT_EQ(t.events[0].time, 0) << "rebased to zero";
  EXPECT_EQ(t.events[0].block, 1u) << "offset 8192 / 8 KB";
  EXPECT_TRUE(t.events[0].is_read);
  EXPECT_EQ(t.events[1].block, 0u);
  EXPECT_EQ(t.events[1].size_blocks, 1u) << "4 KB rounds up to one block";
  EXPECT_FALSE(t.events[2].is_read);
  EXPECT_EQ(t.events[2].size_blocks, 2u);
  EXPECT_EQ(t.volumes, 2u);
}

TEST(MsrFormat, ReadsOnlyFilterAndVolumeOverride) {
  std::istringstream in(
      "100,h,5,Read,0,8192,0\n"
      "200,h,6,Write,8192,8192,0\n");
  trace::MsrReadOptions opts;
  opts.reads_only = true;
  opts.volumes = 3;
  const auto t = trace::read_msr_csv(in, "x", opts);
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].device, 5u % 3u);
}

TEST(MsrFormat, RoundTripsThroughWriter) {
  trace::Trace t;
  t.name = "rt";
  t.volumes = 2;
  t.report_interval = kSecond;
  t.events = {{.time = 0, .block = 3, .device = 0, .size_blocks = 1, .is_read = true},
              {.time = kMillisecond, .block = 7, .device = 1, .size_blocks = 2,
               .is_read = false}};
  std::stringstream ss;
  trace::write_msr_csv(t, ss);
  const auto back = trace::read_msr_csv(ss, "rt");
  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.events[0].block, 3u);
  EXPECT_EQ(back.events[1].block, 7u);
  EXPECT_EQ(back.events[1].size_blocks, 2u);
  EXPECT_FALSE(back.events[1].is_read);
}

TEST(MsrFormat, RejectsMalformedRows) {
  std::istringstream in("not,enough\n");
  EXPECT_THROW(trace::read_msr_csv(in, "x"), std::runtime_error);
  std::istringstream in2("abc,h,0,Read,0,8192,0\n");
  EXPECT_THROW(trace::read_msr_csv(in2, "x"), std::runtime_error);
}

Config config_from(const std::string& text) {
  std::istringstream in(text);
  return Config::parse(in);
}

TEST(Experiment, BuildsDefaultNineThreeOne) {
  const auto cfg = config_from("[workload]\nkind = synthetic\ntotal_requests = 50\n");
  const auto e = core::build_experiment(cfg);
  EXPECT_EQ(e.design->name(), "(9,3,1)");
  EXPECT_EQ(e.scheme->buckets(), 36u);
  EXPECT_EQ(e.workload.events.size(), 50u);
}

TEST(Experiment, DesignShorthands) {
  for (const auto& [spec, points] :
       std::vector<std::pair<std::string, std::uint32_t>>{
           {"sts:15", 15}, {"ag:4", 16}, {"pg:4", 21}, {"td:3,5", 15},
           {"kts:15", 15}, {"(13,3,1)", 13}}) {
    const auto cfg = config_from("[design]\nname = " + spec +
                                 "\n[workload]\nkind = synthetic\n"
                                 "total_requests = 10\n");
    const auto e = core::build_experiment(cfg);
    EXPECT_EQ(e.design->points(), points) << spec;
  }
}

TEST(Experiment, RejectsUnknownNames) {
  EXPECT_THROW(core::build_experiment(config_from("[design]\nname = bogus\n")),
               std::runtime_error);
  EXPECT_THROW(core::build_experiment(
                   config_from("[pipeline]\nretrieval = sideways\n")),
               std::runtime_error);
  EXPECT_THROW(
      core::build_experiment(config_from("[workload]\nkind = mystery\n")),
      std::runtime_error);
}

TEST(Experiment, ParsesFailures) {
  const auto cfg = config_from(
      "[workload]\nkind = synthetic\ntotal_requests = 10\n"
      "[failures]\nfail = 3 10.0 50.0\nfail = 4 0.0\n");
  const auto e = core::build_experiment(cfg);
  ASSERT_EQ(e.pipeline.faults.outages.size(), 2u);
  EXPECT_EQ(e.pipeline.faults.outages[0].device, 3u);
  EXPECT_EQ(e.pipeline.faults.outages[0].fail_at, 10 * kMillisecond);
  EXPECT_EQ(e.pipeline.faults.outages[0].recover_at, 50 * kMillisecond);
  EXPECT_EQ(e.pipeline.faults.outages[1].recover_at,
            core::DeviceFailure::kNeverRecovers);
}

TEST(Experiment, StatisticalAdmissionSamplesPkTable) {
  const auto cfg = config_from(
      "[pipeline]\nadmission = statistical\nepsilon = 0.01\nsamples = 100\n"
      "p_table_max_k = 12\n[workload]\nkind = synthetic\ntotal_requests = 10\n");
  const auto e = core::build_experiment(cfg);
  EXPECT_EQ(e.pipeline.p_table.size(), 13u);
  EXPECT_DOUBLE_EQ(e.pipeline.epsilon, 0.01);
}

TEST(Experiment, RunsEndToEnd) {
  const auto cfg = config_from(
      "[workload]\nkind = synthetic\nrequests_per_interval = 5\n"
      "total_requests = 500\n");
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.outcomes.size(), 500u);
  EXPECT_EQ(r.deadline_violations, 0u);
}

TEST(Experiment, TemplateParsesAndRuns) {
  auto text = core::experiment_template();
  // Shrink the template's workload so the test stays fast.
  text += "\n[workload]\nkind = synthetic\ntotal_requests = 100\n";
  std::istringstream in(text);
  const auto cfg = Config::parse(in);
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.outcomes.size(), 100u);
}

}  // namespace
}  // namespace flashqos
