// Tests for the service facade (service::PipelineService): the embedding
// API is result-identical to constructing QosPipeline directly, the live
// API serves a submitted stream bit-identically to an in-process replay,
// the ingestion-floor clamp and tenant-fold accounting work, flush()
// releases verdicts mid-session (the marker-carried frontier), and drain
// is idempotent.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "service/pipeline_service.hpp"
#include "trace/cursor.hpp"
#include "trace/synthetic.hpp"
#include "verify/result_compare.hpp"

namespace flashqos::service {
namespace {

trace::Trace small_trace() {
  trace::SyntheticParams p;
  p.bucket_pool = 36;
  p.requests_per_interval = 4;
  p.total_requests = 400;
  p.seed = 11;
  return trace::generate_synthetic(p);
}

core::PipelineConfig basic_config() {
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kOnline;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kModulo;
  return cfg;
}

ServiceOptions options_for(const trace::Trace& t) {
  ServiceOptions so;
  so.pipeline = basic_config();
  so.meta.name = t.name;
  so.meta.volumes = t.volumes;
  so.meta.report_interval = t.report_interval;
  so.keep_intervals = true;
  return so;
}

/// Collects Served verdicts; on_served runs on the service thread, reads
/// happen after drain() (or under the lock for the mid-session test).
struct CollectSink final : ServedSink {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Served> served;

  void on_served(const Served& s) override {
    const std::lock_guard<std::mutex> lock(mutex);
    served.push_back(s);
    cv.notify_all();
  }

  std::size_t count() {
    const std::lock_guard<std::mutex> lock(mutex);
    return served.size();
  }
};

TEST(PipelineService, RunMatchesDirectPipeline) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  const auto t = small_trace();

  core::QosPipeline direct(scheme, basic_config());
  const auto want = direct.run(t);
  const auto got = PipelineService(scheme, options_for(t)).run(t);

  ASSERT_EQ(want.outcomes.size(), got.outcomes.size());
  for (std::size_t i = 0; i < want.outcomes.size(); ++i) {
    EXPECT_EQ(want.outcomes[i].finish, got.outcomes[i].finish) << i;
    EXPECT_EQ(want.outcomes[i].device, got.outcomes[i].device) << i;
  }
  EXPECT_EQ(want.deadline_violations, got.deadline_violations);
  EXPECT_EQ(want.overall.avg_response_ms, got.overall.avg_response_ms);
  EXPECT_EQ(want.overall.max_response_ms, got.overall.max_response_ms);
  ASSERT_EQ(want.intervals.size(), got.intervals.size());
}

TEST(PipelineService, RunStreamMatchesRun) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  const auto t = small_trace();

  PipelineService svc(scheme, options_for(t));
  const auto want = svc.run(t);
  trace::VectorCursor cursor(t);
  const auto got = svc.run_stream(cursor);
  std::string why;
  EXPECT_TRUE(verify::stream_result_matches(want, got, &why)) << why;
}

TEST(PipelineService, LiveSubmitIsIdenticalToInProcessReplay) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  const auto t = small_trace();

  const auto want = PipelineService(scheme, options_for(t)).run(t);

  PipelineService svc(scheme, options_for(t));
  CollectSink sink;
  ASSERT_TRUE(svc.start(sink));
  EXPECT_FALSE(svc.start(sink));  // second start refused
  // Submit in uneven batches to exercise the batching seams.
  std::vector<std::uint64_t> tags(t.events.size());
  for (std::size_t i = 0; i < tags.size(); ++i) tags[i] = i;
  std::size_t off = 0;
  std::size_t step = 1;
  while (off < t.events.size()) {
    const std::size_t n = std::min(step, t.events.size() - off);
    ASSERT_TRUE(svc.submit(7, {t.events.data() + off, n},
                           {tags.data() + off, n}));
    off += n;
    step = step * 2 + 1;
  }
  const auto got = svc.drain();

  EXPECT_EQ(svc.submitted_events(), t.events.size());
  EXPECT_EQ(svc.clamped_events(), 0u);  // in-order stream never clamps
  std::string why;
  EXPECT_TRUE(verify::stream_result_matches(want, got, &why)) << why;

  ASSERT_EQ(sink.served.size(), want.outcomes.size());
  for (std::size_t i = 0; i < sink.served.size(); ++i) {
    const auto& s = sink.served[i];
    EXPECT_EQ(s.seq, i);
    EXPECT_EQ(s.conn, 7u);
    EXPECT_EQ(s.tag, i);
    EXPECT_EQ(s.out.arrival, want.outcomes[i].arrival) << i;
    EXPECT_EQ(s.out.dispatch, want.outcomes[i].dispatch) << i;
    EXPECT_EQ(s.out.start, want.outcomes[i].start) << i;
    EXPECT_EQ(s.out.finish, want.outcomes[i].finish) << i;
    EXPECT_EQ(s.out.device, want.outcomes[i].device) << i;
    EXPECT_EQ(s.out.path, want.outcomes[i].path) << i;
  }
}

TEST(PipelineService, LateArrivalsClampToTheIngestionFloor) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  ServiceOptions so;
  so.pipeline = basic_config();
  so.meta.name = "clamp";
  PipelineService svc(scheme, so);
  CollectSink sink;
  ASSERT_TRUE(svc.start(sink));

  trace::TraceEvent late;
  late.block = 1;
  late.time = from_ms(2.0);
  const std::uint64_t tag0 = 0;
  ASSERT_TRUE(svc.submit(1, {&late, 1}, {&tag0, 1}));
  late.block = 2;
  late.time = from_ms(1.0);  // below the floor: treated as arriving now
  const std::uint64_t tag1 = 1;
  ASSERT_TRUE(svc.submit(1, {&late, 1}, {&tag1, 1}));
  (void)svc.drain();

  EXPECT_EQ(svc.clamped_events(), 1u);
  EXPECT_EQ(svc.floor(), from_ms(2.0));
  ASSERT_EQ(sink.served.size(), 2u);
  EXPECT_EQ(sink.served[0].out.arrival, from_ms(2.0));
  EXPECT_EQ(sink.served[1].out.arrival, from_ms(2.0));  // clamped up
  EXPECT_EQ(sink.served[1].ev.time, from_ms(2.0));
}

TEST(PipelineService, OutOfRangeTenantsFoldToClassZero) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  ServiceOptions so;
  so.pipeline = basic_config();
  so.meta.name = "folds";
  PipelineService svc(scheme, so);
  CollectSink sink;
  ASSERT_TRUE(svc.start(sink));

  trace::TraceEvent ev;
  ev.block = 3;
  ev.tenant = 99;  // no tenant table configured: only class 0 exists
  const std::uint64_t tag = 0;
  ASSERT_TRUE(svc.submit(1, {&ev, 1}, {&tag, 1}));
  (void)svc.drain();

  EXPECT_EQ(svc.tenant_folds(), 1u);
  ASSERT_EQ(sink.served.size(), 1u);
  EXPECT_EQ(sink.served[0].ev.tenant, 0u);
  EXPECT_EQ(sink.served[0].out.tenant, 0u);
}

TEST(PipelineService, DrainIsIdempotentAndSubmitAfterDrainRefused) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  ServiceOptions so;
  so.pipeline = basic_config();
  so.meta.name = "drain";
  PipelineService svc(scheme, so);
  CollectSink sink;
  ASSERT_TRUE(svc.start(sink));

  trace::TraceEvent ev;
  ev.block = 5;
  const std::uint64_t tag = 0;
  ASSERT_TRUE(svc.submit(1, {&ev, 1}, {&tag, 1}));
  const auto first = svc.drain();
  const auto second = svc.drain();
  EXPECT_EQ(first.requests, 1u);
  EXPECT_EQ(second.requests, first.requests);
  EXPECT_EQ(second.overall.avg_response_ms, first.overall.avg_response_ms);

  EXPECT_FALSE(svc.accepting());
  EXPECT_FALSE(svc.submit(1, {&ev, 1}, {&tag, 1}));
  EXPECT_EQ(svc.submitted_events(), 1u);  // the refused batch was dropped
}

TEST(PipelineService, FlushReleasesVerdictsMidSession) {
  // The marker-carried frontier: flush(floor) must let everything strictly
  // below the floor dispatch and answer while the stream stays open — no
  // drain, no further submits.
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  ServiceOptions so;
  so.pipeline = basic_config();
  so.meta.name = "flush";
  PipelineService svc(scheme, so);
  CollectSink sink;
  ASSERT_TRUE(svc.start(sink));

  trace::TraceEvent ev;
  ev.block = 9;
  ev.time = 0;
  const std::uint64_t tag = 42;
  ASSERT_TRUE(svc.submit(1, {&ev, 1}, {&tag, 1}));
  svc.flush(so.pipeline.qos_interval * 4);

  {
    std::unique_lock<std::mutex> lock(sink.mutex);
    const bool served = sink.cv.wait_for(
        lock, std::chrono::seconds(10), [&] { return !sink.served.empty(); });
    ASSERT_TRUE(served) << "flush did not release the verdict";
    EXPECT_EQ(sink.served[0].tag, 42u);
  }
  EXPECT_TRUE(svc.accepting()) << "session must still be open";
  (void)svc.drain();
  EXPECT_EQ(sink.count(), 1u);
}

TEST(PipelineService, BuildServiceFromConfig) {
  std::istringstream in(R"(
[design]
name = (9,3,1)
[pipeline]
retrieval = online
admission = deterministic
[service]
batch = 256
ingress_batches = 8
)");
  const auto setup = build_service(Config::parse(in));
  ASSERT_NE(setup.scheme, nullptr);
  EXPECT_EQ(setup.scheme->devices(), 9u);
  EXPECT_EQ(setup.options.batch_size, 256u);
  EXPECT_EQ(setup.options.ingress_batches, 8u);
}

}  // namespace
}  // namespace flashqos::service
