// Unit + property tests for src/retrieval: max-flow correctness against
// brute force, DTR validity and optimality on guaranteed sizes, schedule
// validation, and the online retriever's FCFS/earliest-finish semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "retrieval/dtr.hpp"
#include "retrieval/maxflow.hpp"
#include "retrieval/online.hpp"
#include "util/rng.hpp"

namespace flashqos::retrieval {
namespace {

using decluster::DesignTheoretic;

/// Exhaustive minimum rounds by trying every replica choice (exponential;
/// only for tiny batches).
std::uint32_t brute_force_min_rounds(std::span<const BucketId> batch,
                                     const decluster::AllocationScheme& scheme) {
  const std::size_t b = batch.size();
  if (b == 0) return 0;
  const std::uint32_t c = scheme.copies();
  std::uint32_t best = static_cast<std::uint32_t>(b);
  std::vector<std::uint32_t> choice(b, 0);
  std::vector<std::uint32_t> load(scheme.devices());
  for (;;) {
    std::fill(load.begin(), load.end(), 0U);
    for (std::size_t i = 0; i < b; ++i) {
      ++load[scheme.replicas(batch[i])[choice[i]]];
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
    // Odometer increment over the choice vector.
    std::size_t pos = 0;
    while (pos < b && ++choice[pos] == c) {
      choice[pos] = 0;
      ++pos;
    }
    if (pos == b) break;
  }
  return best;
}

TEST(MaxFlow, SimpleNetwork) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 3);
  mf.add_edge(0, 2, 2);
  mf.add_edge(1, 2, 1);
  mf.add_edge(1, 3, 2);
  mf.add_edge(2, 3, 4);
  EXPECT_EQ(mf.run(0, 3), 5);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 5);
  mf.add_edge(2, 3, 5);
  EXPECT_EQ(mf.run(0, 3), 0);
}

TEST(MaxFlow, FlowOnEdgesIsConsistent) {
  MaxFlow mf(3);
  const auto e1 = mf.add_edge(0, 1, 7);
  const auto e2 = mf.add_edge(1, 2, 4);
  EXPECT_EQ(mf.run(0, 2), 4);
  EXPECT_EQ(mf.flow_on(e1), 4);
  EXPECT_EQ(mf.flow_on(e2), 4);
}

TEST(OptimalSchedule, EmptyBatch) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d);
  const auto s = optimal_schedule({}, scheme);
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_TRUE(s.empty());
}

TEST(OptimalSchedule, PaperNineBucketExample) {
  // Paper §III-B Fig. 3: these 9 requests on the (9,3,1) design are
  // non-conflicting and retrieve in a single access.
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  // The figure lists replica triples; find the bucket ids whose tuples match.
  const std::vector<std::array<DeviceId, 3>> triples = {
      {0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {3, 8, 1}, {4, 8, 0},
      {5, 7, 0}, {6, 0, 3}, {7, 0, 5}, {8, 1, 3}};
  std::vector<BucketId> batch;
  for (const auto& t : triples) {
    for (BucketId b = 0; b < scheme.buckets(); ++b) {
      const auto reps = scheme.replicas(b);
      if (reps[0] == t[0] && reps[1] == t[1] && reps[2] == t[2]) {
        batch.push_back(b);
        break;
      }
    }
  }
  ASSERT_EQ(batch.size(), 9u) << "paper's triples must all exist in the table";
  const auto s = optimal_schedule(batch, scheme);
  EXPECT_EQ(s.rounds, 1u);
  EXPECT_TRUE(valid_schedule(batch, scheme, s));
}

TEST(OptimalSchedule, SerializesUnreplicatedConflicts) {
  // Mirrored groups: 4 requests to buckets of the same group need 2 rounds
  // on a 3-way group.
  const decluster::Raid1Mirrored scheme(9, 3, 36);
  const std::vector<BucketId> batch{0, 3, 6, 9};  // all group 0
  const auto s = optimal_schedule(batch, scheme);
  EXPECT_EQ(s.rounds, 2u);
  EXPECT_TRUE(valid_schedule(batch, scheme, s));
}

TEST(OptimalSchedule, MatchesBruteForceOnRandomBatches) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(7);  // brute force is c^k
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto s = optimal_schedule(batch, scheme);
    EXPECT_TRUE(valid_schedule(batch, scheme, s));
    EXPECT_EQ(s.rounds, brute_force_min_rounds(batch, scheme))
        << "trial " << trial;
  }
}

TEST(OptimalSchedule, MatchesBruteForceOnChained) {
  const decluster::Raid1Chained scheme(9, 3, 36);
  Rng rng(101);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 1 + rng.below(7);
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto s = optimal_schedule(batch, scheme);
    EXPECT_EQ(s.rounds, brute_force_min_rounds(batch, scheme));
  }
}

TEST(Dtr, ValidOnRandomBatches) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t k = 1 + rng.below(30);
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto s = dtr_schedule(batch, scheme);
    EXPECT_TRUE(valid_schedule(batch, scheme, s));
    // DTR can never beat the optimum.
    EXPECT_GE(s.rounds, design::optimal_accesses(k, scheme.devices()));
  }
}

TEST(Dtr, PrimaryFirstInitialMapping) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  // A single request with no conflicts stays on its primary.
  const std::vector<BucketId> batch{7};
  const auto s = dtr_schedule(batch, scheme);
  EXPECT_EQ(s.assignments[0].device, scheme.primary(7));
  EXPECT_EQ(s.rounds, 1u);
}

TEST(Retrieve, AlwaysOptimalRounds) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  Rng rng(15);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t k = 1 + rng.below(20);
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto combined = retrieve(batch, scheme);
    const auto exact = optimal_schedule(batch, scheme);
    EXPECT_TRUE(valid_schedule(batch, scheme, combined));
    EXPECT_EQ(combined.rounds, exact.rounds) << "trial " << trial;
  }
}

// The paper's deterministic guarantee, as a property: any batch of size
// <= S = (c-1)M² + cM schedules in <= M rounds on the rotated design.
class GuaranteeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GuaranteeSweep, AnyBatchWithinLimitMeetsAccessBound) {
  // The guarantee quantifies over *sets* of buckets (a bucket requested
  // more than c·M times trivially cannot fit), hence distinct sampling.
  const std::uint32_t m = GetParam();
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  const auto s_limit = design::guarantee_buckets(scheme.copies(), m);
  Rng rng(1000 + m);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t k = 1 + rng.below(s_limit);
    std::vector<BucketId> batch;
    for (const auto b : rng.sample_without_replacement(scheme.buckets(), k)) {
      batch.push_back(static_cast<BucketId>(b));
    }
    const auto s = retrieve(batch, scheme);
    EXPECT_LE(s.rounds, m) << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AccessBudgets, GuaranteeSweep, ::testing::Values(1u, 2u, 3u));

TEST(GuaranteeSweep, HoldsFor1331Design) {
  const auto d = design::make_13_3_1();
  const DesignTheoretic scheme(d, true);
  Rng rng(2024);
  for (std::uint32_t m = 1; m <= 2; ++m) {
    const auto s_limit = design::guarantee_buckets(3, m);
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t k = 1 + rng.below(s_limit);
      std::vector<BucketId> batch;
      for (const auto b : rng.sample_without_replacement(scheme.buckets(), k)) {
        batch.push_back(static_cast<BucketId>(b));
      }
      EXPECT_LE(retrieve(batch, scheme).rounds, m);
    }
  }
}

TEST(ValidSchedule, RejectsWrongDevice) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  const std::vector<BucketId> batch{0};
  Schedule s;
  s.assignments = {{8, 0}};  // device 8 does not hold bucket 0
  s.rounds = 1;
  EXPECT_FALSE(valid_schedule(batch, scheme, s));
}

TEST(ValidSchedule, RejectsSlotCollision) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  const std::vector<BucketId> batch{0, 36 / 36};  // two buckets sharing device 0? use 0 and 3
  const std::vector<BucketId> b2{0, 3};           // (0,1,2) and (0,3,6): share device 0
  Schedule s;
  s.assignments = {{0, 0}, {0, 0}};
  s.rounds = 1;
  EXPECT_FALSE(valid_schedule(b2, scheme, s));
}

TEST(OnlineRetriever, IdleDeviceServesImmediately) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  OnlineRetriever r(scheme, kPageReadLatency);
  const auto dec = r.submit(0, 1000);
  EXPECT_EQ(dec.start, 1000);
  EXPECT_EQ(dec.finish, 1000 + kPageReadLatency);
}

TEST(OnlineRetriever, PrefersEarliestFinishReplica) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  OnlineRetriever r(scheme, kPageReadLatency);
  // Bucket 0 lives on (0,1,2). Occupy devices 0 and 1 with direct requests.
  (void)r.submit(0, 0);  // goes to device 0
  (void)r.submit(1, 0);  // bucket 1 = rotation (1,2,0) -> device 1
  const auto dec = r.submit(0, 1);
  EXPECT_EQ(dec.device, 2u);  // only idle replica of (0,1,2)
  EXPECT_EQ(dec.start, 1);
}

TEST(OnlineRetriever, QueuesWhenAllReplicasBusy) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  OnlineRetriever r(scheme, kPageReadLatency);
  (void)r.submit(0, 0);
  (void)r.submit(1, 0);
  (void)r.submit(2, 0);  // (2,0,1) -> device 2
  const auto dec = r.submit(0, 1);
  EXPECT_EQ(dec.start, kPageReadLatency);  // earliest finishing replica
  EXPECT_EQ(dec.finish, 2 * kPageReadLatency);
}

TEST(OnlineRetriever, BatchOfFiveFitsOneAccess) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  OnlineRetriever r(scheme, kPageReadLatency);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    r.reset();
    std::vector<BucketId> batch;
    for (const auto b : rng.sample_without_replacement(scheme.buckets(), 5)) {
      batch.push_back(static_cast<BucketId>(b));
    }
    const auto decisions = r.submit_batch(batch, 0);
    for (const auto& dec : decisions) {
      EXPECT_EQ(dec.start, 0) << "guaranteed batch must start immediately";
      EXPECT_EQ(dec.finish, kPageReadLatency);
    }
  }
}

TEST(OnlineRetriever, BatchRespectsBusyDevices) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  OnlineRetriever r(scheme, kPageReadLatency);
  (void)r.submit(0, 0);  // device 0 busy until L
  const std::vector<BucketId> batch{0, 3};  // both have primary 0
  const auto decisions = r.submit_batch(batch, 10);
  // Batch scheduling spreads the two conflicting primaries over distinct
  // devices; a request landing on the busy device 0 queues behind the
  // in-flight read, any other starts at the batch arrival.
  EXPECT_NE(decisions[0].device, decisions[1].device);
  for (const auto& dec : decisions) {
    if (dec.device == 0) {
      EXPECT_EQ(dec.start, kPageReadLatency);
    } else {
      EXPECT_EQ(dec.start, 10);
    }
    EXPECT_EQ(dec.finish, dec.start + kPageReadLatency);
  }
}

TEST(OnlineRetriever, HorizonTracksLatestFinish) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  OnlineRetriever r(scheme, kPageReadLatency);
  EXPECT_EQ(r.horizon(), 0);
  (void)r.submit(5, 100);
  EXPECT_EQ(r.horizon(), 100 + kPageReadLatency);
  r.reset();
  EXPECT_EQ(r.horizon(), 0);
}

// Theorem 1: with no backlog, if OLR(k) == DTR(k) then online finishes no
// later than the interval-aligned schedule.
TEST(Theorem1, OnlineNeverLaterWhenRoundsEqual) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  Rng rng(321);
  const SimTime T = kBaseInterval;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(10);
    std::vector<BucketId> batch;
    std::vector<SimTime> arrivals;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
      arrivals.push_back(static_cast<SimTime>(rng.below(T)));
    }
    std::sort(arrivals.begin(), arrivals.end());

    // Interval-aligned: whole batch dispatched at T, finishing at
    // T + rounds * L.
    const auto aligned = retrieve(batch, scheme);
    const SimTime aligned_finish = T + aligned.rounds * kPageReadLatency;

    // Online: serve at arrival times; OLR(k) is the deepest per-device
    // queue the online policy built.
    OnlineRetriever online(scheme, kPageReadLatency);
    std::vector<std::uint32_t> per_device(scheme.devices(), 0);
    SimTime online_finish = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const auto dec = online.submit(batch[i], arrivals[i]);
      ++per_device[dec.device];
      online_finish = std::max(online_finish, dec.finish);
    }
    const std::uint32_t olr =
        *std::max_element(per_device.begin(), per_device.end());

    // Theorem 1's premise: OLR(k) == DTR(k). (When online used more
    // accesses the theorem says nothing.)
    if (olr == aligned.rounds) {
      EXPECT_LE(online_finish, aligned_finish)
          << "online must finish no later than interval-aligned (trial "
          << trial << ")";
    }
  }
}

}  // namespace
}  // namespace flashqos::retrieval

namespace flashqos::retrieval {
namespace {

TEST(IntegratedSolver, MatchesOptimalScheduleRounds) {
  const auto d = design::make_13_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  Rng rng(808);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t k = 1 + rng.below(45);
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto integrated = integrated_optimal_schedule(batch, scheme);
    const auto reference = optimal_schedule(batch, scheme);
    EXPECT_EQ(integrated.rounds, reference.rounds) << "trial " << trial;
    EXPECT_TRUE(valid_schedule(batch, scheme, integrated));
  }
}

TEST(IntegratedSolver, EmptyBatch) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  const auto s = integrated_optimal_schedule({}, scheme);
  EXPECT_EQ(s.rounds, 0u);
}

TEST(IntegratedSolver, WorksOnBaselineSchemes) {
  const decluster::Raid1Mirrored scheme(9, 3, 36);
  Rng rng(809);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 1 + rng.below(25);
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto integrated = integrated_optimal_schedule(batch, scheme);
    EXPECT_EQ(integrated.rounds, optimal_schedule(batch, scheme).rounds);
    EXPECT_TRUE(valid_schedule(batch, scheme, integrated));
  }
}

TEST(MaxFlow, RaiseCapacityFindsIncrementalFlow) {
  MaxFlow mf(3);
  const auto bottleneck = mf.add_edge(0, 1, 1);
  mf.add_edge(1, 2, 10);
  EXPECT_EQ(mf.run(0, 2), 1);
  EXPECT_EQ(mf.raise_capacity_and_rerun(bottleneck, 4, 0, 2), 4);
  EXPECT_EQ(mf.flow_on(bottleneck), 5);
}

}  // namespace
}  // namespace flashqos::retrieval
