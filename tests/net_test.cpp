// Wire-protocol and accept-seam tests for flashqosd's data plane:
// frame round-trip properties over randomized batches, torn/partial
// reads, short writes through send_all, oversized-frame rejection,
// malformed frames counted in net.parse_errors, the acceptor
// stop/restart/leak regressions (the PR-8 HttpExporter defects, now fixed
// once in net::Acceptor), and a connection-manager stress run that TSan
// can chew on.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "net/acceptor.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "service/pipeline_service.hpp"
#include "util/time.hpp"

namespace flashqos::net {
namespace {

std::vector<WireEvent> random_events(std::mt19937& rng, std::size_t n) {
  std::uniform_int_distribution<std::uint64_t> u64;
  std::uniform_int_distribution<std::uint32_t> u32;
  std::vector<WireEvent> evs(n);
  for (auto& e : evs) {
    e.tag = u64(rng);
    e.time = static_cast<std::int64_t>(u64(rng) >> 1);
    e.block = u64(rng);
    e.device = u32(rng);
    e.size_blocks = u32(rng);
    e.tenant = u32(rng);
    e.flags = static_cast<std::uint8_t>(rng() & 1);
  }
  return evs;
}

std::vector<WireCompletion> random_completions(std::mt19937& rng,
                                               std::size_t n) {
  std::uniform_int_distribution<std::uint64_t> u64;
  std::vector<WireCompletion> cs(n);
  for (auto& c : cs) {
    c.tag = u64(rng);
    c.arrival = static_cast<std::int64_t>(u64(rng));
    c.dispatch = static_cast<std::int64_t>(u64(rng));
    c.start = static_cast<std::int64_t>(u64(rng));
    c.finish = static_cast<std::int64_t>(u64(rng));
    c.device = static_cast<std::int32_t>(u64(rng));
    c.q_ppm = static_cast<std::int32_t>(u64(rng));
    c.tenant = static_cast<std::uint32_t>(u64(rng));
    c.path = static_cast<std::uint8_t>(rng() & 0x7);
    c.flags = static_cast<std::uint8_t>(rng() & 0xf);
  }
  return cs;
}

/// Feed an encoded byte string through a FrameReader in `chunk`-sized
/// pieces and return every frame it yields.
std::vector<Frame> reassemble(const std::string& bytes, std::size_t chunk) {
  FrameReader r;
  std::vector<Frame> out;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    r.feed(bytes.data() + off, std::min(chunk, bytes.size() - off));
    while (auto f = r.next()) out.push_back(std::move(*f));
  }
  EXPECT_FALSE(r.error());
  return out;
}

void expect_events_eq(const std::vector<WireEvent>& a,
                      const std::vector<WireEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag, b[i].tag) << i;
    EXPECT_EQ(a[i].time, b[i].time) << i;
    EXPECT_EQ(a[i].block, b[i].block) << i;
    EXPECT_EQ(a[i].device, b[i].device) << i;
    EXPECT_EQ(a[i].size_blocks, b[i].size_blocks) << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].flags, b[i].flags) << i;
  }
}

TEST(Frame, SubmitRoundTripRandomizedBatches) {
  std::mt19937 rng(2026);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{257}, std::size_t{4096}}) {
    const auto evs = random_events(rng, n);
    const auto frames = reassemble(encode_submit(evs), 1 << 16);
    ASSERT_EQ(frames.size(), 1u) << n;
    EXPECT_EQ(frames[0].type, FrameType::kSubmit);
    std::vector<WireEvent> got;
    ASSERT_TRUE(decode_submit(frames[0], got)) << n;
    expect_events_eq(evs, got);
  }
}

TEST(Frame, CompletionsRoundTripRandomizedBatches) {
  std::mt19937 rng(7);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{1024}}) {
    const auto cs = random_completions(rng, n);
    const auto frames = reassemble(encode_completions(cs), 1 << 16);
    ASSERT_EQ(frames.size(), 1u);
    std::vector<WireCompletion> got;
    ASSERT_TRUE(decode_completions(frames[0], got)) << n;
    ASSERT_EQ(cs.size(), got.size());
    for (std::size_t i = 0; i < cs.size(); ++i) {
      EXPECT_EQ(cs[i].tag, got[i].tag) << i;
      EXPECT_EQ(cs[i].arrival, got[i].arrival) << i;
      EXPECT_EQ(cs[i].dispatch, got[i].dispatch) << i;
      EXPECT_EQ(cs[i].start, got[i].start) << i;
      EXPECT_EQ(cs[i].finish, got[i].finish) << i;
      EXPECT_EQ(cs[i].device, got[i].device) << i;
      EXPECT_EQ(cs[i].q_ppm, got[i].q_ppm) << i;
      EXPECT_EQ(cs[i].tenant, got[i].tenant) << i;
      EXPECT_EQ(cs[i].path, got[i].path) << i;
      EXPECT_EQ(cs[i].flags, got[i].flags) << i;
    }
  }
}

TEST(Frame, ControlFramesRoundTrip) {
  {
    const auto frames = reassemble(encode_hello(kProtocolVersion), 4);
    ASSERT_EQ(frames.size(), 1u);
    std::uint32_t v = 0;
    ASSERT_TRUE(decode_hello(frames[0], v));
    EXPECT_EQ(v, kProtocolVersion);
  }
  {
    const auto frames = reassemble(encode_flush(-12345678901234), 4);
    std::int64_t floor = 0;
    ASSERT_TRUE(decode_flush(frames.at(0), floor));
    EXPECT_EQ(floor, -12345678901234);
  }
  {
    WelcomeFrame w;
    w.devices = 13;
    w.copies = 3;
    w.interval_ns = 133000;
    w.max_batch = 1024;
    w.inflight_cap = 4096;
    const auto frames = reassemble(encode_welcome(w), 3);
    WelcomeFrame got;
    ASSERT_TRUE(decode_welcome(frames.at(0), got));
    EXPECT_EQ(got.version, w.version);
    EXPECT_EQ(got.devices, w.devices);
    EXPECT_EQ(got.copies, w.copies);
    EXPECT_EQ(got.interval_ns, w.interval_ns);
    EXPECT_EQ(got.max_batch, w.max_batch);
    EXPECT_EQ(got.inflight_cap, w.inflight_cap);
  }
  {
    const std::vector<WirePushback> ps = {{.tag = 9, .reason = 1},
                                          {.tag = ~std::uint64_t{0},
                                           .reason = 2}};
    const auto frames = reassemble(encode_pushbacks(ps), 5);
    std::vector<WirePushback> got;
    ASSERT_TRUE(decode_pushbacks(frames.at(0), got));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].tag, 9u);
    EXPECT_EQ(got[1].reason, 2u);
  }
  {
    const auto frames = reassemble(encode_drained(777), 2);
    std::uint64_t served = 0;
    ASSERT_TRUE(decode_drained(frames.at(0), served));
    EXPECT_EQ(served, 777u);
  }
  {
    const auto frames =
        reassemble(encode_error(ErrorCode::kBadVersion, "speak v1"), 1);
    ErrorFrame e;
    ASSERT_TRUE(decode_error(frames.at(0), e));
    EXPECT_EQ(e.code, static_cast<std::uint16_t>(ErrorCode::kBadVersion));
    EXPECT_EQ(e.message, "speak v1");
  }
  {
    const auto frames = reassemble(encode_end_session(), 1);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::kEndSession);
    EXPECT_TRUE(frames[0].payload.empty());
  }
}

TEST(Frame, TornReadsNeverChangeTheFrames) {
  std::mt19937 rng(99);
  const auto evs = random_events(rng, 100);
  const auto cs = random_completions(rng, 50);
  std::string bytes = encode_hello() + encode_submit(evs) +
                      encode_flush(42) + encode_completions(cs) +
                      encode_end_session();
  // Every chunking — including one byte at a time, where every frame is
  // torn at every boundary — must reassemble the identical sequence.
  const auto want = reassemble(bytes, bytes.size());
  ASSERT_EQ(want.size(), 5u);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{17}, std::size_t{1000}}) {
    const auto got = reassemble(bytes, chunk);
    ASSERT_EQ(got.size(), want.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].type, want[i].type) << chunk << "/" << i;
      EXPECT_EQ(got[i].payload, want[i].payload) << chunk << "/" << i;
    }
  }
}

TEST(Frame, OversizedLengthPoisonsTheReader) {
  // A length prefix over kMaxFrameBytes must refuse before allocating and
  // leave the reader dead: frame boundaries are gone.
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFrameBytes + 1);
  char hdr[4];
  std::memcpy(hdr, &huge, 4);
  FrameReader r;
  r.feed(hdr, 4);
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_TRUE(r.error());
  // Feeding a perfectly valid frame afterwards must not resurrect it.
  const auto ok = encode_hello();
  r.feed(ok.data(), ok.size());
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_TRUE(r.error());
}

TEST(Frame, MalformedPayloadsRefuseToDecode) {
  // Truncated submit: count claims more entries than the payload holds.
  Frame f;
  f.type = FrameType::kSubmit;
  const std::uint32_t count = 1000;
  f.payload.assign(reinterpret_cast<const char*>(&count), 4);
  f.payload += "short";
  std::vector<WireEvent> evs;
  EXPECT_FALSE(decode_submit(f, evs));

  Frame c;
  c.type = FrameType::kCompletion;
  c.payload.assign(reinterpret_cast<const char*>(&count), 4);
  std::vector<WireCompletion> cs;
  EXPECT_FALSE(decode_completions(c, cs));

  Frame h;
  h.type = FrameType::kHello;
  h.payload = "xy";  // hello is exactly 4 bytes
  std::uint32_t v = 0;
  EXPECT_FALSE(decode_hello(h, v));

  Frame d;
  d.type = FrameType::kDrained;
  d.payload = "1234";  // drained is exactly 8 bytes
  std::uint64_t served = 0;
  EXPECT_FALSE(decode_drained(d, served));
}

TEST(SendAll, SurvivesShortWrites) {
  // A tiny send buffer forces send() to take partial bites; send_all must
  // keep going until every byte is on the wire.
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const int small = 4096;
  setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  std::string payload(1 << 20, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131 + 7);
  }
  std::thread writer(
      [&] { EXPECT_TRUE(send_all(sv[0], payload)); ::close(sv[0]); });
  std::string got;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::read(sv[1], buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<std::size_t>(n));
  }
  writer.join();
  ::close(sv[1]);
  EXPECT_EQ(got, payload);
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  // /proc/self/fd enumeration; the dirent fd itself is transient but
  // constant across both samples, so the counts are comparable.
  for (int fd = 0; fd < 512; ++fd) {
    if (fcntl(fd, F_GETFD) != -1) ++n;
  }
  return n;
}

TEST(Acceptor, StopWithFullQueueDoesNotDeadlock) {
  // Regression for the exporter's original shutdown defect: every handler
  // busy (here: none at all), queue full, acceptor blocked in push().
  // stop() must close the queue first so the blocked push wakes.
  Acceptor a;
  ASSERT_TRUE(a.start({.queue_capacity = 1}));
  std::vector<int> clients;
  for (int i = 0; i < 4; ++i) {
    const int fd = connect_loopback(a.port());
    if (fd >= 0) clients.push_back(fd);
  }
  // Give the accept loop a chance to wedge on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  a.stop();  // must return; the old code deadlocked here
  a.reap();
  for (const int fd : clients) ::close(fd);
  EXPECT_FALSE(a.running());
}

TEST(Acceptor, RestartWorksAndLeaksNoFds) {
  const std::size_t before = open_fd_count();
  for (int round = 0; round < 3; ++round) {
    Acceptor a;
    ASSERT_TRUE(a.start({.queue_capacity = 2}));
    const std::uint16_t port = a.port();
    ASSERT_NE(port, 0);
    // Leave accepted fds unpopped: reap() must close them, not leak them.
    std::vector<int> clients;
    for (int i = 0; i < 3; ++i) {
      const int fd = connect_loopback(port);
      ASSERT_GE(fd, 0);
      clients.push_back(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    a.stop();
    a.reap();
    EXPECT_EQ(a.port(), 0);
    // Same object starts again on a fresh socket.
    ASSERT_TRUE(a.start({.queue_capacity = 2}));
    const int fd = connect_loopback(a.port());
    ASSERT_GE(fd, 0);
    const auto popped = a.next_client();
    ASSERT_TRUE(popped.has_value());
    ::close(*popped);
    ::close(fd);
    a.stop();
    a.reap();
    for (const int c : clients) ::close(c);
  }
  EXPECT_EQ(open_fd_count(), before);
}

// ---- daemon-level protocol behaviour --------------------------------------

struct DaemonFixture {
  design::BlockDesign d = design::make_9_3_1();
  decluster::DesignTheoretic scheme{d, true};
  service::PipelineService svc;
  DaemonServer server;

  explicit DaemonFixture(ServerOptions opts = {.dispatchers = 2})
      : svc(scheme, options()), server(svc, opts) {}

  static service::ServiceOptions options() {
    service::ServiceOptions so;
    so.pipeline.retrieval = core::RetrievalMode::kOnline;
    so.pipeline.admission = core::AdmissionMode::kDeterministic;
    so.pipeline.mapping = core::MappingMode::kModulo;
    so.meta.name = "net-test";
    return so;
  }
};

TEST(DaemonServer, MalformedFrameAnswersErrorAndCounts) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.server.start());
  const int fd = connect_loopback(fx.server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, encode_hello()));
  // A submit whose count promises far more entries than the payload holds.
  std::string bad;
  const std::uint32_t len = 1 + 4;  // type + count, no entries
  const std::uint32_t count = 500;
  bad.append(reinterpret_cast<const char*>(&len), 4);
  bad.push_back(static_cast<char>(FrameType::kSubmit));
  bad.append(reinterpret_cast<const char*>(&count), 4);
  ASSERT_TRUE(send_all(fd, bad));

  FrameReader r;
  bool got_error = false;
  char buf[4096];
  for (int spins = 0; spins < 100 && !got_error; ++spins) {
    const ssize_t n = recv_some(fd, buf, sizeof(buf), 100);
    if (n == 0) break;
    if (n < 0) continue;
    r.feed(buf, static_cast<std::size_t>(n));
    while (auto f = r.next()) {
      if (f->type == FrameType::kError) {
        ErrorFrame e;
        ASSERT_TRUE(decode_error(*f, e));
        EXPECT_EQ(e.code, static_cast<std::uint16_t>(ErrorCode::kMalformed));
        got_error = true;
      }
    }
  }
  EXPECT_TRUE(got_error);
  ::close(fd);
  fx.server.stop();
  EXPECT_GE(fx.server.parse_errors(), 1u);
}

TEST(DaemonServer, SubmitBeforeHelloIsABadSequence) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.server.start());
  const int fd = connect_loopback(fx.server.port());
  ASSERT_GE(fd, 0);
  const WireEvent ev{};
  ASSERT_TRUE(send_all(fd, encode_submit({&ev, 1})));
  FrameReader r;
  bool got_error = false;
  char buf[4096];
  for (int spins = 0; spins < 100 && !got_error; ++spins) {
    const ssize_t n = recv_some(fd, buf, sizeof(buf), 100);
    if (n == 0) break;
    if (n < 0) continue;
    r.feed(buf, static_cast<std::size_t>(n));
    while (auto f = r.next()) {
      if (f->type == FrameType::kError) {
        ErrorFrame e;
        ASSERT_TRUE(decode_error(*f, e));
        EXPECT_EQ(e.code, static_cast<std::uint16_t>(ErrorCode::kBadSequence));
        got_error = true;
      }
    }
  }
  EXPECT_TRUE(got_error);
  ::close(fd);
  fx.server.stop();
}

TEST(DaemonServer, ConnectionManagerStress) {
  // Many concurrent connections submitting through the MPSC ingress while
  // the writer threads route verdicts back: the schedule-sensitive part of
  // the daemon, sized for TSan. Every client must get exactly its own
  // completions and the session total must add up.
  constexpr std::size_t kConns = 8;
  constexpr std::size_t kPerConn = 50;
  DaemonFixture fx({.dispatchers = kConns});
  ASSERT_TRUE(fx.server.start());

  std::atomic<std::size_t> connected{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<std::size_t> got(kConns, 0);
  // Bytes, not vector<bool>: the threads write distinct elements, which
  // bit-packing would turn into a shared-byte race.
  std::vector<std::uint8_t> ok(kConns, 0);
  for (std::size_t c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      Client cl;
      if (!cl.connect(fx.server.port())) return;
      connected.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::vector<WireEvent> evs(kPerConn);
      for (std::size_t i = 0; i < kPerConn; ++i) {
        evs[i].tag = c * 1000 + i;
        evs[i].time = 0;  // one interval; floor stays 0, nothing clamps
        evs[i].block = (c * 7 + i) % 36;
      }
      if (!cl.submit(evs)) return;
      if (!cl.finish()) return;
      got[c] = cl.completions.size();
      // Completions must be this connection's own tags, in order.
      bool mine = true;
      for (std::size_t i = 0; i < cl.completions.size(); ++i) {
        mine = mine && cl.completions[i].tag == c * 1000 + i;
      }
      ok[c] = mine ? 1 : 0;
    });
  }
  // All sessions must exist before any ends, or the daemon would begin
  // draining after the first finish().
  while (connected.load() < kConns) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  const auto& result = fx.server.wait_done();
  EXPECT_EQ(result.requests, kConns * kPerConn);
  for (std::size_t c = 0; c < kConns; ++c) {
    EXPECT_EQ(got[c], kPerConn) << "conn " << c;
    EXPECT_EQ(ok[c], 1) << "conn " << c;
  }
  EXPECT_EQ(fx.server.connections_total(), kConns);
  EXPECT_EQ(fx.server.dropped_completions(), 0u);
  fx.server.stop();
}

TEST(DaemonServer, ConnectBlocksUntilTheRealWelcomeLands) {
  // Regression: WelcomeFrame's fields default to valid-looking values
  // (version is kProtocolVersion), so a connect() that polls the welcome's
  // version returns before the daemon's frame arrives — handing callers a
  // welcome with max_batch == 0 and inflight_cap == 0. Receipt must be
  // tracked explicitly.
  DaemonFixture fx;
  ASSERT_TRUE(fx.server.start());
  Client cl;
  ASSERT_TRUE(cl.connect(fx.server.port()));
  EXPECT_EQ(cl.welcome().max_batch, ServerOptions{}.max_batch);
  EXPECT_EQ(cl.welcome().inflight_cap, ServerOptions{}.inflight_cap);
  EXPECT_EQ(cl.welcome().devices, 9u);
  EXPECT_EQ(cl.welcome().copies, 3u);
  ASSERT_TRUE(cl.finish());
  fx.server.stop();
}

TEST(DaemonServer, CapBoundaryClientIsNeverPushedBack) {
  // Regression: the server staged a completion for the writer BEFORE
  // decrementing the connection's in-flight count. A closed-loop client
  // riding exactly at the cap can receive that completion and submit into
  // the freed slot while the decrement is still pending, and the
  // dispatcher's stale count answered the compliant submit with an
  // inflight-cap pushback. Hammer the boundary: with the fixed ordering
  // a compliant client never sees pushback.
  ServerOptions opts;
  opts.dispatchers = 1;
  opts.inflight_cap = 2;
  DaemonFixture fx(opts);
  ASSERT_TRUE(fx.server.start());
  Client cl;
  ASSERT_TRUE(cl.connect(fx.server.port()));
  constexpr std::size_t kRequests = 2000;
  for (std::size_t i = 0; i < kRequests; ++i) {
    WireEvent ev;
    ev.tag = i;
    // Each submission advances the ingestion frontier one interval, so
    // earlier events keep completing and the window keeps cycling at the
    // cap boundary.
    ev.time = static_cast<std::int64_t>(i) * kBaseInterval;
    ev.block = (i * 5) % 36;
    ASSERT_TRUE(cl.submit({&ev, 1}));
  }
  ASSERT_TRUE(cl.finish());
  EXPECT_EQ(cl.completions.size(), kRequests);
  EXPECT_TRUE(cl.pushbacks.empty());
  EXPECT_EQ(fx.server.pushbacks_sent(), 0u);
  fx.server.stop();
}

}  // namespace
}  // namespace flashqos::net
