// Unit tests for core::QosPipeline and replay_original: deterministic
// guarantee end to end, deferral accounting, interval-aligned vs online
// semantics, statistical admission behaviour, original-stand replay.
#include <gtest/gtest.h>

#include "core/qos_pipeline.hpp"
#include "core/sampler.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "trace/synthetic.hpp"
#include "trace/workload.hpp"

namespace flashqos::core {
namespace {

using decluster::DesignTheoretic;

const design::BlockDesign& design931() {
  static const auto d = design::make_9_3_1();
  return d;
}

trace::Trace bucket_trace(std::vector<std::pair<SimTime, BucketId>> reqs) {
  trace::Trace t;
  t.name = "unit";
  t.volumes = 0;
  t.report_interval = kSecond;
  for (const auto& [time, bucket] : reqs) {
    t.events.push_back({.time = time, .block = bucket, .device = 0});
  }
  return t;
}

TEST(QosPipeline, GuaranteedBatchMeetsDeadline) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline pipe(scheme, cfg);
  // 5 requests exactly on a boundary: all must finish within one latency.
  const auto r = pipe.run(bucket_trace({{0, 0}, {0, 7}, {0, 14}, {0, 21}, {0, 30}}));
  EXPECT_EQ(r.deadline_violations, 0u);
  EXPECT_EQ(r.overall.deferred, 0u);
  for (const auto& o : r.outcomes) {
    EXPECT_EQ(o.dispatch, 0);
    EXPECT_EQ(o.finish, kPageReadLatency);
  }
}

TEST(QosPipeline, SixthRequestIsDeferred) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline pipe(scheme, cfg);
  const auto r =
      pipe.run(bucket_trace({{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}));
  EXPECT_EQ(r.overall.deferred, 1u);
  // The deferred request dispatches at the next interval boundary.
  std::size_t deferred_idx = 0;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    if (r.outcomes[i].deferred()) deferred_idx = i;
  }
  EXPECT_EQ(r.outcomes[deferred_idx].dispatch, kBaseInterval);
  EXPECT_EQ(r.outcomes[deferred_idx].delay(), kBaseInterval);
  EXPECT_EQ(r.deadline_violations, 0u);
}

TEST(QosPipeline, DeferralIsFifo) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline pipe(scheme, cfg);
  // 12 simultaneous requests: 5 now, 5 next interval, 2 the one after;
  // deferral must respect arrival order (trace order).
  std::vector<std::pair<SimTime, BucketId>> reqs;
  for (BucketId b = 0; b < 12; ++b) reqs.push_back({0, b});
  const auto r = pipe.run(bucket_trace(reqs));
  EXPECT_EQ(r.overall.deferred, 7u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(r.outcomes[i].dispatch, 0);
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(r.outcomes[i].dispatch, kBaseInterval) << i;
  }
  for (std::size_t i = 10; i < 12; ++i) {
    EXPECT_EQ(r.outcomes[i].dispatch, 2 * kBaseInterval) << i;
  }
}

TEST(QosPipeline, OnlineServesMidIntervalImmediately) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline pipe(scheme, cfg);
  const SimTime mid = kBaseInterval / 2;
  const auto r = pipe.run(bucket_trace({{mid, 0}}));
  EXPECT_EQ(r.outcomes[0].dispatch, mid);
  EXPECT_EQ(r.outcomes[0].start, mid);
  EXPECT_EQ(r.outcomes[0].finish, mid + kPageReadLatency);
  EXPECT_FALSE(r.outcomes[0].deferred());
}

TEST(QosPipeline, AlignedDefersMidIntervalToBoundary) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline pipe(scheme, cfg);
  const SimTime mid = kBaseInterval / 2;
  const auto r = pipe.run(bucket_trace({{mid, 0}}));
  EXPECT_EQ(r.outcomes[0].dispatch, kBaseInterval);
  EXPECT_EQ(r.outcomes[0].finish, kBaseInterval + kPageReadLatency);
}

TEST(QosPipeline, AdmissionNoneAcceptsEverything) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kNone;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline pipe(scheme, cfg);
  std::vector<std::pair<SimTime, BucketId>> reqs;
  for (BucketId b = 0; b < 20; ++b) reqs.push_back({0, b % 36});
  const auto r = pipe.run(bucket_trace(reqs));
  EXPECT_EQ(r.overall.deferred, 0u);
  // 20 requests on 9 devices: at least ⌈20/9⌉ = 3 rounds somewhere.
  EXPECT_GE(r.overall.max_response_ms, to_ms(3 * kPageReadLatency) - 1e-9);
}

TEST(QosPipeline, StatisticalAdmitsSixWithLooseEpsilon) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kStatistical;
  cfg.mapping = MappingMode::kModulo;
  cfg.epsilon = 0.5;
  cfg.p_table = sample_optimal_probabilities(scheme, 12, {.samples_per_size = 500});
  QosPipeline pipe(scheme, cfg);
  const auto r =
      pipe.run(bucket_trace({{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}));
  EXPECT_EQ(r.overall.deferred, 0u) << "ε = 0.5 accepts the 6th request";
}

TEST(QosPipeline, StatisticalTightEpsilonDefersLikeDeterministic) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kStatistical;
  cfg.mapping = MappingMode::kModulo;
  cfg.epsilon = 0.0;
  cfg.p_table = sample_optimal_probabilities(scheme, 12, {.samples_per_size = 500});
  QosPipeline pipe(scheme, cfg);
  const auto r =
      pipe.run(bucket_trace({{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}));
  EXPECT_EQ(r.overall.deferred, 1u);
}

TEST(QosPipeline, EmptyTrace) {
  const DesignTheoretic scheme(design931(), true);
  QosPipeline pipe(scheme, {});
  const auto r = pipe.run(trace::Trace{});
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_TRUE(r.intervals.empty());
}

TEST(QosPipeline, ReportsSliceByArrivalInterval) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kNone;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline pipe(scheme, cfg);
  trace::Trace t = bucket_trace({{0, 0}, {kSecond + 5, 1}, {kSecond + 10, 2}});
  const auto r = pipe.run(t);
  ASSERT_EQ(r.intervals.size(), 2u);
  EXPECT_EQ(r.intervals[0].requests, 1u);
  EXPECT_EQ(r.intervals[1].requests, 2u);
}

TEST(ReplayOriginal, QueueingShowsInResponseTimes) {
  trace::Trace t;
  t.name = "orig";
  t.volumes = 2;
  t.report_interval = kSecond;
  // Three simultaneous requests to volume 0: FIFO queueing.
  t.events = {{.time = 0, .block = 1, .device = 0},
              {.time = 0, .block = 2, .device = 0},
              {.time = 0, .block = 3, .device = 0}};
  const auto r = replay_original(t);
  EXPECT_DOUBLE_EQ(r.overall.max_response_ms, to_ms(3 * kPageReadLatency));
  EXPECT_EQ(r.deadline_violations, 2u);  // 2nd and 3rd exceed 0.133 ms
  EXPECT_EQ(r.overall.deferred, 0u);
}

TEST(ReplayOriginal, ParallelVolumesNoQueueing) {
  trace::Trace t;
  t.volumes = 3;
  t.report_interval = kSecond;
  t.events = {{.time = 0, .block = 1, .device = 0},
              {.time = 0, .block = 2, .device = 1},
              {.time = 0, .block = 3, .device = 2}};
  const auto r = replay_original(t);
  EXPECT_DOUBLE_EQ(r.overall.max_response_ms, to_ms(kPageReadLatency));
  EXPECT_EQ(r.deadline_violations, 0u);
}

TEST(QosPipeline, FimMappingMatchesAfterFirstInterval) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kFim;
  QosPipeline pipe(scheme, cfg);
  trace::Trace t;
  t.volumes = 0;
  t.report_interval = 10 * kBaseInterval;
  // Interval 0: blocks 100 and 200 co-occur (same QoS window) repeatedly.
  // Interval 1: the same blocks return — they must be FIM-matched.
  for (int rep = 0; rep < 3; ++rep) {
    const SimTime base = rep * 2 * kBaseInterval;
    t.events.push_back({.time = base, .block = 100, .device = 0});
    t.events.push_back({.time = base, .block = 200, .device = 0});
  }
  const SimTime second = 10 * kBaseInterval;
  t.events.push_back({.time = second, .block = 100, .device = 0});
  t.events.push_back({.time = second, .block = 200, .device = 0});
  t.events.push_back({.time = second, .block = 999, .device = 0});
  const auto r = pipe.run(t);
  ASSERT_EQ(r.intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(r.intervals[0].fim_match_rate, 0.0)
      << "no history before the first interval";
  EXPECT_NEAR(r.intervals[1].fim_match_rate, 2.0 / 3.0, 1e-9);
}

TEST(QosPipeline, OutcomesCoverEveryRequestExactlyOnce) {
  const DesignTheoretic scheme(design931(), true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline pipe(scheme, cfg);
  const auto t = trace::generate_synthetic({.bucket_pool = 36,
                                            .requests_per_interval = 5,
                                            .total_requests = 500,
                                            .seed = 3});
  const auto r = pipe.run(t);
  ASSERT_EQ(r.outcomes.size(), 500u);
  for (const auto& o : r.outcomes) {
    EXPECT_NE(o.device, kInvalidDevice);
    EXPECT_GE(o.dispatch, o.arrival);
    EXPECT_GE(o.start, o.dispatch);
    EXPECT_EQ(o.finish - o.start, kPageReadLatency);
  }
}

}  // namespace
}  // namespace flashqos::core
