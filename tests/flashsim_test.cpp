// Unit tests for src/flashsim: event ordering, FIFO service, fixed and
// detailed timing models, package parallelism, metrics, and the simulator
// conservation invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "flashsim/flash_array.hpp"
#include "flashsim/metrics.hpp"
#include "util/rng.hpp"

namespace flashqos::flashsim {
namespace {

std::shared_ptr<const ModuleModel> fixed_model(SimTime per_page = kPageReadLatency) {
  return std::make_shared<FixedLatencyModel>(per_page);
}

TEST(FlashArray, SingleRequestTakesOneLatency) {
  FlashArray a(4, fixed_model());
  a.submit({.id = 1, .device = 2, .submit_time = 1000, .pages = 1});
  a.run();
  const auto& c = a.completions();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].id, 1u);
  EXPECT_EQ(c[0].start, 1000);
  EXPECT_EQ(c[0].finish, 1000 + kPageReadLatency);
  EXPECT_EQ(c[0].response_time(), kPageReadLatency);
}

TEST(FlashArray, FifoSerializesOneDevice) {
  FlashArray a(1, fixed_model(100));
  for (std::uint64_t i = 0; i < 5; ++i) {
    a.submit({.id = i, .device = 0, .submit_time = 0, .pages = 1});
  }
  a.run();
  const auto& c = a.completions();
  ASSERT_EQ(c.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(c[i].id, i) << "FIFO order by submission sequence";
    EXPECT_EQ(c[i].start, static_cast<SimTime>(i) * 100);
    EXPECT_EQ(c[i].finish, static_cast<SimTime>(i + 1) * 100);
  }
}

TEST(FlashArray, DevicesRunInParallel) {
  FlashArray a(3, fixed_model(100));
  for (std::uint64_t d = 0; d < 3; ++d) {
    a.submit({.id = d, .device = static_cast<DeviceId>(d), .submit_time = 0});
  }
  a.run();
  for (const auto& c : a.completions()) {
    EXPECT_EQ(c.start, 0);
    EXPECT_EQ(c.finish, 100);
  }
}

TEST(FlashArray, MultiPageRequestsScale) {
  FlashArray a(1, fixed_model(100));
  a.submit({.id = 0, .device = 0, .submit_time = 0, .pages = 4});
  a.run();
  EXPECT_EQ(a.completions()[0].finish, 400);
}

TEST(FlashArray, IdleGapThenService) {
  FlashArray a(1, fixed_model(100));
  a.submit({.id = 0, .device = 0, .submit_time = 0});
  a.submit({.id = 1, .device = 0, .submit_time = 500});
  a.run();
  const auto& c = a.completions();
  EXPECT_EQ(c[1].start, 500);  // device idled between requests
}

TEST(FlashArray, RunUntilProcessesPrefixOnly) {
  FlashArray a(1, fixed_model(100));
  a.submit({.id = 0, .device = 0, .submit_time = 0});
  a.submit({.id = 1, .device = 0, .submit_time = 1000});
  a.run_until(150);
  EXPECT_EQ(a.completions().size(), 1u);
  EXPECT_EQ(a.now(), 150);
  EXPECT_EQ(a.pending_requests(), 1u);
  a.run();
  EXPECT_EQ(a.completions().size(), 2u);
  EXPECT_EQ(a.pending_requests(), 0u);
}

TEST(FlashArray, InterleavedSubmitAndRun) {
  FlashArray a(2, fixed_model(100));
  a.submit({.id = 0, .device = 0, .submit_time = 0});
  a.run_until(50);
  a.submit({.id = 1, .device = 0, .submit_time = 60});
  a.run();
  const auto& c = a.completions();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[1].start, 100);  // queued behind the in-flight request
}

TEST(FlashArray, RejectsSubmitIntoPast) {
  FlashArray a(1, fixed_model(100));
  a.submit({.id = 0, .device = 0, .submit_time = 100});
  a.run();
  EXPECT_DEATH(a.submit({.id = 1, .device = 0, .submit_time = 50}), "past");
}

TEST(FlashArray, DeviceFreeAtAccountsQueue) {
  FlashArray a(1, fixed_model(100));
  a.submit({.id = 0, .device = 0, .submit_time = 0});
  a.submit({.id = 1, .device = 0, .submit_time = 0});
  a.run_until(0);
  EXPECT_EQ(a.device_free_at(0), 200);
}

TEST(FlashArray, ConservationEveryRequestCompletesOnce) {
  Rng rng(5);
  FlashArray a(9, fixed_model());
  constexpr std::uint64_t kRequests = 2000;
  std::vector<IoRequest> reqs;
  SimTime t = 0;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    t += static_cast<SimTime>(rng.below(50000));
    reqs.push_back({.id = i,
                    .device = static_cast<DeviceId>(rng.below(9)),
                    .submit_time = t,
                    .pages = 1});
    a.submit(reqs.back());
  }
  a.run();
  const auto& c = a.completions();
  ASSERT_EQ(c.size(), kRequests);
  std::map<std::uint64_t, const IoCompletion*> by_id;
  for (const auto& comp : c) {
    EXPECT_TRUE(by_id.emplace(comp.id, &comp).second) << "duplicate completion";
  }
  // Per-device service intervals never overlap; responses >= service time.
  std::map<DeviceId, std::vector<std::pair<SimTime, SimTime>>> busy;
  for (const auto& comp : c) {
    EXPECT_GE(comp.start, comp.submit_time);
    EXPECT_EQ(comp.finish - comp.start, kPageReadLatency);
    busy[comp.device].emplace_back(comp.start, comp.finish);
  }
  for (auto& [dev, spans] : busy) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << "device " << dev << " served two requests at once";
    }
  }
}

TEST(DetailedModel, PipelinedPageReads) {
  const DetailedModel m({.cell_read = 30, .transfer = 10, .packages = 1});
  EXPECT_EQ(m.service_time({.pages = 1}), 40);
  EXPECT_EQ(m.service_time({.pages = 4}), 70);
  EXPECT_EQ(m.ways(), 1u);
}

TEST(DetailedModel, PackageParallelismOverlapsRequests) {
  auto model = std::make_shared<DetailedModel>(
      DetailedModelParams{.cell_read = 50, .transfer = 50, .packages = 2});
  FlashArray a(1, model);
  a.submit({.id = 0, .device = 0, .submit_time = 0});
  a.submit({.id = 1, .device = 0, .submit_time = 0});
  a.submit({.id = 2, .device = 0, .submit_time = 0});
  a.run();
  const auto& c = a.completions();
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].finish, 100);
  EXPECT_EQ(c[1].finish, 100);  // second way
  EXPECT_EQ(c[2].start, 100);   // third waits for a free way
}

TEST(Metrics, SummaryMatchesHandComputation) {
  std::vector<IoCompletion> c = {
      {.id = 0, .device = 0, .submit_time = 0, .start = 0, .finish = kMillisecond},
      {.id = 1, .device = 0, .submit_time = 0, .start = 0, .finish = 3 * kMillisecond},
  };
  const auto s = summarize(c);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.avg_ms, 2.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 3.0);
  EXPECT_DOUBLE_EQ(s.min_ms, 1.0);
}

TEST(Metrics, ViolationRate) {
  std::vector<IoCompletion> c = {
      {.id = 0, .submit_time = 0, .finish = 100},
      {.id = 1, .submit_time = 0, .finish = 300},
      {.id = 2, .submit_time = 0, .finish = 150},
      {.id = 3, .submit_time = 0, .finish = 400},
  };
  EXPECT_DOUBLE_EQ(violation_rate(c, 200), 0.5);
  EXPECT_DOUBLE_EQ(violation_rate(c, 1000), 0.0);
  EXPECT_DOUBLE_EQ(violation_rate({}, 100), 0.0);
}

TEST(FlashArray, TakeCompletionsDrains) {
  FlashArray a(1, fixed_model(10));
  a.submit({.id = 0, .device = 0, .submit_time = 0});
  a.run();
  EXPECT_EQ(a.take_completions().size(), 1u);
  EXPECT_TRUE(a.completions().empty());
}

}  // namespace
}  // namespace flashqos::flashsim
