// Randomized equivalence suite for the zero-allocation retrieval core: a
// reused FlowWorkspace / RetrievalScratch must produce schedules identical
// — device, round, rounds, solver label — to a fresh solver, across batch
// sizes, schemes, availability masks, and interleaved shapes. Also covers
// the reusable MaxFlow's in-place capacity restore and the P_k memo's
// determinism (including under concurrency; scripts/check.sh runs this
// binary under ASan/UBSan and TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/sampler.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "retrieval/dtr.hpp"
#include "retrieval/heterogeneous.hpp"
#include "retrieval/maxflow.hpp"
#include "retrieval/online.hpp"
#include "retrieval/workspace.hpp"
#include "util/rng.hpp"

namespace flashqos::retrieval {
namespace {

using decluster::DesignTheoretic;

const DesignTheoretic& scheme731() {
  static const auto d = design::fano();
  static const DesignTheoretic s(d);
  return s;
}

const DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const DesignTheoretic s(d);
  return s;
}

const DesignTheoretic& scheme1331() {
  static const auto d = design::make_13_3_1();
  static const DesignTheoretic s(d);
  return s;
}

void expect_schedules_equal(const Schedule& got, const Schedule& want,
                            const char* what) {
  ASSERT_EQ(got.assignments.size(), want.assignments.size()) << what;
  EXPECT_EQ(got.rounds, want.rounds) << what;
  EXPECT_EQ(got.via, want.via) << what;
  for (std::size_t i = 0; i < got.assignments.size(); ++i) {
    ASSERT_EQ(got.assignments[i].device, want.assignments[i].device)
        << what << " request " << i;
    ASSERT_EQ(got.assignments[i].round, want.assignments[i].round)
        << what << " request " << i;
  }
}

std::vector<BucketId> random_batch(Rng& rng, std::size_t k, std::uint32_t buckets) {
  std::vector<BucketId> batch(k);
  for (auto& b : batch) b = static_cast<BucketId>(rng.below(buckets));
  return batch;
}

/// Random availability mask: all-up (empty), or one/two dead devices —
/// chosen so every bucket keeps a live replica (copies >= 3 in the schemes
/// used here tolerates up to two failures only for distinct-replica
/// buckets; retrieve() reports unschedulable requests and the test accepts
/// either answer as long as fresh and reused agree).
std::vector<bool> random_mask(Rng& rng, std::uint32_t devices) {
  const auto dead = rng.below(3);
  if (dead == 0) return {};
  std::vector<bool> mask(devices, true);
  for (std::uint64_t i = 0; i < dead; ++i) {
    mask[rng.below(devices)] = false;
  }
  return mask;
}

TEST(Workspace, ReusedEqualsFreshAcrossShapesSchemesAndMasks) {
  const decluster::AllocationScheme* schemes[] = {&scheme731(), &scheme931(),
                                                  &scheme1331()};
  Rng rng(2026);
  // One scratch shared across every trial: scheme switches, batch-size
  // jumps, and mask flips all reuse the same buffers.
  RetrievalScratch scratch;
  Schedule ws_out;
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const auto& s = *schemes[trial % std::size(schemes)];
    const std::size_t k = 1 + rng.below(3 * s.devices());
    const auto batch = random_batch(rng, k, s.buckets());

    expect_schedules_equal(dtr_schedule(batch, s, {}, scratch),
                           dtr_schedule(batch, s), "dtr_schedule");
    const auto fresh_opt = optimal_schedule(batch, s);
    ASSERT_TRUE(optimal_schedule(batch, s, {}, scratch.flow, ws_out));
    expect_schedules_equal(ws_out, fresh_opt, "optimal_schedule");
    expect_schedules_equal(retrieve(batch, s, {}, scratch), retrieve(batch, s),
                           "retrieve");
    integrated_optimal_schedule(batch, s, scratch.flow, ws_out);
    expect_schedules_equal(ws_out, integrated_optimal_schedule(batch, s),
                           "integrated_optimal_schedule");

    const auto mask = random_mask(rng, s.devices());
    const auto fresh_degraded = retrieve(batch, s, mask, {});
    const Schedule* ws_degraded = retrieve(batch, s, mask, {}, scratch);
    ASSERT_EQ(ws_degraded != nullptr, fresh_degraded.has_value());
    if (ws_degraded != nullptr) {
      expect_schedules_equal(*ws_degraded, *fresh_degraded, "degraded retrieve");
    }
  }
}

TEST(Workspace, FeasibilityMatchesFreshIncludingInfeasibleRounds) {
  const auto& s = scheme931();
  Rng rng(7);
  RetrievalScratch scratch;
  Schedule ws_out;
  for (std::size_t trial = 0; trial < 150; ++trial) {
    const std::size_t k = 1 + rng.below(2 * s.devices());
    const auto batch = random_batch(rng, k, s.buckets());
    // Rounds from 0 (always infeasible for k >= 1) past the serial bound.
    const auto rounds = static_cast<std::uint32_t>(rng.below(k + 2));
    const auto mask = random_mask(rng, s.devices());
    const auto fresh = feasible_in_rounds(batch, s, rounds, mask);
    const bool ws_ok =
        feasible_in_rounds(batch, s, rounds, mask, scratch.flow, ws_out);
    ASSERT_EQ(ws_ok, fresh.has_value());
    if (ws_ok) expect_schedules_equal(ws_out, *fresh, "feasible_in_rounds");
  }
}

TEST(Workspace, InterleavedShapeChangesDoNotLeakState) {
  const auto& s = scheme1331();
  Rng rng(11);
  RetrievalScratch scratch;
  Schedule ws_out;
  // Alternate tiny and large batches so grown buffers are immediately
  // reused for smaller shapes (stale-tail bugs show up here).
  const std::size_t sizes[] = {1, 64, 3, 128, 2, 96, 39, 5};
  for (std::size_t round = 0; round < 8; ++round) {
    for (const auto k : sizes) {
      const auto batch = random_batch(rng, k, s.buckets());
      const auto fresh = optimal_schedule(batch, s);
      ASSERT_TRUE(optimal_schedule(batch, s, {}, scratch.flow, ws_out));
      expect_schedules_equal(ws_out, fresh, "interleaved optimal_schedule");
    }
  }
}

TEST(Workspace, HeterogeneousScratchMatchesFresh) {
  const auto& s = scheme931();
  Rng rng(23);
  RetrievalScratch scratch;
  for (std::size_t trial = 0; trial < 60; ++trial) {
    const std::size_t k = 1 + rng.below(2 * s.devices());
    const auto batch = random_batch(rng, k, s.buckets());
    std::vector<SimTime> service(s.devices());
    for (auto& t : service) t = 1 + static_cast<SimTime>(rng.below(9));
    const auto fresh = optimal_makespan_schedule(batch, s, service);
    const auto reused = optimal_makespan_schedule(batch, s, service, scratch);
    EXPECT_TRUE(valid_heterogeneous_schedule(batch, s, service, reused));
    ASSERT_EQ(reused.makespan, fresh.makespan);
    ASSERT_EQ(reused.assignments.size(), fresh.assignments.size());
    for (std::size_t i = 0; i < fresh.assignments.size(); ++i) {
      EXPECT_EQ(reused.assignments[i].device, fresh.assignments[i].device);
      EXPECT_EQ(reused.assignments[i].start_offset,
                fresh.assignments[i].start_offset);
    }
  }
}

TEST(Workspace, MaxFlowCapacityRestoreEqualsFreshSolve) {
  // Same network solved three ways: fresh per capacity, reset + set, and
  // raise-and-rerun; the total flow must agree everywhere and the reset
  // path must agree edge for edge with a fresh build.
  const auto build = [](MaxFlow& mf, std::int64_t sink_cap,
                        std::vector<std::uint32_t>& ids) {
    mf.begin(6);
    ids.clear();
    ids.push_back(mf.add_edge(0, 1, 1));
    ids.push_back(mf.add_edge(0, 2, 1));
    ids.push_back(mf.add_edge(1, 3, 1));
    ids.push_back(mf.add_edge(1, 4, 1));
    ids.push_back(mf.add_edge(2, 4, 1));
    ids.push_back(mf.add_edge(3, 5, sink_cap));
    ids.push_back(mf.add_edge(4, 5, sink_cap));
  };
  std::vector<std::uint32_t> fresh_ids;
  std::vector<std::uint32_t> reused_ids;
  MaxFlow reused;
  build(reused, 0, reused_ids);
  EXPECT_EQ(reused.run(0, 5), 0);
  for (std::int64_t cap = 0; cap <= 3; ++cap) {
    MaxFlow fresh;
    build(fresh, cap, fresh_ids);
    const auto want = fresh.run(0, 5);
    reused.reset_capacities();
    reused.set_capacity(reused_ids[5], cap);
    reused.set_capacity(reused_ids[6], cap);
    EXPECT_EQ(reused.run(0, 5), want) << "sink cap " << cap;
    for (std::size_t e = 0; e < fresh_ids.size(); ++e) {
      EXPECT_EQ(reused.flow_on(reused_ids[e]), fresh.flow_on(fresh_ids[e]))
          << "edge " << e << " at sink cap " << cap;
    }
  }
}

TEST(Workspace, OnlineRetrieverInternalScratchIsDeterministic) {
  const auto& s = scheme931();
  OnlineRetriever a(s, 100);
  OnlineRetriever b(s, 100);
  Rng rng(31);
  SimTime now = 0;
  for (std::size_t step = 0; step < 40; ++step) {
    now += static_cast<SimTime>(rng.below(500));
    const std::size_t k = 1 + rng.below(12);
    const auto batch = random_batch(rng, k, s.buckets());
    const auto da = a.submit_batch(batch, now);
    const auto db = b.submit_batch(batch, now);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].device, db[i].device);
      EXPECT_EQ(da[i].start, db[i].start);
      EXPECT_EQ(da[i].finish, db[i].finish);
    }
  }
  EXPECT_EQ(a.horizon(), b.horizon());
}

TEST(Workspace, ConcurrentScratchesMatchSerialResults) {
  // One scratch per thread over a shared scheme: any hidden shared state in
  // the workspace path shows up as a divergence (and as a TSan report in
  // the sanitizer stages of scripts/check.sh).
  const auto& s = scheme931();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kTrials = 50;
  std::vector<std::vector<Schedule>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(41 + t);
      RetrievalScratch scratch;
      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        const std::size_t k = 1 + rng.below(2 * s.devices());
        const auto batch = random_batch(rng, k, s.buckets());
        results[t].push_back(retrieve(batch, s, {}, scratch));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    Rng rng(41 + t);
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const std::size_t k = 1 + rng.below(2 * s.devices());
      const auto batch = random_batch(rng, k, s.buckets());
      expect_schedules_equal(results[t][trial], retrieve(batch, s),
                             "concurrent scratch");
    }
  }
}

TEST(PkMemo, CachedEqualsUncachedAndRepeatable) {
  const auto& s = scheme931();
  // Unique seed per run so the first cached call is a genuine miss even if
  // other tests in this binary sampled the same scheme.
  const core::SamplerParams cached{.samples_per_size = 200, .seed = 0xC0FFEE};
  core::SamplerParams uncached = cached;
  uncached.cache = false;
  const auto a = core::sample_optimal_probabilities(s, 12, cached);
  const auto b = core::sample_optimal_probabilities(s, 12, cached);
  const auto c = core::sample_optimal_probabilities(s, 12, uncached);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  ASSERT_EQ(a.size(), 13U);
  EXPECT_EQ(a[0], 1.0);
}

TEST(PkMemo, DistinctKeysDoNotCollide) {
  // max_k well past the scheme's deterministic guarantee so the tail
  // P_k values are genuinely probabilistic (all-1.0 tables would make
  // seed-aliasing invisible).
  const auto& s = scheme931();
  const core::SamplerParams base{.samples_per_size = 100, .seed = 99};
  core::SamplerParams other_seed = base;
  other_seed.seed = 100;
  const auto p_base = core::sample_optimal_probabilities(s, 24, base);
  const auto p_seed = core::sample_optimal_probabilities(s, 24, other_seed);
  const auto p_longer = core::sample_optimal_probabilities(s, 25, base);
  EXPECT_NE(p_base, p_seed);  // different RNG stream
  ASSERT_EQ(p_longer.size(), 26U);
  // A longer table is a different key, but the shared prefix is the same
  // computation (per-size RNG streams).
  for (std::size_t k = 0; k <= 24; ++k) EXPECT_EQ(p_longer[k], p_base[k]);
  // Different scheme, same parameters: must not alias.
  const auto p_other_scheme =
      core::sample_optimal_probabilities(scheme1331(), 24, base);
  EXPECT_NE(p_base, p_other_scheme);
}

TEST(PkMemo, ConcurrentSameKeyCallersShareOneTable) {
  const auto& s = scheme731();
  const core::SamplerParams params{.samples_per_size = 300, .seed = 0xDEAD};
  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<double>> tables(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { tables[t] = core::sample_optimal_probabilities(s, 10, params); });
  }
  for (auto& th : threads) th.join();
  core::SamplerParams uncached = params;
  uncached.cache = false;
  const auto want = core::sample_optimal_probabilities(s, 10, uncached);
  for (const auto& table : tables) EXPECT_EQ(table, want);
}

}  // namespace
}  // namespace flashqos::retrieval
