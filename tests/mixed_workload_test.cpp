// Extension tests: mixed read/write workloads through the QoS pipeline and
// the flashsim write path.
#include <gtest/gtest.h>

#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "flashsim/flash_array.hpp"
#include "trace/workload.hpp"

namespace flashqos {
namespace {

using core::AdmissionMode;
using core::MappingMode;
using core::PipelineConfig;
using core::QosPipeline;
using core::RetrievalMode;
using decluster::DesignTheoretic;

const DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const DesignTheoretic s(d, true);
  return s;
}

TEST(FlashSimWrites, ProgramsAreSlowerThanReads) {
  flashsim::FlashArray a(1, std::make_shared<flashsim::FixedLatencyModel>(100, 700));
  a.submit({.id = 0, .device = 0, .submit_time = 0, .pages = 1, .is_write = false});
  a.submit({.id = 1, .device = 0, .submit_time = 0, .pages = 1, .is_write = true});
  a.run();
  const auto& c = a.completions();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].finish, 100);
  EXPECT_EQ(c[1].finish, 100 + 700);
}

TEST(FlashSimWrites, DetailedModelUsesProgramPulse) {
  const flashsim::DetailedModel m(
      {.cell_read = 30, .cell_program = 500, .transfer = 10, .packages = 1});
  EXPECT_EQ(m.service_time({.pages = 1, .is_write = false}), 40);
  EXPECT_EQ(m.service_time({.pages = 1, .is_write = true}), 510);
  EXPECT_EQ(m.service_time({.pages = 3, .is_write = true}), 530);
}

trace::Trace rw_trace(std::vector<std::tuple<SimTime, DataBlockId, bool>> events) {
  trace::Trace t;
  t.report_interval = kSecond;
  for (const auto& [time, block, is_read] : events) {
    t.events.push_back({.time = time, .block = block, .device = 0,
                        .size_blocks = 1, .is_read = is_read});
  }
  return t;
}

TEST(PipelineWrites, WriteHitsEveryReplica) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  cfg.write_latency = 500 * kMicrosecond;
  QosPipeline pipe(scheme931(), cfg);
  const auto r = pipe.run(rw_trace({{0, 0, false}}));
  ASSERT_EQ(r.outcomes.size(), 1u);
  const auto& o = r.outcomes[0];
  EXPECT_TRUE(o.is_write);
  EXPECT_EQ(o.start, 0);
  // All three replicas are idle: programs run in parallel and the write
  // completes after one program time.
  EXPECT_EQ(o.finish, 500 * kMicrosecond);
  EXPECT_EQ(r.overall.writes, 1u);
  EXPECT_EQ(r.deadline_violations, 0u) << "writes are not read deadline misses";
}

TEST(PipelineWrites, ReadsDeferAroundWrites) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  cfg.write_latency = 10 * kBaseInterval;  // long program to force conflict
  QosPipeline pipe(scheme931(), cfg);
  // Write to bucket 0 occupies devices 0,1,2; a read of bucket 0 right
  // after has no idle replica and must defer until a program finishes.
  const auto r = pipe.run(rw_trace({{0, 0, false}, {1, 0, true}}));
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_TRUE(r.outcomes[0].is_write);
  const auto& read = r.outcomes[1];
  EXPECT_FALSE(read.is_write);
  EXPECT_TRUE(read.deferred());
  EXPECT_GE(read.start, 10 * kBaseInterval) << "read waits out the programs";
  EXPECT_EQ(read.response(), kPageReadLatency)
      << "once admitted, the read still meets its guarantee";
  EXPECT_EQ(r.deadline_violations, 0u);
}

TEST(PipelineWrites, WritesBypassReadAdmission) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  cfg.write_latency = kPageReadLatency;
  QosPipeline pipe(scheme931(), cfg);
  // 5 reads (the full budget) plus 2 writes at the same instant: the
  // writes must not push reads over the admission limit.
  std::vector<std::tuple<SimTime, DataBlockId, bool>> events;
  events.emplace_back(0, 30, false);
  events.emplace_back(0, 33, false);
  for (DataBlockId b = 0; b < 5; ++b) events.emplace_back(0, b * 4, true);
  const auto r = pipe.run(rw_trace(events));
  std::size_t deferred_reads = 0;
  for (const auto& o : r.outcomes) {
    if (!o.is_write && o.deferred()) ++deferred_reads;
  }
  // Reads can defer because the writes occupy devices, but not because of
  // the S budget: at most the reads whose replicas all collide with
  // write-busy devices wait.
  EXPECT_EQ(r.overall.writes, 2u);
  EXPECT_EQ(r.deadline_violations, 0u);
}

TEST(PipelineWrites, MixedWorkloadEndToEnd) {
  auto p = trace::exchange_params(0.25, 33);
  p.report_intervals = 12;
  p.write_fraction = 0.2;
  const auto t = trace::generate_workload(p);
  std::size_t trace_writes = 0;
  for (const auto& e : t.events) {
    if (!e.is_read) ++trace_writes;
  }
  ASSERT_GT(trace_writes, 0u);
  ASSERT_LT(trace_writes, t.events.size());

  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kFim;
  QosPipeline pipe(scheme931(), cfg);
  const auto r = pipe.run(t);
  EXPECT_EQ(r.overall.writes, trace_writes);
  EXPECT_EQ(r.deadline_violations, 0u)
      << "admitted reads keep the guarantee even with writes in the mix";
  EXPECT_GT(r.overall.avg_write_ms, 0.0);
  // Per-request conservation still holds.
  for (const auto& o : r.outcomes) {
    if (o.failed) continue;
    EXPECT_GE(o.start, o.dispatch);
    EXPECT_GT(o.finish, o.start);
  }
}

TEST(PipelineWrites, WriteFractionRaisesReadDeferral) {
  auto base = trace::exchange_params(0.25, 55);
  base.report_intervals = 12;
  auto heavy = base;
  heavy.write_fraction = 0.3;
  const auto t_ro = trace::generate_workload(base);
  const auto t_rw = trace::generate_workload(heavy);

  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  const auto r_ro = QosPipeline(scheme931(), cfg).run(t_ro);
  const auto r_rw = QosPipeline(scheme931(), cfg).run(t_rw);
  EXPECT_GT(r_rw.overall.pct_deferred, r_ro.overall.pct_deferred)
      << "programs occupy replicas, so more reads miss the idle window";
}

}  // namespace
}  // namespace flashqos
