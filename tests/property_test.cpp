// Property-based sweeps over the framework's core invariants (DESIGN.md's
// "Key invariants" list), parameterized across designs and batch sizes.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/qos_pipeline.hpp"
#include "core/sampler.hpp"
#include "decluster/schemes.hpp"
#include "design/catalog.hpp"
#include "design/constructions.hpp"
#include "retrieval/dtr.hpp"
#include "retrieval/maxflow.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"
#include "verify/guarantee.hpp"
#include "verify/invariants.hpp"

namespace flashqos {
namespace {

using decluster::DesignTheoretic;

// Invariant 2: the guarantee S(c, M) holds on every catalog design, for
// random batches with replacement, verified by the exact solver.
class CatalogGuarantee : public ::testing::TestWithParam<std::string> {
 protected:
  static const design::CatalogEntry& entry(const std::string& name) {
    for (const auto& e : design::catalog()) {
      if (e.name == name) return e;
    }
    throw std::runtime_error("catalog entry missing: " + name);
  }
};

TEST_P(CatalogGuarantee, RandomBatchesWithinLimitScheduleWithinBudget) {
  const auto& e = entry(GetParam());
  const auto d = e.make();
  const DesignTheoretic scheme(d, true);
  Rng rng(std::hash<std::string>{}(e.name));
  for (std::uint32_t m = 1; m <= 2; ++m) {
    // Distinct buckets: the guarantee is a statement about sets (see the
    // GuaranteeSweep note in retrieval_test.cpp).
    const auto limit =
        std::min<std::uint64_t>(design::guarantee_buckets(e.copies, m),
                                scheme.buckets());
    for (int trial = 0; trial < 120; ++trial) {
      const std::size_t k = 1 + rng.below(limit);
      std::vector<BucketId> batch;
      for (const auto b : rng.sample_without_replacement(scheme.buckets(), k)) {
        batch.push_back(static_cast<BucketId>(b));
      }
      const auto s = retrieval::retrieve(batch, scheme);
      EXPECT_LE(s.rounds, m) << e.name << " k=" << k;
      EXPECT_TRUE(valid_schedule(batch, scheme, s));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, CatalogGuarantee,
                         ::testing::Values("(7,3,1)", "(9,3,1)", "(13,3,1)",
                                           "(13,4,1)", "(15,3,1)", "(19,3,1)",
                                           "(25,5,1)"));

// The same designs through the full verifier subsystem: structure, bucket
// table, allocation, mapper, retrieval cross-checks and the S-bound in one
// oracle (src/verify recomputes everything from first principles).
TEST_P(CatalogGuarantee, VerifierOracleConfirmsAllInvariants) {
  const auto& e = entry(GetParam());
  verify::CatalogCheckParams params;
  params.guarantee.exhaustive_budget = 25000;  // exhaustive only for (7,3,1)
  params.guarantee.sampled_trials = 30;
  params.retrieval.trials = 15;
  const auto report = verify::verify_catalog_entry(e, params);
  EXPECT_TRUE(report.passed()) << report.to_string();
}

// Invariant 4: DTR rounds >= optimal rounds >= ceil(b/N), with equality of
// DTR and optimal on sizes within the guarantee.
TEST(DtrChain, RoundInequalitiesHold) {
  const auto d = design::make_13_3_1();
  const DesignTheoretic scheme(d, true);
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t k = 1 + rng.below(40);
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto fast = retrieval::dtr_schedule(batch, scheme);
    const auto exact = retrieval::optimal_schedule(batch, scheme);
    const auto lower = design::optimal_accesses(k, scheme.devices());
    EXPECT_GE(fast.rounds, exact.rounds);
    EXPECT_GE(exact.rounds, lower);
  }
}

// Invariant: a schedule from the solver is itself a certificate — check it
// independently (device multiplicity per round == 1).
TEST(ScheduleCertificate, SolverOutputSelfValidates) {
  const decluster::RandomDuplicate scheme(11, 2, 60, 5);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(30);
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto s = retrieval::optimal_schedule(batch, scheme);
    EXPECT_TRUE(valid_schedule(batch, scheme, s));
  }
}

// Invariant 6 at the pipeline level: every request is served exactly once,
// dispatch >= arrival, service never shrinks, per-device no overlap.
TEST(PipelineConservation, HoldsOnRandomTraces) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    trace::Trace t;
    t.volumes = 0;
    t.report_interval = 50 * kBaseInterval;
    SimTime now = 0;
    for (int i = 0; i < 400; ++i) {
      now += static_cast<SimTime>(rng.below(kBaseInterval / 2));
      const std::size_t burst = 1 + rng.below(4);
      for (std::size_t b = 0; b < burst; ++b) {
        t.events.push_back(
            {.time = now, .block = rng.below(36), .device = 0});
      }
    }
    core::PipelineConfig cfg;
    cfg.retrieval = trial % 2 == 0 ? core::RetrievalMode::kOnline
                                   : core::RetrievalMode::kIntervalAligned;
    cfg.admission = core::AdmissionMode::kDeterministic;
    cfg.mapping = core::MappingMode::kModulo;
    const auto r = core::QosPipeline(scheme, cfg).run(t);
    ASSERT_EQ(r.outcomes.size(), t.events.size());

    std::vector<std::vector<std::pair<SimTime, SimTime>>> busy(scheme.devices());
    for (const auto& o : r.outcomes) {
      EXPECT_GE(o.dispatch, o.arrival);
      EXPECT_GE(o.start, o.dispatch);
      EXPECT_EQ(o.finish - o.start, kPageReadLatency);
      busy[o.device].emplace_back(o.start, o.finish);
    }
    for (auto& spans : busy) {
      std::sort(spans.begin(), spans.end());
      for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i].first, spans[i - 1].second);
      }
    }
  }
}

// Invariant 7: statistical admission keeps the realized non-optimal-
// retrieval rate near ε on a stationary over-limit workload.
TEST(StatisticalBudget, RealizedMissRateBounded) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  const auto p_table =
      core::sample_optimal_probabilities(scheme, 12, {.samples_per_size = 3000});
  // Stationary workload: 7 requests at every interval start (above S = 5).
  const auto t = trace::generate_synthetic({.bucket_pool = 36,
                                            .requests_per_interval = 7,
                                            .total_requests = 7000,
                                            .seed = 13});
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kIntervalAligned;
  cfg.admission = core::AdmissionMode::kStatistical;
  cfg.mapping = core::MappingMode::kModulo;
  cfg.epsilon = 0.10;
  cfg.p_table = p_table;
  const auto r = core::QosPipeline(scheme, cfg).run(t);

  // Intervals that accepted all 7 may retrieve in 2 accesses instead of 1;
  // the fraction of intervals that exceed 1 access must stay near the
  // sampled miss rate and well under a loose multiple of ε.
  std::size_t over = 0, intervals = 0;
  std::size_t i = 0;
  const auto& out = r.outcomes;
  while (i < out.size()) {
    std::size_t j = i;
    SimTime latest = 0;
    while (j < out.size() && out[j].arrival == out[i].arrival) {
      if (!out[j].deferred()) latest = std::max(latest, out[j].finish - out[j].dispatch);
      ++j;
    }
    ++intervals;
    if (latest > kPageReadLatency) ++over;
    i = j;
  }
  const double realized = static_cast<double>(over) / static_cast<double>(intervals);
  EXPECT_LT(realized, 0.25) << "miss rate must be bounded by the ε machinery";
}

// Invariant 1 restated as a sweep over *partial* designs: dropping blocks
// from a Steiner system keeps pair coverage <= 1 (a usable linear space).
TEST(PartialDesigns, RemainLinearSpaces) {
  const auto d = design::make_13_3_1();
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    auto blocks = d.blocks();
    rng.shuffle(blocks);
    blocks.resize(10 + rng.below(10));
    const design::BlockDesign partial(13, blocks, "partial");
    EXPECT_TRUE(partial.is_linear_space());
    EXPECT_FALSE(partial.is_steiner());
  }
}

// Determinism: the whole pipeline is bit-stable given a seed.
TEST(Determinism, PipelineResultsAreReproducible) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  const auto t = trace::generate_synthetic({.bucket_pool = 36,
                                            .requests_per_interval = 6,
                                            .total_requests = 600,
                                            .seed = 99});
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kIntervalAligned;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kModulo;
  const auto a = core::QosPipeline(scheme, cfg).run(t);
  const auto b = core::QosPipeline(scheme, cfg).run(t);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].device, b.outcomes[i].device);
    EXPECT_EQ(a.outcomes[i].start, b.outcomes[i].start);
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish);
  }
}

}  // namespace
}  // namespace flashqos
