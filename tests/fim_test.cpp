// Unit + property tests for src/fim: apriori vs eclat vs naive agreement,
// support semantics, pruning, canonical transaction form.
#include <gtest/gtest.h>

#include "fim/apriori.hpp"
#include "util/rng.hpp"

namespace flashqos::fim {
namespace {

TransactionDb tiny_db() {
  TransactionDb db;
  db.add({1, 2, 3});
  db.add({1, 2});
  db.add({2, 3});
  db.add({1, 2, 4});
  return db;
}

TEST(TransactionDb, CanonicalizesTransactions) {
  TransactionDb db;
  db.add({5, 3, 5, 1, 3});
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.transactions()[0], (std::vector<Item>{1, 3, 5}));
  EXPECT_EQ(db.total_items(), 3u);
}

TEST(TransactionDb, DropsEmptyTransactions) {
  TransactionDb db;
  db.add({});
  EXPECT_TRUE(db.empty());
}

TEST(Apriori, CountsSupportsExactly) {
  const auto res = mine_pairs_apriori(tiny_db(), 1);
  // Expected pairs: (1,2):3 (1,3):1 (2,3):2 (1,4):1 (2,4):1
  ASSERT_EQ(res.pairs.size(), 5u);
  EXPECT_EQ(res.pairs[0], (FrequentPair{1, 2, 3}));
  EXPECT_EQ(res.pairs[1], (FrequentPair{1, 3, 1}));
  EXPECT_EQ(res.pairs[2], (FrequentPair{1, 4, 1}));
  EXPECT_EQ(res.pairs[3], (FrequentPair{2, 3, 2}));
  EXPECT_EQ(res.pairs[4], (FrequentPair{2, 4, 1}));
}

TEST(Apriori, MinSupportFilters) {
  const auto res = mine_pairs_apriori(tiny_db(), 2);
  ASSERT_EQ(res.pairs.size(), 2u);
  EXPECT_EQ(res.pairs[0], (FrequentPair{1, 2, 3}));
  EXPECT_EQ(res.pairs[1], (FrequentPair{2, 3, 2}));
}

TEST(Apriori, PassOnePrunesInfrequentItems) {
  const auto res = mine_pairs_apriori(tiny_db(), 3);
  // Only items 1 (support 3) and 2 (support 4) survive pass 1.
  EXPECT_EQ(res.frequent_items, 2u);
  ASSERT_EQ(res.pairs.size(), 1u);
  EXPECT_EQ(res.pairs[0], (FrequentPair{1, 2, 3}));
}

TEST(Apriori, EmptyDb) {
  const auto res = mine_pairs_apriori(TransactionDb{}, 1);
  EXPECT_TRUE(res.pairs.empty());
  EXPECT_EQ(res.transactions, 0u);
}

TEST(Apriori, ZeroSupportTreatedAsOne) {
  const auto res = mine_pairs_apriori(tiny_db(), 0);
  EXPECT_EQ(res.pairs.size(), 5u);
}

TEST(Apriori, ReportsInstrumentation) {
  const auto res = mine_pairs_apriori(tiny_db(), 1);
  EXPECT_EQ(res.transactions, 4u);
  EXPECT_EQ(res.total_items, 10u);
  EXPECT_GE(res.elapsed_seconds, 0.0);
  EXPECT_GT(res.peak_memory_bytes, 0u);
}

TEST(Eclat, MatchesAprioriOnTinyDb) {
  for (const std::uint64_t support : {1u, 2u, 3u}) {
    const auto a = mine_pairs_apriori(tiny_db(), support);
    const auto e = mine_pairs_eclat(tiny_db(), support);
    EXPECT_EQ(a.pairs, e.pairs) << "support=" << support;
  }
}

// Property: on random databases, apriori == eclat == naive for every
// support level.
class MinerAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinerAgreement, AllThreeMinersAgree) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  TransactionDb db;
  const std::size_t txs = 20 + rng.below(80);
  for (std::size_t t = 0; t < txs; ++t) {
    std::vector<Item> items;
    const std::size_t len = 1 + rng.below(8);
    for (std::size_t i = 0; i < len; ++i) items.push_back(rng.below(25));
    db.add(std::move(items));
  }
  for (const std::uint64_t support : {1u, 2u, 3u, 5u}) {
    const auto a = mine_pairs_apriori(db, support);
    const auto e = mine_pairs_eclat(db, support);
    const auto n = mine_pairs_naive(db, support);
    EXPECT_EQ(a.pairs, n) << "apriori vs naive, support=" << support;
    EXPECT_EQ(e.pairs, n) << "eclat vs naive, support=" << support;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDbs, MinerAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Apriori, LargeItemIdsSupported) {
  TransactionDb db;
  const Item big1 = 0xFFFFFFFF12345678ULL;
  const Item big2 = 0xFFFFFFFF12345679ULL;
  db.add({big1, big2});
  db.add({big1, big2});
  const auto res = mine_pairs_apriori(db, 2);
  ASSERT_EQ(res.pairs.size(), 1u);
  EXPECT_EQ(res.pairs[0].a, big1);
  EXPECT_EQ(res.pairs[0].b, big2);
  EXPECT_EQ(res.pairs[0].support, 2u);
}

TEST(Apriori, SupportCapsAtTransactionCount) {
  TransactionDb db;
  for (int i = 0; i < 10; ++i) db.add({7, 8});
  const auto res = mine_pairs_apriori(db, 1);
  ASSERT_EQ(res.pairs.size(), 1u);
  EXPECT_EQ(res.pairs[0].support, 10u);
}

}  // namespace
}  // namespace flashqos::fim
