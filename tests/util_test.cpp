// Unit tests for src/util: rng determinism and distributions, statistics
// accumulators, histograms, time conversions, table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace flashqos {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kSamples, 2.5, 0.1);
}

TEST(Rng, ZipfRankZeroMostPopular) {
  Rng rng(17);
  constexpr int kSamples = 50000;
  std::vector<int> counts(10, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.zipf(10, 1.0)];
  // With s = 1 the top rank should dominate and counts decay monotonically
  // (allow sampling noise at the tail).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[0], kSamples / 5);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(19);
  constexpr int kSamples = 50000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.zipf(5, 0.0)];
  for (const int c : counts) EXPECT_NEAR(c, kSamples / 5, kSamples / 5 * 0.1);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto s = rng.sample_without_replacement(100, k);
    EXPECT_EQ(s.size(), k);
    const std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (const auto v : s) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  const Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSinglePass) {
  Rng rng(31);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Time, RoundTripConversions) {
  EXPECT_EQ(from_ms(0.133), 133 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_ms(kPageReadLatency), 0.132507);
  EXPECT_EQ(from_us(1.0), kMicrosecond);
  EXPECT_DOUBLE_EQ(to_sec(kSecond), 1.0);
}

TEST(Time, IntervalArithmetic) {
  const SimTime T = 100;
  EXPECT_EQ(interval_index(0, T), 0);
  EXPECT_EQ(interval_index(99, T), 0);
  EXPECT_EQ(interval_index(100, T), 1);
  EXPECT_EQ(next_interval_start(0, T), 0);
  EXPECT_EQ(next_interval_start(1, T), 100);
  EXPECT_EQ(next_interval_start(100, T), 100);
  EXPECT_EQ(next_interval_start(101, T), 200);
}

TEST(Table, FormatsAlignedRows) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(Table::ms(0.132507, 3), "0.133 ms");
}

}  // namespace
}  // namespace flashqos

#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace flashqos {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait();  // no tasks: must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  parallel_for(pool, 50, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

// TSan-oriented stress: an external producer keeps submitting while the
// main thread sits in wait(). Every submitted task must run exactly once
// and wait() must only return with the queue drained at that instant.
TEST(ThreadPoolStress, ConcurrentSubmitDuringWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kProducerTasks = 400;
  std::thread producer([&] {
    for (int i = 0; i < kProducerTasks; ++i) {
      pool.submit([&counter] { ++counter; });
      if (i % 64 == 0) std::this_thread::yield();
    }
  });
  // Interleave waits with the producer's submissions; each wait observes
  // some consistent drained state, never a torn one.
  for (int i = 0; i < 50; ++i) pool.wait();
  producer.join();
  pool.wait();
  EXPECT_EQ(counter.load(), kProducerTasks);
}

TEST(ThreadPoolStress, ManyProducersManyWaiters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait();
  EXPECT_EQ(counter.load(), kProducers * kPerProducer);
}

TEST(ThreadPoolStress, ZeroTaskWaitFromManyThreads) {
  ThreadPool pool(2);
  std::vector<std::thread> waiters;
  waiters.reserve(4);
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&pool] {
      for (int j = 0; j < 100; ++j) pool.wait();
    });
  }
  for (auto& t : waiters) t.join();
}

// Regression: a throwing task submitted through the future-returning batch
// path must deliver its exception to the caller via future::get(), not
// escape on a worker thread (which would std::terminate the process).
TEST(ThreadPool, SubmitWithFutureDeliversException) {
  ThreadPool pool(2);
  auto ok = pool.submit_with_future([] {});
  auto bad = pool.submit_with_future(
      [] { throw std::runtime_error("task failed"); });
  ok.get();  // must not throw
  try {
    bad.get();
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  pool.wait();  // the pool survives a thrown task and stays usable
  auto after = pool.submit_with_future([] {});
  after.get();
}

TEST(ThreadPool, SubmitWithFutureCompletionOrderIndependent) {
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit_with_future([&ran] { ++ran; }));
  }
  // get() in submission order regardless of execution order.
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 64);
}

// parallel_for must rethrow the failure of the *lowest* index, matching
// what a serial loop would have surfaced first, and still complete or skip
// the remaining work without wedging the pool.
TEST(ThreadPool, ParallelForPropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    parallel_for(pool, 100, [](std::size_t i) {
      if (i % 7 == 3) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
    FAIL() << "parallel_for swallowed the error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 3");
  }
  // Pool remains usable afterwards.
  std::atomic<int> counter{0};
  parallel_for(pool, 10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

// Destruction with work still queued: the destructor must drain the queue,
// not drop it — every task submitted before ~ThreadPool runs to completion.
TEST(ThreadPoolStress, DestructionDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  constexpr int kTasks = 300;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // No wait(): destructor races the queue.
  }
  EXPECT_EQ(counter.load(), kTasks);
}

// ------------------------------------------------------- contract macros

TEST(ContractDeathTest, ExpectAbortsWithDiagnostics) {
  EXPECT_DEATH(FLASHQOS_EXPECT(1 + 1 == 3, "arithmetic is broken"),
               "precondition.*1 \\+ 1 == 3.*arithmetic is broken");
}

TEST(ContractDeathTest, ExpectIsSilentWhenSatisfied) {
  FLASHQOS_EXPECT(1 + 1 == 2, "never printed");
  SUCCEED();
}

TEST(ContractDeathTest, AssertFollowsBuildMode) {
#ifdef NDEBUG
  FLASHQOS_ASSERT(false, "compiled out in release builds");
  SUCCEED();
#else
  EXPECT_DEATH(FLASHQOS_ASSERT(false, "debug invariant"),
               "invariant.*debug invariant");
#endif
}

TEST(ContractDeathTest, AssertNeverEvaluatesInRelease) {
  // NDEBUG builds must not even evaluate the condition expression.
  int evaluations = 0;
  const auto probe = [&evaluations] {
    ++evaluations;
    return true;
  };
  FLASHQOS_ASSERT(probe(), "unused");
#ifdef NDEBUG
  (void)probe;
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(ContractDeathTest, SubmittingEmptyTaskDies) {
  ThreadPool pool(1);
  EXPECT_DEATH(pool.submit(nullptr), "empty task");
}

}  // namespace
}  // namespace flashqos
