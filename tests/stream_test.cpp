// Unit tests for the streaming trace path: chunk-boundary framing in the
// byte-source line scanner, file-cursor ≡ in-memory-reader identity,
// structured parse-error handling, cursor reset, the run_stream batch-size
// sweep, and the single-pass streaming statistics.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "trace/cursor.hpp"
#include "trace/disksim_format.hpp"
#include "trace/msr_format.hpp"
#include "trace/stats.hpp"
#include "trace/stream_reader.hpp"
#include "trace/synthetic.hpp"

namespace flashqos::trace {
namespace {

void expect_same_events(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const auto& x = a.events[i];
    const auto& y = b.events[i];
    EXPECT_EQ(x.time, y.time) << "event " << i;
    EXPECT_EQ(x.block, y.block) << "event " << i;
    EXPECT_EQ(x.device, y.device) << "event " << i;
    EXPECT_EQ(x.size_blocks, y.size_blocks) << "event " << i;
    EXPECT_EQ(x.is_read, y.is_read) << "event " << i;
  }
}

Trace small_trace() {
  SyntheticParams p;
  p.bucket_pool = 36;
  p.requests_per_interval = 4;
  p.total_requests = 200;
  p.seed = 7;
  return generate_synthetic(p);
}

DisksimCursor disksim_cursor_over(std::string text, std::size_t chunk_bytes,
                                  const Trace& like,
                                  std::size_t max_diags = 64) {
  return DisksimCursor(
      std::make_unique<MemoryByteSource>(std::move(text), chunk_bytes),
      like.name, like.volumes, like.report_interval, max_diags);
}

TEST(StreamReader, ChunkBoundariesNeverChangeTheParse) {
  const auto t = small_trace();
  std::ostringstream out;
  write_disksim_ascii(t, out);
  const std::string text = out.str();
  // Every chunk size — including 1 byte, where every record straddles a
  // chunk edge — must frame the identical event stream.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{61}, std::size_t{1} << 20}) {
    auto cursor = disksim_cursor_over(text, chunk, t);
    const auto got = drain_cursor(cursor);
    EXPECT_EQ(cursor.parse_errors(), 0u) << "chunk=" << chunk;
    expect_same_events(t, got);
  }
}

TEST(StreamReader, MatchesInMemoryReaderOnTheSameBytes) {
  const auto t = small_trace();
  std::ostringstream out;
  write_disksim_ascii(t, out);
  const std::string text = out.str();
  std::istringstream in(text);
  const auto want =
      read_disksim_ascii(in, t.name, t.volumes, t.report_interval);
  auto cursor = disksim_cursor_over(text, 17, t);
  expect_same_events(want, drain_cursor(cursor));
}

TEST(StreamReader, CrlfCommentsBlanksAndMissingFinalNewline) {
  Trace like;
  like.name = "framing";
  like.volumes = 4;
  like.report_interval = kMillisecond;
  const std::string text =
      "# header comment\r\n"
      "\r\n"
      "0.5 1 100 16 1\r\n"
      "\n"
      "1.5 2 200 32 0\n"
      "2.5 3 300 16 1";  // final line without a newline
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{64}}) {
    auto cursor = disksim_cursor_over(text, chunk, like);
    const auto got = drain_cursor(cursor);
    EXPECT_EQ(cursor.parse_errors(), 0u);
    ASSERT_EQ(got.events.size(), 3u);
    EXPECT_EQ(got.events[0].time, from_ms(0.5));
    EXPECT_EQ(got.events[1].device, 2u);
    EXPECT_EQ(got.events[1].size_blocks, 2u);
    EXPECT_FALSE(got.events[1].is_read);
    EXPECT_EQ(got.events[2].block, 300u);
  }
}

TEST(StreamReader, MalformedLinesAreSkippedCountedAndCapped) {
  Trace like;
  like.name = "errors";
  like.volumes = 4;
  like.report_interval = kMillisecond;
  const std::string text =
      "0.5 1 100 16 1\n"
      "garbage\n"              // malformed (line 2)
      "1.5 2 200 17 1\n"       // sectors not 8KB-aligned (line 3)
      "0.2 3 300 16 1\n"       // out of order vs last accepted (line 4)
      "2.5 9 400 16 1\n"       // device >= volumes (line 5)
      "3.5 3 500 16 1\n";
  auto cursor = disksim_cursor_over(text, 8, like, /*max_diags=*/2);
  const auto got = drain_cursor(cursor);
  ASSERT_EQ(got.events.size(), 2u);  // only the two clean in-order lines
  EXPECT_EQ(got.events[0].block, 100u);
  EXPECT_EQ(got.events[1].block, 500u);
  EXPECT_EQ(cursor.parse_errors(), 4u);  // counting continues past the cap
  ASSERT_EQ(cursor.diagnostics().size(), 2u);  // retention is capped
  EXPECT_EQ(cursor.diagnostics()[0].line, 2u);
  EXPECT_EQ(cursor.diagnostics()[1].line, 3u);
}

TEST(StreamReader, EmptyInputYieldsNothing) {
  Trace like;
  like.volumes = 1;
  like.report_interval = kMillisecond;
  auto cursor = disksim_cursor_over("", 8, like);
  const auto got = drain_cursor(cursor);
  EXPECT_TRUE(got.events.empty());
  EXPECT_EQ(cursor.parse_errors(), 0u);
}

TEST(StreamReader, ResetReplaysBitIdentically) {
  const auto t = small_trace();
  std::ostringstream out;
  write_disksim_ascii(t, out);
  auto cursor = disksim_cursor_over(out.str(), 13, t);
  const auto first = drain_cursor(cursor);
  cursor.reset();
  EXPECT_EQ(cursor.parse_errors(), 0u);
  const auto second = drain_cursor(cursor);
  expect_same_events(first, second);
}

TEST(StreamReader, MsrCursorMatchesInMemoryReader) {
  const auto t = small_trace();
  std::ostringstream out;
  write_msr_csv(t, out);
  const std::string text = out.str();
  MsrReadOptions opts;
  // The streaming reader cannot infer max-disk+1; synthetic traces leave
  // volumes at 0, so pin the single volume explicitly on both readers.
  opts.volumes = 1;
  opts.report_interval = t.report_interval;
  std::istringstream in(text);
  const auto want = read_msr_csv(in, t.name, opts);
  MsrCursor cursor(std::make_unique<MemoryByteSource>(text, 19), t.name,
                   opts);
  const auto got = drain_cursor(cursor);
  EXPECT_EQ(cursor.parse_errors(), 0u);
  expect_same_events(want, got);
}

TEST(StreamingStats, MatchesTheInMemoryIntervalStats) {
  const auto t = small_trace();
  const SimTime window = t.report_interval / 20;
  const auto want = interval_stats(t, window);

  StreamingTraceStats stats(t.report_interval, window);
  for (const auto& e : t.events) stats.add(e);
  stats.finish();
  ASSERT_EQ(stats.intervals().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(stats.intervals()[i].total_reads, want[i].total_reads);
    EXPECT_DOUBLE_EQ(stats.intervals()[i].avg_reads_per_sec,
                     want[i].avg_reads_per_sec);
    EXPECT_DOUBLE_EQ(stats.intervals()[i].max_reads_per_sec,
                     want[i].max_reads_per_sec);
  }

  VectorCursor cursor(t);
  const auto streamed = interval_stats(cursor, window);
  ASSERT_EQ(streamed.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(streamed[i].total_reads, want[i].total_reads);
    EXPECT_DOUBLE_EQ(streamed[i].avg_reads_per_sec,
                     want[i].avg_reads_per_sec);
    EXPECT_DOUBLE_EQ(streamed[i].max_reads_per_sec,
                     want[i].max_reads_per_sec);
  }
}

// The batch-size sweep: the streaming engine's results are exactly run()'s
// whatever the cursor hands it per fill() call. (The full identity —
// metric registry, windowed time-series, parallel engine, generator and
// file cursors, mutation trip — is flashqos_verify --stream.)
TEST(StreamReplay, BatchSizeNeverChangesTheResult) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  const auto t = small_trace();
  for (const bool aligned : {false, true}) {
    core::PipelineConfig cfg;
    if (aligned) cfg.retrieval = core::RetrievalMode::kIntervalAligned;
    const auto want = core::QosPipeline(scheme, cfg).run(t);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{4096}}) {
      VectorCursor cursor(t);
      const auto got = core::QosPipeline(scheme, cfg).run_stream(
          cursor, nullptr, {.batch_size = batch});
      EXPECT_EQ(got.requests, want.outcomes.size());
      EXPECT_EQ(got.deadline_violations, want.deadline_violations);
      ASSERT_EQ(got.intervals.size(), want.intervals.size());
      const auto expect_report_eq = [&](const core::IntervalReport& a,
                                        const core::IntervalReport& b) {
        EXPECT_EQ(a.requests, b.requests);
        EXPECT_DOUBLE_EQ(a.avg_response_ms, b.avg_response_ms);
        EXPECT_DOUBLE_EQ(a.max_response_ms, b.max_response_ms);
        EXPECT_DOUBLE_EQ(a.avg_e2e_ms, b.avg_e2e_ms);
        EXPECT_EQ(a.deferred, b.deferred);
        EXPECT_DOUBLE_EQ(a.avg_delay_ms, b.avg_delay_ms);
        EXPECT_EQ(a.failed, b.failed);
        EXPECT_EQ(a.writes, b.writes);
      };
      for (std::size_t i = 0; i < want.intervals.size(); ++i) {
        expect_report_eq(want.intervals[i], got.intervals[i]);
      }
      expect_report_eq(want.overall, got.overall);
    }
  }
}

}  // namespace
}  // namespace flashqos::trace
