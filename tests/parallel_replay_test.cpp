// Determinism-equivalence suite for the parallel replay engine: every
// result it produces must be bit-identical to the serial QosPipeline — per
// mode combination, under failure windows, for any thread count or
// handoff-queue capacity, and through the sharded sweep paths.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/experiment.hpp"
#include "core/parallel_replay.hpp"
#include "core/sampler.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "trace/synthetic.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"
#include "verify/replay_equivalence.hpp"

using namespace flashqos;

namespace {

const decluster::DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const decluster::DesignTheoretic s(d, true);
  return s;
}

trace::Trace exchange_small() {
  return trace::generate_workload(trace::exchange_params(0.02, 2012));
}

trace::Trace synthetic_small() {
  trace::SyntheticParams p;
  p.bucket_pool = scheme931().buckets();
  p.requests_per_interval = 4;
  p.total_requests = 1500;
  p.seed = 7;
  return trace::generate_synthetic(p);
}

core::PipelineConfig aligned_fim() {
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kIntervalAligned;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kFim;
  return cfg;
}

void expect_identical(const core::PipelineResult& serial,
                      const core::PipelineResult& parallel, const char* what) {
  std::string why;
  EXPECT_TRUE(verify::results_identical(serial, parallel, &why))
      << what << ": " << why;
}

// The full oracle: every {RetrievalMode × AdmissionMode × MappingMode ×
// SchedulerMode} combination on a synthetic trace and on a truncated
// Exchange-style trace, plus failure windows and a mixed sweep. One gtest
// assertion per oracle check so a regression names the exact combination.
TEST(ParallelReplayEquivalence, AllModeCombinations) {
  const auto report = verify::verify_replay_equivalence(
      scheme931(), {.threads = 4, .trace_scale = 0.02, .seed = 2012,
                    .p_samples = 120});
  for (const auto& check : report.checks()) {
    EXPECT_TRUE(check.passed) << check.name << ": " << check.detail;
  }
  EXPECT_GE(report.checks().size(), 2u * 3u * 2u * 2u * 2u);
}

TEST(ParallelReplayEquivalence, AlignedFimExchangeDirect) {
  const auto t = exchange_small();
  const auto cfg = aligned_fim();
  const auto serial = core::QosPipeline(scheme931(), cfg).run(t);
  core::ParallelReplayEngine engine({.threads = 4});
  expect_identical(serial, engine.run(scheme931(), cfg, t), "aligned/det/fim");
  // Sanity that the comparison is not vacuous: the trace actually
  // exercises deferrals and FIM matches.
  EXPECT_GT(serial.overall.requests, 500u);
  EXPECT_GT(serial.overall.fim_match_rate, 0.0);
}

TEST(ParallelReplayEquivalence, ThreadCountInvariance) {
  const auto t = exchange_small();
  const auto cfg = aligned_fim();
  const auto serial = core::QosPipeline(scheme931(), cfg).run(t);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::ParallelReplayEngine engine({.threads = threads});
    std::ostringstream what;
    what << "threads=" << threads;
    expect_identical(serial, engine.run(scheme931(), cfg, t), what.str().c_str());
  }
}

// Capacity-1 handoff queue maximizes backpressure blocking on both sides;
// results must not change.
TEST(ParallelReplayEquivalence, LookaheadOneStillIdentical) {
  const auto t = exchange_small();
  const auto cfg = aligned_fim();
  const auto serial = core::QosPipeline(scheme931(), cfg).run(t);
  core::ParallelReplayEngine engine({.threads = 4, .mining_lookahead = 1});
  expect_identical(serial, engine.run(scheme931(), cfg, t), "lookahead=1");
}

TEST(ParallelReplayEquivalence, DeviceFailureWindows) {
  const auto t = synthetic_small();
  for (const auto retrieval : {core::RetrievalMode::kIntervalAligned,
                               core::RetrievalMode::kOnline}) {
    auto cfg = aligned_fim();
    cfg.retrieval = retrieval;
    cfg.mapping = core::MappingMode::kModulo;  // bucket-domain trace
    cfg.faults.outages.push_back(
        {.device = 2, .fail_at = 0, .recover_at = from_ms(50.0)});
    cfg.faults.outages.push_back({.device = 5,
                            .fail_at = from_ms(10.0),
                            .recover_at = core::DeviceFailure::kNeverRecovers});
    const auto serial = core::QosPipeline(scheme931(), cfg).run(t);
    core::ParallelReplayEngine engine({.threads = 3});
    expect_identical(serial, engine.run(scheme931(), cfg, t), "failures");
  }
}

// Randomized full fault plans — scripted outages plus seeded transient /
// spike generators, rebuild, and retry timeouts — must also replay
// bit-identically: the compiled schedule is a pure function of the config,
// so every shard sees the same faults.
TEST(ParallelReplayEquivalence, RandomizedFaultPlans) {
  const auto t = synthetic_small();
  Rng g(331);
  core::ParallelReplayEngine engine({.threads = 3});
  for (int round = 0; round < 4; ++round) {
    auto cfg = aligned_fim();
    cfg.retrieval = round % 2 == 0 ? core::RetrievalMode::kOnline
                                   : core::RetrievalMode::kIntervalAligned;
    cfg.mapping = core::MappingMode::kModulo;  // bucket-domain trace
    cfg.faults.seed = g.below(1000);
    cfg.faults.transient = {.count = static_cast<std::uint32_t>(1 + g.below(3)),
                            .mean_duration = from_ms(2.0)};
    cfg.faults.latency_spike = {
        .count = static_cast<std::uint32_t>(g.below(3)),
        .mean_duration = from_ms(1.0),
        .factor = 2.0 + static_cast<double>(g.below(3))};
    if (round % 2 == 0) {
      cfg.faults.outages.push_back(
          {.device = static_cast<DeviceId>(g.below(9)),
           .fail_at = from_ms(5.0),
           .recover_at = core::DeviceFailure::kNeverRecovers});
      cfg.faults.rebuild.pages_per_second = 30000.0;
    }
    if (round == 3) cfg.faults.retry.timeout = from_ms(3.0);
    const auto serial = core::QosPipeline(scheme931(), cfg).run(t);
    std::ostringstream what;
    what << "fault plan round " << round;
    expect_identical(serial, engine.run(scheme931(), cfg, t),
                     what.str().c_str());
  }
}

// Multi-tenant front end: the WFQ scheduler runs inside the serial replay
// core, so tenant verdicts, tallies, and dispatch order must be
// thread-count-invariant exactly like every other stage. The mix includes
// a pulsed tenant (idles and re-enters backlog, exercising renormalization)
// and a flooder that sheds, so the tenant fields being compared are live.
trace::Trace multi_tenant_small() {
  trace::MultiTenantParams mt;
  mt.intervals = 120;
  mt.tenants = {
      {.requests_per_interval = 2, .bucket_pool = 8},
      {.requests_per_interval = 3, .bucket_pool = 8, .period = 3},
      {.requests_per_interval = 7, .bucket_pool = 12},
  };
  mt.seed = 23;
  mt.jitter_slots = 2;
  return trace::generate_multi_tenant(mt);
}

core::PipelineConfig multi_tenant_cfg(core::RetrievalMode retrieval) {
  core::PipelineConfig cfg;
  cfg.retrieval = retrieval;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kModulo;  // bucket-domain trace
  cfg.tenants = {
      {.name = "gold", .weight = 3.0, .reservation = 2},
      {.name = "pulse", .weight = 2.0, .reservation = 0},
      {.name = "flood", .weight = 1.0, .reservation = 0,
       .queue_capacity = 8, .mark_threshold = 6},
  };
  return cfg;
}

TEST(ParallelReplayEquivalence, MultiTenantThreadCountInvariance) {
  const auto t = multi_tenant_small();
  for (const auto retrieval : {core::RetrievalMode::kOnline,
                               core::RetrievalMode::kIntervalAligned}) {
    const auto cfg = multi_tenant_cfg(retrieval);
    const auto serial = core::QosPipeline(scheme931(), cfg).run(t);
    // Not vacuous: backpressure fired and tenant tallies are non-trivial.
    EXPECT_GT(serial.tenant_usage[2].shed, 0u);
    EXPECT_GT(serial.tenant_usage[2].marked, 0u);
    EXPECT_EQ(serial.tenant_usage[0].shed, 0u);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      core::ParallelReplayEngine engine({.threads = threads});
      std::ostringstream what;
      what << "tenants retrieval=" << static_cast<int>(retrieval)
           << " threads=" << threads;
      expect_identical(serial, engine.run(scheme931(), cfg, t),
                       what.str().c_str());
    }
  }
}

TEST(ParallelReplaySweep, MultiTenantJobsMatchSerial) {
  const auto tenant_trace = multi_tenant_small();
  const auto plain_trace = synthetic_small();
  core::PipelineConfig plain = aligned_fim();
  plain.mapping = core::MappingMode::kModulo;
  // Tenant and single-tenant jobs interleave in one sweep; slot contents
  // must match their per-job serial runs either way.
  const std::vector<core::ReplayJob> jobs{
      {&scheme931(), &tenant_trace,
       multi_tenant_cfg(core::RetrievalMode::kOnline)},
      {&scheme931(), &plain_trace, plain},
      {&scheme931(), &tenant_trace,
       multi_tenant_cfg(core::RetrievalMode::kIntervalAligned)},
  };
  core::ParallelReplayEngine engine({.threads = 4});
  const auto swept = engine.run_jobs(jobs);
  ASSERT_EQ(swept.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto serial =
        core::QosPipeline(*jobs[i].scheme, jobs[i].config).run(*jobs[i].trace);
    std::ostringstream what;
    what << "tenant job " << i;
    expect_identical(serial, swept[i], what.str().c_str());
  }
}

TEST(ParallelReplaySweep, MatchesPerJobSerialRuns) {
  const auto exchange = exchange_small();
  const auto synthetic = synthetic_small();
  std::vector<core::ReplayJob> jobs;
  for (const auto retrieval : {core::RetrievalMode::kOnline,
                               core::RetrievalMode::kIntervalAligned}) {
    for (const auto mapping :
         {core::MappingMode::kFim, core::MappingMode::kModulo}) {
      auto cfg = aligned_fim();
      cfg.retrieval = retrieval;
      cfg.mapping = mapping;
      jobs.push_back({&scheme931(), &exchange, cfg});
      jobs.push_back({&scheme931(), &synthetic, cfg});
    }
  }
  core::ParallelReplayEngine engine({.threads = 4});
  const auto swept = engine.run_jobs(jobs);
  ASSERT_EQ(swept.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto serial =
        core::QosPipeline(*jobs[i].scheme, jobs[i].config).run(*jobs[i].trace);
    std::ostringstream what;
    what << "job " << i;
    expect_identical(serial, swept[i], what.str().c_str());
  }
}

// Repeated sweeps over the same jobs must agree exactly — completion order
// varies, slot contents must not.
TEST(ParallelReplaySweep, RepeatedSweepsAreStable) {
  const auto t = synthetic_small();
  std::vector<core::ReplayJob> jobs;
  for (int i = 0; i < 6; ++i) {
    auto cfg = aligned_fim();
    cfg.access_budget = 1 + static_cast<std::uint32_t>(i % 3);
    jobs.push_back({&scheme931(), &t, cfg});
  }
  core::ParallelReplayEngine engine({.threads = 4});
  const auto first = engine.run_jobs(jobs);
  const auto second = engine.run_jobs(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::ostringstream what;
    what << "repeat job " << i;
    expect_identical(first[i], second[i], what.str().c_str());
  }
}

namespace sweep_configs {

Config make(const std::string& body) {
  std::istringstream in(body);
  return Config::parse(in);
}

}  // namespace sweep_configs

TEST(ParallelReplaySweep, RunExperimentsMatchesSerialRunExperiment) {
  std::vector<Config> cfgs;
  cfgs.push_back(sweep_configs::make(
      "[workload]\nkind = synthetic\ntotal_requests = 800\nseed = 3\n"));
  cfgs.push_back(sweep_configs::make(
      "[pipeline]\nretrieval = aligned\n[workload]\nkind = exchange\n"
      "scale = 0.01\nseed = 9\n"));
  cfgs.push_back(sweep_configs::make(
      "[design]\nname = (13,3,1)\n[workload]\nkind = synthetic\n"
      "bucket_pool = 52\ntotal_requests = 600\nseed = 11\n"));
  const auto swept = core::run_experiments(cfgs, 4);
  ASSERT_EQ(swept.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const auto serial = core::run_experiment(cfgs[i]);
    std::ostringstream what;
    what << "config " << i;
    expect_identical(serial, swept[i], what.str().c_str());
  }
}

// Satellite regression: a worker-thrown error in the sweep's batch-submit
// path must reach the submitter as the exception, not kill a worker
// thread. An unknown design name throws inside build_experiment on a pool
// worker; run_experiments rethrows the lowest-index error.
TEST(ParallelReplaySweep, WorkerExceptionPropagatesToSubmitter) {
  std::vector<Config> cfgs;
  cfgs.push_back(sweep_configs::make(
      "[workload]\nkind = synthetic\ntotal_requests = 200\n"));
  cfgs.push_back(sweep_configs::make("[design]\nname = no-such-design\n"));
  cfgs.push_back(sweep_configs::make(
      "[workload]\nkind = synthetic\ntotal_requests = 200\n"));
  try {
    (void)core::run_experiments(cfgs, 4);
    FAIL() << "invalid config in a sweep must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-design"), std::string::npos)
        << e.what();
  }
}

// The statistical-admission P_k table must be identical whether sampled
// serially or sharded (per-shard RNG streams derive from shard_seed).
TEST(ParallelReplayRng, ShardSeedStreamsAreThreadCountInvariant) {
  const auto serial = core::sample_optimal_probabilities(
      scheme931(), 12, {.samples_per_size = 300, .seed = 5, .threads = 1});
  const auto sharded = core::sample_optimal_probabilities(
      scheme931(), 12, {.samples_per_size = 300, .seed = 5, .threads = 4});
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k], sharded[k]) << "P_" << k;
  }
  EXPECT_NE(shard_seed(5, 1), shard_seed(5, 2));
  EXPECT_NE(shard_seed(5, 1), shard_seed(6, 1));
}

}  // namespace
