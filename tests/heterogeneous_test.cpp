// Unit + property tests for heterogeneous (min-makespan) retrieval.
#include <gtest/gtest.h>

#include <algorithm>

#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "retrieval/heterogeneous.hpp"
#include "retrieval/maxflow.hpp"
#include "util/rng.hpp"

namespace flashqos::retrieval {
namespace {

using decluster::DesignTheoretic;

const DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const DesignTheoretic s(d, true);
  return s;
}

/// Exhaustive minimum makespan over every replica choice (exponential).
SimTime brute_force_makespan(std::span<const BucketId> batch,
                             const decluster::AllocationScheme& scheme,
                             std::span<const SimTime> service) {
  const std::size_t b = batch.size();
  const std::uint32_t c = scheme.copies();
  SimTime best = INT64_MAX;
  std::vector<std::uint32_t> choice(b, 0);
  std::vector<SimTime> load(scheme.devices());
  for (;;) {
    std::fill(load.begin(), load.end(), SimTime{0});
    for (std::size_t i = 0; i < b; ++i) {
      const DeviceId d = scheme.replicas(batch[i])[choice[i]];
      load[d] += service[d];
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
    std::size_t pos = 0;
    while (pos < b && ++choice[pos] == c) {
      choice[pos] = 0;
      ++pos;
    }
    if (pos == b) break;
  }
  return best;
}

TEST(Heterogeneous, HomogeneousReducesToRounds) {
  const auto& scheme = scheme931();
  const std::vector<SimTime> service(9, kPageReadLatency);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 1 + rng.below(15);
    std::vector<BucketId> batch;
    for (const auto b : rng.sample_without_replacement(scheme.buckets(), k)) {
      batch.push_back(static_cast<BucketId>(b));
    }
    const auto het = optimal_makespan_schedule(batch, scheme, service);
    const auto rounds = optimal_schedule(batch, scheme).rounds;
    EXPECT_EQ(het.makespan, static_cast<SimTime>(rounds) * kPageReadLatency);
    EXPECT_TRUE(valid_heterogeneous_schedule(batch, scheme, service, het));
  }
}

TEST(Heterogeneous, PrefersFasterDevices) {
  const auto& scheme = scheme931();
  // Device 0 is 10x slower; a single request for bucket 0 ((0,1,2)) must
  // go to device 1 or 2.
  std::vector<SimTime> service(9, 100);
  service[0] = 1000;
  const std::vector<BucketId> batch{0};
  const auto s = optimal_makespan_schedule(batch, scheme, service);
  EXPECT_NE(s.assignments[0].device, 0u);
  EXPECT_EQ(s.makespan, 100);
}

TEST(Heterogeneous, SlowDeviceTakesFewerRequests) {
  const auto& scheme = scheme931();
  std::vector<SimTime> service(9, 100);
  service[0] = 300;  // three times slower
  Rng rng(7);
  std::vector<BucketId> batch;
  for (const auto b : rng.sample_without_replacement(scheme.buckets(), 18)) {
    batch.push_back(static_cast<BucketId>(b));
  }
  const auto s = optimal_makespan_schedule(batch, scheme, service);
  EXPECT_TRUE(valid_heterogeneous_schedule(batch, scheme, service, s));
  std::size_t on_slow = 0;
  for (const auto& a : s.assignments) {
    if (a.device == 0) ++on_slow;
  }
  // Makespan-optimal placement gives the slow device at most
  // makespan/300 requests; the fast ones take makespan/100 each.
  EXPECT_LE(static_cast<SimTime>(on_slow) * 300, s.makespan);
}

TEST(Heterogeneous, MatchesBruteForceOnSmallBatches) {
  const auto& scheme = scheme931();
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<SimTime> service(9);
    for (auto& s : service) s = 50 + static_cast<SimTime>(rng.below(200));
    const std::size_t k = 1 + rng.below(7);
    std::vector<BucketId> batch;
    for (std::size_t i = 0; i < k; ++i) {
      batch.push_back(static_cast<BucketId>(rng.below(scheme.buckets())));
    }
    const auto s = optimal_makespan_schedule(batch, scheme, service);
    EXPECT_TRUE(valid_heterogeneous_schedule(batch, scheme, service, s));
    EXPECT_EQ(s.makespan, brute_force_makespan(batch, scheme, service))
        << "trial " << trial;
  }
}

TEST(Heterogeneous, EmptyBatch) {
  const std::vector<SimTime> service(9, 100);
  const auto s = optimal_makespan_schedule({}, scheme931(), service);
  EXPECT_EQ(s.makespan, 0);
  EXPECT_TRUE(s.assignments.empty());
}

TEST(Heterogeneous, ValidatorCatchesWrongDevice) {
  const auto& scheme = scheme931();
  const std::vector<SimTime> service(9, 100);
  const std::vector<BucketId> batch{0};
  HeterogeneousSchedule s;
  s.assignments = {{8, 0}};  // not a replica of bucket 0
  s.makespan = 100;
  EXPECT_FALSE(valid_heterogeneous_schedule(batch, scheme, service, s));
}

TEST(Heterogeneous, ValidatorCatchesGappedStarts) {
  const auto& scheme = scheme931();
  const std::vector<SimTime> service(9, 100);
  const std::vector<BucketId> batch{0, 3};  // both can use device 0
  HeterogeneousSchedule s;
  s.assignments = {{0, 0}, {0, 150}};  // second start not back-to-back
  s.makespan = 250;
  EXPECT_FALSE(valid_heterogeneous_schedule(batch, scheme, service, s));
}

// Property: makespan is monotone — making any device faster can only help.
TEST(Heterogeneous, MakespanMonotoneInDeviceSpeed) {
  const auto& scheme = scheme931();
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<SimTime> service(9);
    for (auto& s : service) s = 100 + static_cast<SimTime>(rng.below(300));
    std::vector<BucketId> batch;
    for (const auto b : rng.sample_without_replacement(scheme.buckets(), 12)) {
      batch.push_back(static_cast<BucketId>(b));
    }
    const auto base = optimal_makespan_schedule(batch, scheme, service);
    auto faster = service;
    faster[rng.below(9)] /= 2;
    const auto improved = optimal_makespan_schedule(batch, scheme, faster);
    EXPECT_LE(improved.makespan, base.makespan);
  }
}

}  // namespace
}  // namespace flashqos::retrieval
