// Self-tests for flashqos_lint (src/lint): one violating fixture snippet
// per rule, the allow-comment escape for each, and the lexer corners that
// make exact-token linting trustworthy (comments, strings, raw strings,
// digit separators, substring traps).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>

#include "lint/lint.hpp"

namespace flashqos::lint {
namespace {

[[nodiscard]] bool has_rule(const std::vector<Finding>& fs,
                            std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

[[nodiscard]] std::size_t count_rule(const std::vector<Finding>& fs,
                                     std::string_view rule) {
  return static_cast<std::size_t>(std::count_if(
      fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// One violating fixture per rule.

TEST(LintRules, FlagsAdhocLogging) {
  const auto fs = lint_file("core/foo.cpp",
                            "#include <cstdio>\n"
                            "void f() { std::printf(\"x\"); }\n");
  ASSERT_TRUE(has_rule(fs, "adhoc-logging"));
  EXPECT_EQ(fs.front().line, 2u);
}

TEST(LintRules, AdhocLoggingSanctionedSurfacesExempt) {
  const std::string body = "void f() { std::printf(\"x\"); }\n";
  EXPECT_FALSE(has_rule(lint_file("util/table.cpp", body), "adhoc-logging"));
  EXPECT_FALSE(has_rule(lint_file("obs/export.cpp", body), "adhoc-logging"));
  EXPECT_FALSE(has_rule(lint_file("verify/main.cpp", body), "adhoc-logging"));
  EXPECT_TRUE(has_rule(lint_file("core/pipeline.cpp", body), "adhoc-logging"));
}

TEST(LintRules, FlagsHotPathAllocOnlyInHotPaths) {
  const std::string body = "void f(std::vector<int>& v) { v.push_back(1); }\n";
  EXPECT_TRUE(has_rule(lint_file("retrieval/maxflow.cpp", body),
                       "hot-path-alloc"));
  EXPECT_TRUE(has_rule(lint_file("core/sampler.cpp", body), "hot-path-alloc"));
  // Outside the declared zero-alloc scopes the rule is silent.
  EXPECT_FALSE(has_rule(lint_file("core/pipeline.cpp", body),
                        "hot-path-alloc"));
  EXPECT_FALSE(has_rule(lint_file("fim/apriori.cpp", body), "hot-path-alloc"));
}

TEST(LintRules, FlagsRawRandomness) {
  const auto fs = lint_file(
      "design/search.cpp", "int f() { std::random_device rd; return rand(); }\n");
  EXPECT_EQ(count_rule(fs, "raw-random"), 2u);
}

TEST(LintRules, FlagsWallClockAndSleep) {
  const auto fs = lint_file(
      "core/replay.cpp",
      "void f() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
      "  (void)t;\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 2u);
}

TEST(LintRules, FlagsBlockingIoWaits) {
  // poll/select/epoll_wait are wall-clock waits too (the HTTP exporter's
  // annotated call sites are the only sanctioned users).
  const auto fs = lint_file(
      "core/server.cpp",
      "int f(pollfd* p, fd_set* r, int ep) {\n"
      "  int a = poll(p, 1, 100);\n"
      "  int b = select(1, r, nullptr, nullptr, nullptr);\n"
      "  int c = epoll_wait(ep, nullptr, 0, 100);\n"
      "  return a + b + c;\n"
      "}\n");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 3u);
}

TEST(LintRules, AcceptIsNotAWallClockWord) {
  // `accept` collides with the admission API's vocabulary and must stay
  // off the wall-clock list.
  const auto fs = lint_file(
      "core/admission.cpp",
      "std::uint64_t f(Stat& s) { return s.accept(0, 1); }\n");
  EXPECT_FALSE(has_rule(fs, "wall-clock"));
}

TEST(LintAllow, BlockingWaitAllowedOnPreviousLine) {
  const auto fs = lint_file(
      "obs/server.cpp",
      "int f(pollfd* p) {\n"
      "  // flashqos-lint: allow(wall-clock): bounded monitoring-plane wait\n"
      "  return poll(p, 1, 100);\n"
      "}\n");
  EXPECT_FALSE(has_rule(fs, "wall-clock"));
}

TEST(LintRules, FlagsIncludeHygiene) {
  // Header without #pragma once as its first directive.
  EXPECT_TRUE(has_rule(lint_file("core/a.hpp", "#include <vector>\n"),
                       "include-hygiene"));
  // Quoted include that is not repo-rooted.
  EXPECT_TRUE(has_rule(lint_file("core/b.cpp", "#include \"maxflow.hpp\"\n"),
                       "include-hygiene"));
  // Duplicate include.
  EXPECT_TRUE(has_rule(lint_file("core/c.cpp",
                                 "#include <vector>\n#include <vector>\n"),
                       "include-hygiene"));
  // The clean shape of all three.
  EXPECT_TRUE(lint_file("core/d.hpp",
                        "#pragma once\n"
                        "#include <vector>\n"
                        "#include \"retrieval/maxflow.hpp\"\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// The allow-comment escape hatch, same line and line above.

TEST(LintAllow, SameLineAllowSuppresses) {
  const auto fs = lint_file(
      "retrieval/x.cpp",
      "void f(std::vector<int>& v) { v.push_back(1); }  "
      "// flashqos-lint: allow(hot-path-alloc): test fixture\n");
  EXPECT_FALSE(has_rule(fs, "hot-path-alloc"));
}

TEST(LintAllow, LineAboveAllowSuppresses) {
  const auto fs = lint_file(
      "retrieval/x.cpp",
      "// flashqos-lint: allow(hot-path-alloc): test fixture\n"
      "void f(std::vector<int>& v) { v.push_back(1); }\n");
  EXPECT_FALSE(has_rule(fs, "hot-path-alloc"));
}

TEST(LintAllow, AllowIsRuleSpecific) {
  // An allow for one rule must not blanket-suppress another on the line.
  const auto fs = lint_file(
      "retrieval/x.cpp",
      "// flashqos-lint: allow(hot-path-alloc): wrong rule\n"
      "int f() { return rand(); }\n");
  EXPECT_TRUE(has_rule(fs, "raw-random"));
}

TEST(LintAllow, AllowDoesNotLeakToLaterLines) {
  const auto fs = lint_file(
      "retrieval/x.cpp",
      "// flashqos-lint: allow(hot-path-alloc): only the next line\n"
      "void f(std::vector<int>& v) { v.push_back(1); }\n"
      "void g(std::vector<int>& v) { v.push_back(2); }\n");
  EXPECT_EQ(count_rule(fs, "hot-path-alloc"), 1u);
}

// ---------------------------------------------------------------------------
// Lexer corners: what separates a linter from a grep.

TEST(LintLexer, IgnoresCommentsAndStrings) {
  const auto fs = lint_file(
      "core/x.cpp",
      "// std::printf in a comment\n"
      "/* rand() in a block comment */\n"
      "const char* s = \"std::printf(rand())\";\n"
      "const char* r = R\"(printf sleep_for random_device)\";\n");
  EXPECT_TRUE(fs.empty()) << format(fs.front());
}

TEST(LintLexer, MatchesWholeIdentifiersOnly) {
  // `puts` inside `write_requested_outputs`, `rand` inside `operand`:
  // substring hits must not fire.
  const auto fs = lint_file("core/x.cpp",
                            "void write_requested_outputs(int operand);\n"
                            "int grand_total(int durand);\n");
  EXPECT_TRUE(fs.empty()) << format(fs.front());
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  // 1'000'000 must not open a char literal and swallow the rest of the
  // file (which would hide the real violation on the next line).
  const auto fs = lint_file("core/x.cpp",
                            "constexpr int kBig = 1'000'000;\n"
                            "int f() { return rand(); }\n");
  EXPECT_TRUE(has_rule(fs, "raw-random"));
}

TEST(LintLexer, FindingsAreOrderedAndFormatted) {
  const auto fs = lint_file("core/x.cpp",
                            "int f() { return rand(); }\n"
                            "int g() { return rand(); }\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_LT(fs[0].line, fs[1].line);
  EXPECT_EQ(format(fs[0]).rfind("core/x.cpp:1: [raw-random]", 0), 0u);
}

TEST(LintApi, RuleNamesStable) {
  const auto& names = rule_names();
  for (const char* expected : {"adhoc-logging", "hot-path-alloc", "raw-random",
                               "wall-clock", "include-hygiene"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

}  // namespace
}  // namespace flashqos::lint
