// The fault-plan API: seeded compile determinism, config parsing (new
// [faults] section and legacy [failures] compatibility), validate()
// diagnostics, and the pipeline behaviours the plan drives end to end —
// hot-spare rebuild recovery, retry timeouts, latency spikes.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/experiment.hpp"
#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "trace/synthetic.hpp"
#include "util/config.hpp"

namespace flashqos {
namespace {

using core::AdmissionMode;
using core::MappingMode;
using core::PipelineConfig;
using core::QosPipeline;
using core::RetrievalMode;
using decluster::DesignTheoretic;

const DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const DesignTheoretic s(d, true);
  return s;
}

Config config_from(const std::string& body) {
  std::istringstream in(body);
  return Config::parse(in);
}

trace::Trace light_trace(std::size_t total = 480) {
  trace::SyntheticParams sp;
  sp.bucket_pool = scheme931().buckets();
  sp.requests_per_interval = 4;
  sp.total_requests = total;
  sp.seed = 11;
  return trace::generate_synthetic(sp);
}

TEST(FaultPlan, CompileIsDeterministicPerSeed) {
  fault::FaultPlan plan;
  plan.transient = {.count = 4, .mean_duration = 2 * kMillisecond};
  plan.latency_spike = {.count = 3, .mean_duration = kMillisecond, .factor = 3.0};
  plan.seed = 42;
  const SimTime horizon = 50 * kMillisecond;

  const auto a = fault::compile(plan, scheme931(), horizon);
  const auto b = fault::compile(plan, scheme931(), horizon);
  ASSERT_EQ(a.outages.size(), b.outages.size());
  ASSERT_EQ(a.outages.size(), 4u);
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_EQ(a.outages[i].device, b.outages[i].device);
    EXPECT_EQ(a.outages[i].fail_at, b.outages[i].fail_at);
    EXPECT_EQ(a.outages[i].recover_at, b.outages[i].recover_at);
  }
  ASSERT_EQ(a.spikes.size(), 3u);
  for (std::size_t i = 0; i < a.spikes.size(); ++i) {
    EXPECT_EQ(a.spikes[i].device, b.spikes[i].device);
    EXPECT_EQ(a.spikes[i].start, b.spikes[i].start);
    EXPECT_DOUBLE_EQ(a.spikes[i].factor, b.spikes[i].factor);
  }

  plan.seed = 43;
  const auto c = fault::compile(plan, scheme931(), horizon);
  bool any_differs = false;
  for (std::size_t i = 0; i < c.outages.size(); ++i) {
    any_differs |= c.outages[i].device != a.outages[i].device ||
                   c.outages[i].fail_at != a.outages[i].fail_at;
  }
  EXPECT_TRUE(any_differs) << "different seeds must place different outages";
}

TEST(FaultPlan, SpikeGenerationIndependentOfOutageGeneration) {
  // Adding spikes to a plan must not move the outage windows of the same
  // seed (distinct generator streams).
  fault::FaultPlan plan;
  plan.transient = {.count = 3, .mean_duration = kMillisecond};
  plan.seed = 7;
  const auto without = fault::compile(plan, scheme931(), 20 * kMillisecond);
  plan.latency_spike = {.count = 5, .mean_duration = kMillisecond, .factor = 2.0};
  const auto with = fault::compile(plan, scheme931(), 20 * kMillisecond);
  ASSERT_EQ(without.outages.size(), with.outages.size());
  for (std::size_t i = 0; i < without.outages.size(); ++i) {
    EXPECT_EQ(without.outages[i].device, with.outages[i].device);
    EXPECT_EQ(without.outages[i].fail_at, with.outages[i].fail_at);
  }
}

TEST(FaultPlan, ValidateNamesTheProblem) {
  fault::FaultPlan plan;
  plan.outages.push_back({.device = 2, .fail_at = 10, .recover_at = 5});
  plan.outages.push_back({.device = 99, .fail_at = 0, .recover_at = 10});
  plan.outages.push_back({.device = 3, .fail_at = 0, .recover_at = 20});
  plan.outages.push_back({.device = 3, .fail_at = 10, .recover_at = 30});
  plan.spikes.push_back({.device = 1, .start = 0, .end = 10, .factor = -1.0});
  plan.retry.timeout = 0;
  const auto diags = plan.validate(scheme931().devices());
  const auto mentions = [&](const char* needle) {
    return std::any_of(diags.begin(), diags.end(), [&](const std::string& d) {
      return d.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(mentions("empty window"));
  EXPECT_TRUE(mentions("out of range"));
  EXPECT_TRUE(mentions("overlapping outage windows on device 3"));
  EXPECT_TRUE(mentions("non-positive factor"));
  EXPECT_TRUE(mentions("retry timeout"));
}

TEST(PipelineConfigValidate, CatchesIncoherentConfigs) {
  PipelineConfig cfg;
  EXPECT_TRUE(cfg.validate(9).empty());
  cfg.access_budget = 0;
  cfg.qos_interval = 0;
  cfg.admission = AdmissionMode::kStatistical;  // no p_table supplied
  const auto diags = cfg.validate(9);
  EXPECT_GE(diags.size(), 3u);
  const auto mentions = [&](const char* needle) {
    return std::any_of(diags.begin(), diags.end(), [&](const std::string& d) {
      return d.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(mentions("access_budget"));
  EXPECT_TRUE(mentions("qos_interval"));
  EXPECT_TRUE(mentions("p_table"));
}

TEST(PipelineConfigValidate, ConstructorRejectsInvalidConfig) {
  PipelineConfig cfg;
  cfg.faults.outages.push_back({.device = 0, .fail_at = 5, .recover_at = 5});
  EXPECT_DEATH((void)QosPipeline(scheme931(), cfg), "invalid pipeline");
}

TEST(FaultConfig, LegacyFailuresSectionStillWorks) {
  // The legacy [failures] spelling and the new [faults] spelling must
  // produce identical experiments — byte-identical replay results.
  const std::string common =
      "[workload]\nkind = synthetic\nrequests_per_interval = 4\n"
      "total_requests = 400\n[pipeline]\nmapping = modulo\n";
  const auto legacy = core::build_experiment(
      config_from(common + "[failures]\nfail = 3 1.0 6.0\nfail = 5 2.0\n"));
  const auto modern = core::build_experiment(
      config_from(common + "[faults]\nfail = 3 1.0 6.0\nfail = 5 2.0\n"));
  ASSERT_EQ(legacy.pipeline.faults.outages.size(), 2u);
  ASSERT_EQ(modern.pipeline.faults.outages.size(), 2u);
  EXPECT_EQ(legacy.pipeline.faults.outages[1].recover_at,
            fault::DeviceFailure::kNeverRecovers);

  const auto a = QosPipeline(*legacy.scheme, legacy.pipeline).run(legacy.workload);
  const auto b = QosPipeline(*modern.scheme, modern.pipeline).run(modern.workload);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish) << i;
    EXPECT_EQ(a.outcomes[i].failed, b.outcomes[i].failed) << i;
  }
}

TEST(FaultConfig, FaultsSectionParsesTheFullPlan) {
  const auto e = core::build_experiment(config_from(
      "[workload]\nkind = synthetic\ntotal_requests = 10\n"
      "[faults]\n"
      "fail = 2 1.0 4.0\n"
      "spike = 1 0.5 2.5 4.0\n"
      "transient = 3 2.0\n"
      "latency_spike = 2 1.5 3.0\n"
      "rebuild = 25000\n"
      "retry_timeout_ms = 12.5\n"
      "seed = 99\n"));
  const auto& plan = e.pipeline.faults;
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].device, 2u);
  ASSERT_EQ(plan.spikes.size(), 1u);
  EXPECT_EQ(plan.spikes[0].start, from_ms(0.5));
  EXPECT_DOUBLE_EQ(plan.spikes[0].factor, 4.0);
  EXPECT_EQ(plan.transient.count, 3u);
  EXPECT_EQ(plan.transient.mean_duration, 2 * kMillisecond);
  EXPECT_EQ(plan.latency_spike.count, 2u);
  EXPECT_DOUBLE_EQ(plan.latency_spike.factor, 3.0);
  EXPECT_DOUBLE_EQ(plan.rebuild.pages_per_second, 25000.0);
  EXPECT_EQ(plan.retry.timeout, from_ms(12.5));
  EXPECT_EQ(plan.seed, 99u);
}

TEST(FaultPipeline, RebuildBringsAPermanentFailureBack) {
  // Without rebuild a permanent failure stays down forever; with a rebuild
  // policy the compiled plan folds the recovery instant in, and the
  // pipeline routes to the device again after the rebuild completes.
  PipelineConfig cfg;
  cfg.mapping = MappingMode::kModulo;
  cfg.faults.outages.push_back({.device = 4,
                                .fail_at = 0,
                                .recover_at = fault::DeviceFailure::kNeverRecovers});
  cfg.faults.rebuild.pages_per_second = 50000.0;
  const auto t = light_trace(2000);

  const SimTime horizon = t.events.back().time + cfg.qos_interval;
  const auto compiled = fault::compile(cfg.faults, scheme931(), horizon);
  ASSERT_EQ(compiled.rebuilds.size(), 1u);
  EXPECT_TRUE(compiled.rebuilds[0].completed);
  EXPECT_GT(compiled.rebuilds[0].reads, 0u);
  ASSERT_EQ(compiled.outages.size(), 1u);
  ASSERT_NE(compiled.outages[0].recover_at, fault::DeviceFailure::kNeverRecovers);
  const SimTime done = compiled.outages[0].recover_at;
  EXPECT_LT(done, t.events.back().time) << "rebuild must finish inside the trace";

  const auto r = QosPipeline(scheme931(), cfg).run(t);
  EXPECT_EQ(r.overall.failed, 0u);
  bool used_after_rebuild = false;
  for (const auto& o : r.outcomes) {
    if (o.failed) continue;
    if (o.device == 4 && o.dispatch < done) {
      ADD_FAILURE() << "device 4 served a read at t=" << o.dispatch
                    << " before its rebuild finished at t=" << done;
    }
    used_after_rebuild |= o.device == 4 && o.dispatch >= done;
  }
  EXPECT_TRUE(used_after_rebuild);
}

TEST(FaultPipeline, RetryTimeoutFailsStrandedRequests) {
  // Black out every replica of bucket 0 for 40 intervals. With no retry
  // timeout the stranded requests wait and eventually serve; with a short
  // timeout they fail instead — and nothing else is affected.
  const SimTime T = kBaseInterval;
  PipelineConfig cfg;
  cfg.mapping = MappingMode::kModulo;
  for (const auto d : scheme931().replicas(0)) {
    cfg.faults.outages.push_back({.device = d, .fail_at = 0, .recover_at = 40 * T});
  }
  const auto t = light_trace(960);

  const auto patient = QosPipeline(scheme931(), cfg).run(t);
  EXPECT_EQ(patient.overall.failed, 0u);

  cfg.faults.retry.timeout = 10 * T;
  const auto impatient = QosPipeline(scheme931(), cfg).run(t);
  EXPECT_GT(impatient.overall.failed, 0u);
  // Only requests whose bucket lives entirely on the blacked-out replica
  // set can strand (rotations of bucket 0's block share its devices).
  const auto blacked = scheme931().replicas(0);
  for (std::size_t i = 0; i < impatient.outcomes.size(); ++i) {
    const auto& o = impatient.outcomes[i];
    if (!o.failed) continue;
    const BucketId b = t.events[i].block % scheme931().buckets();
    for (const auto d : scheme931().replicas(b)) {
      EXPECT_NE(std::find(blacked.begin(), blacked.end(), d), blacked.end())
          << "request " << i << " stranded although replica " << d
          << " was never blacked out";
    }
    EXPECT_EQ(o.path, core::RetrievalPath::kFailed);
  }
}

TEST(FaultPipeline, LatencySpikeStretchesServiceOnTheSpikedDevice) {
  const SimTime L = kPageReadLatency;
  PipelineConfig cfg;
  cfg.mapping = MappingMode::kModulo;
  cfg.scheduler = core::SchedulerMode::kPrimaryOnly;
  cfg.admission = AdmissionMode::kNone;
  cfg.faults.spikes.push_back(
      {.device = 0, .start = 0, .end = 100 * kBaseInterval, .factor = 4.0});
  const auto t = light_trace(480);
  const auto r = QosPipeline(scheme931(), cfg).run(t);
  bool spiked_seen = false;
  for (const auto& o : r.outcomes) {
    if (o.failed || o.is_write) continue;
    const SimTime service = o.finish - o.start;
    if (o.device == 0 && o.start < 100 * kBaseInterval) {
      EXPECT_EQ(service, 4 * L);
      spiked_seen = true;
    } else if (o.start >= 100 * kBaseInterval) {
      EXPECT_EQ(service, L);
    }
  }
  EXPECT_TRUE(spiked_seen) << "primary-only must route some reads to device 0";
}

TEST(FaultInjector, AvailabilityAndRecoveryQueries) {
  fault::FaultPlan plan;
  plan.outages.push_back({.device = 1, .fail_at = 10, .recover_at = 20});
  plan.outages.push_back({.device = 1, .fail_at = 20, .recover_at = 30});
  plan.outages.push_back({.device = 2,
                          .fail_at = 5,
                          .recover_at = fault::DeviceFailure::kNeverRecovers});
  fault::FaultInjector inj(fault::compile(plan, scheme931(), 100));
  std::vector<bool> mask;
  EXPECT_EQ(inj.fill_availability(0, 9, mask), 0u);
  EXPECT_EQ(inj.fill_availability(15, 9, mask), 2u);
  EXPECT_FALSE(mask[1]);
  EXPECT_FALSE(mask[2]);
  // Chained windows: recovery at 20 lands inside the next outage.
  EXPECT_EQ(inj.device_up_at(1, 15), 30);
  EXPECT_EQ(inj.device_up_at(2, 15), fault::DeviceFailure::kNeverRecovers);
  EXPECT_EQ(inj.device_up_at(0, 15), 15);
}

}  // namespace
}  // namespace flashqos
