// Unit tests for src/core admission control: the deterministic limit, the
// paper's Table I application walkthrough, and the statistical Q < ε rule.
#include <gtest/gtest.h>

#include "core/admission.hpp"
#include "core/sampler.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"

namespace flashqos::core {
namespace {

TEST(DeterministicAdmission, LimitIsGuaranteeFormula) {
  EXPECT_EQ(DeterministicAdmission(3, 1).limit(), 5u);
  EXPECT_EQ(DeterministicAdmission(3, 2).limit(), 14u);
  EXPECT_EQ(DeterministicAdmission(3, 3).limit(), 27u);
  EXPECT_EQ(DeterministicAdmission(2, 1).limit(), 3u);
}

TEST(DeterministicAdmission, AcceptsUpToLimit) {
  const DeterministicAdmission a(3, 1);  // S = 5
  EXPECT_EQ(a.accept(0, 3), 3u);
  EXPECT_EQ(a.accept(3, 3), 2u);
  EXPECT_EQ(a.accept(5, 1), 0u);
  EXPECT_EQ(a.accept(0, 100), 5u);
}

TEST(ApplicationRegistry, PaperTableIWalkthrough) {
  // (9,3,1), M = 1 → S = 5. App1 wants 2/period, App2 wants 2, App3 wants 1;
  // all admitted, system full; App4 must be rejected until someone leaves.
  ApplicationRegistry reg(5);
  const auto app1 = reg.admit(2);
  ASSERT_TRUE(app1.has_value());
  EXPECT_EQ(reg.reserved(), 2u);
  const auto app2 = reg.admit(2);
  ASSERT_TRUE(app2.has_value());
  EXPECT_EQ(reg.reserved(), 4u);
  const auto app3 = reg.admit(1);
  ASSERT_TRUE(app3.has_value());
  EXPECT_EQ(reg.reserved(), 5u);
  EXPECT_FALSE(reg.admit(1).has_value());
  reg.remove(*app2);
  EXPECT_EQ(reg.reserved(), 3u);
  EXPECT_TRUE(reg.admit(2).has_value());
}

TEST(ApplicationRegistry, RemoveUnknownAborts) {
  ApplicationRegistry reg(5);
  EXPECT_DEATH(reg.remove(99), "unknown application");
}

TEST(StatisticalAdmission, WithinLimitAlwaysAccepted) {
  StatisticalAdmission a({1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, 5, 0.0);
  EXPECT_EQ(a.accept(0, 5), 5u);
  EXPECT_EQ(a.accept(2, 3), 3u);
}

TEST(StatisticalAdmission, EpsilonZeroIsDeterministic) {
  // Even with P_k == 1 beyond the limit, ε = 0 means Q < 0 never holds.
  StatisticalAdmission a({1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, 5, 0.0);
  EXPECT_EQ(a.accept(0, 7), 5u);
}

TEST(StatisticalAdmission, AcceptsBeyondLimitWhenQSmall) {
  // P_6 = 0.99: accepting one interval of size 6 gives Q = 0.01.
  std::vector<double> p(10, 1.0);
  p[6] = 0.99;
  p[7] = 0.5;
  StatisticalAdmission a(p, 5, 0.05);
  EXPECT_EQ(a.accept(0, 6), 6u);   // Q(6) = 0.01 < 0.05
  EXPECT_EQ(a.accept(0, 7), 6u);   // Q(7) = 0.5 ≥ 0.05 → cut back to 6
}

TEST(StatisticalAdmission, ThrottledIntervalsDiluteQ) {
  std::vector<double> p(10, 1.0);
  p[6] = 0.8;  // each accepted size-6 interval contributes 0.2 misses
  StatisticalAdmission a(p, 5, 0.05);
  // Fresh controller: one size-6 interval alone gives Q = 0.2 ≥ ε.
  EXPECT_EQ(a.accept(0, 6), 5u);
  // Over-limit intervals trimmed back to S contribute zero miss but are
  // counted, so the running Q decays while the controller throttles.
  for (int i = 0; i < 10; ++i) a.end_interval(6, 5);
  EXPECT_EQ(a.accept(0, 6), 6u);  // Q = 0.2/11 ≈ 0.018 < 0.05
}

TEST(StatisticalAdmission, QComputation) {
  std::vector<double> p(8, 1.0);
  p[6] = 0.9;
  p[7] = 0.5;
  StatisticalAdmission a(p, 5, 1.0);
  a.end_interval(6, 6);
  a.end_interval(6, 6);
  a.end_interval(7, 7);
  a.end_interval(3, 3);  // within the limit: not counted
  // Q = (2·0.1 + 1·0.5) / 3
  EXPECT_NEAR(a.q_with(), (0.2 + 0.5) / 3.0, 1e-12);
  // With one additional size-7 interval: (0.7 + 0.5) / 4 = 0.3.
  EXPECT_NEAR(a.q_with(7), 0.3, 1e-12);
}

TEST(StatisticalAdmission, WithinLimitIntervalsNotCounted) {
  StatisticalAdmission a({1.0, 0.5, 0.25}, 1, 1.0);
  a.end_interval(1, 1);
  a.end_interval(1, 1);
  EXPECT_DOUBLE_EQ(a.q_with(), 0.0);
  a.end_interval(2, 2);
  EXPECT_DOUBLE_EQ(a.q_with(), 0.75);
  a.end_interval(2, 1);  // throttled to size 1: miss(1) = 0.5
  EXPECT_DOUBLE_EQ(a.q_with(), (0.75 + 0.5) / 2.0);
}

TEST(StatisticalAdmission, BeyondTableIsPessimistic) {
  StatisticalAdmission a({1.0, 1.0, 1.0}, 2, 0.3);
  // Size 50 is beyond the table: treated as P = 0, so a fresh controller
  // computes Q = 1 and refuses anything past the deterministic limit.
  EXPECT_EQ(a.accept(0, 50), 2u);
}

TEST(StatisticalAdmission, LargerEpsilonAcceptsMore) {
  std::vector<double> p(12, 1.0);
  for (std::size_t k = 6; k < p.size(); ++k) {
    p[k] = 1.0 - 0.05 * static_cast<double>(k - 5);  // increasing miss prob
  }
  std::uint64_t prev = 0;
  for (const double eps : {0.01, 0.1, 0.2, 0.4}) {
    StatisticalAdmission a(p, 5, eps);
    const auto accepted = a.accept(0, 11);
    EXPECT_GE(accepted, prev) << "monotone in epsilon";
    prev = accepted;
  }
}

TEST(Sampler, ParallelSamplingIsThreadCountInvariant) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  const SamplerParams base{.samples_per_size = 500, .seed = 3, .threads = 1};
  SamplerParams quad = base;
  quad.threads = 4;
  const auto serial = sample_optimal_probabilities(scheme, 10, base);
  const auto parallel = sample_optimal_probabilities(scheme, 10, quad);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_DOUBLE_EQ(serial[k], parallel[k]) << "k=" << k;
  }
}

TEST(Sampler, Fig4ShapeFor931) {
  // The paper's Fig. 4: P_k dips approaching k = N = 9 (P_9 ≈ 0.75) and
  // snaps back to 1 at k = 10 (optimal becomes 2 accesses).
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  const auto p = sample_optimal_probabilities(scheme, 12,
                                              {.samples_per_size = 2000, .seed = 5});
  ASSERT_EQ(p.size(), 13u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  for (std::uint32_t k = 1; k <= 3; ++k) {
    EXPECT_DOUBLE_EQ(p[k], 1.0) << "k=" << k << ": too few draws to collide";
  }
  // Sampling is with replacement (paper: "the same design block is allowed
  // to be chosen multiple times"), so even k = 4, 5 dip fractionally below
  // 1 (a bucket drawn four times cannot fit one access on three replicas).
  EXPECT_GT(p[4], 0.995);
  EXPECT_GT(p[5], 0.99);
  EXPECT_GT(p[6], 0.95);
  EXPECT_GT(p[7], 0.93);
  EXPECT_GT(p[8], 0.90);
  EXPECT_NEAR(p[9], 0.75, 0.06);
  EXPECT_GT(p[10], 0.999);
  EXPECT_GT(p[6], p[8]);
  EXPECT_GT(p[8], p[9]);
}

}  // namespace
}  // namespace flashqos::core

#include "core/classified_admission.hpp"

namespace flashqos::core {
namespace {

TEST(ClassifiedAdmission, ReservationsAreIsolated) {
  // S = 5: premium reserves 3, standard reserves 1, 1 shared.
  ClassifiedAdmission a(5, {{"premium", 3}, {"standard", 1}});
  // Standard floods the interval: it gets its reservation plus the shared
  // slot, never premium's reservation.
  EXPECT_EQ(a.admit(1, 100), 2u);
  // Premium still gets its full 3.
  EXPECT_EQ(a.admit(0, 3), 3u);
  EXPECT_EQ(a.admit(0, 1), 0u);  // budget exhausted
}

TEST(ClassifiedAdmission, SharedPoolIsWorkConserving) {
  ClassifiedAdmission a(5, {{"premium", 2}, {"standard", 2}});
  // Premium asks for 3: its 2 reserved + the 1 shared slot.
  EXPECT_EQ(a.admit(0, 3), 3u);
  // Standard still gets its reserved 2.
  EXPECT_EQ(a.admit(1, 5), 2u);
}

TEST(ClassifiedAdmission, TotalNeverExceedsLimit) {
  ClassifiedAdmission a(5, {{"a", 1}, {"b", 1}, {"c", 0}});
  std::uint64_t total = 0;
  total += a.admit(0, 10);
  total += a.admit(1, 10);
  total += a.admit(2, 10);
  EXPECT_LE(total, 5u);
  EXPECT_EQ(total, 5u) << "work conservation: the full budget is usable";
}

TEST(ClassifiedAdmission, IntervalResetRestoresBudgets) {
  ClassifiedAdmission a(5, {{"only", 2}});
  EXPECT_EQ(a.admit(0, 5), 5u);
  EXPECT_EQ(a.admit(0, 1), 0u);
  a.end_interval();
  EXPECT_EQ(a.admit(0, 5), 5u);
  EXPECT_EQ(a.admitted_total(0), 10u);
}

TEST(ClassifiedAdmission, AvailableReflectsBothPools) {
  ClassifiedAdmission a(6, {{"p", 2}, {"s", 1}});
  EXPECT_EQ(a.available(0), 5u);  // 2 reserved + 3 shared
  EXPECT_EQ(a.available(1), 4u);  // 1 reserved + 3 shared
  (void)a.admit(0, 4);            // uses 2 reserved + 2 shared
  EXPECT_EQ(a.available(0), 1u);
  EXPECT_EQ(a.available(1), 2u);  // own reservation + remaining shared
}

TEST(ClassifiedAdmission, RejectsOverSubscribedReservations) {
  EXPECT_DEATH(ClassifiedAdmission(5, {{"a", 3}, {"b", 3}}), "exceed");
}

TEST(ClassifiedAdmission, FairnessUnderSustainedOverload) {
  // Both classes flood every interval; admissions must track reservations
  // plus an even-ish share of nothing (premium drains shared first here
  // because it is asked first — order models priority).
  ClassifiedAdmission a(5, {{"premium", 3}, {"standard", 1}});
  for (int i = 0; i < 100; ++i) {
    (void)a.admit(0, 10);
    (void)a.admit(1, 10);
    a.end_interval();
  }
  EXPECT_EQ(a.admitted_total(0), 400u);  // 3 reserved + 1 shared per interval
  EXPECT_EQ(a.admitted_total(1), 100u);  // its reservation
}

}  // namespace
}  // namespace flashqos::core
