// Rebuild planner tests: coverage, source balance, pacing, trace merging,
// and the end-to-end QoS impact of rebuild traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/qos_pipeline.hpp"
#include "core/rebuild.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "trace/synthetic.hpp"

namespace flashqos::core {
namespace {

using decluster::DesignTheoretic;

const DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const DesignTheoretic s(d, true);
  return s;
}

TEST(RebuildPlan, CoversExactlyTheAffectedBuckets) {
  const auto plan = plan_rebuild(scheme931(), 4);
  std::set<BucketId> planned;
  for (const auto& item : plan.items) planned.insert(item.bucket);
  for (BucketId b = 0; b < scheme931().buckets(); ++b) {
    const auto reps = scheme931().replicas(b);
    const bool affected = std::find(reps.begin(), reps.end(), 4u) != reps.end();
    EXPECT_EQ(planned.count(b) == 1, affected) << "bucket " << b;
  }
  // (9,3,1): each device stores 12 replicas -> 12 affected buckets.
  EXPECT_EQ(plan.items.size(), 12u);
}

TEST(RebuildPlan, SourcesAreSurvivingReplicas) {
  const auto plan = plan_rebuild(scheme931(), 0);
  for (const auto& item : plan.items) {
    EXPECT_NE(item.source, 0u);
    const auto reps = scheme931().replicas(item.bucket);
    EXPECT_NE(std::find(reps.begin(), reps.end(), item.source), reps.end());
  }
}

TEST(RebuildPlan, SourceLoadIsBalanced) {
  const auto plan = plan_rebuild(scheme931(), 7);
  std::vector<int> load(9, 0);
  for (const auto& item : plan.items) ++load[item.source];
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end() - 1);
  // 12 reads over 8 surviving devices: greedy keeps the spread tight.
  EXPECT_LE(*hi - *std::min_element(load.begin(), load.end()), 3);
  (void)lo;
  (void)hi;
}

TEST(RebuildPlan, DurationScalesWithRate) {
  const auto plan = plan_rebuild(scheme931(), 2);
  EXPECT_EQ(plan.estimated_duration(1000.0),
            static_cast<SimTime>(plan.items.size()) * kMillisecond);
  EXPECT_GT(plan.estimated_duration(10.0), plan.estimated_duration(1000.0));
}

TEST(RebuildTrace, PacedAndSorted) {
  const auto plan = plan_rebuild(scheme931(), 1);
  const auto t = rebuild_trace(plan, 5 * kMillisecond, 2000.0);
  EXPECT_EQ(t.events.size(), plan.items.size());
  EXPECT_TRUE(trace::valid_trace(t));
  EXPECT_EQ(t.events.front().time, 5 * kMillisecond);
  EXPECT_EQ(t.events[1].time - t.events[0].time, kMillisecond / 2);
}

TEST(TraceMerge, InterleavesByTime) {
  trace::Trace a, b;
  a.report_interval = kSecond;
  a.events = {{.time = 0, .block = 1}, {.time = 100, .block = 2}};
  b.events = {{.time = 50, .block = 3}, {.time = 150, .block = 4}};
  const auto m = trace::merge(a, b);
  ASSERT_EQ(m.events.size(), 4u);
  EXPECT_TRUE(trace::valid_trace(m));
  EXPECT_EQ(m.events[0].block, 1u);
  EXPECT_EQ(m.events[1].block, 3u);
  EXPECT_EQ(m.events[2].block, 2u);
  EXPECT_EQ(m.events[3].block, 4u);
}

TEST(RebuildEndToEnd, RebuildTrafficServesFromPlannedSurvivors) {
  // Foreground + rebuild merged through the pipeline with the failed
  // device down: everything completes, nothing routed to the dead device.
  const auto& scheme = scheme931();
  const DeviceId dead = 6;
  const auto plan = plan_rebuild(scheme, dead);
  const auto fg = trace::generate_synthetic({.bucket_pool = scheme.buckets(),
                                             .requests_per_interval = 3,
                                             .total_requests = 3000,
                                             .seed = 21});
  const auto merged = trace::merge(fg, rebuild_trace(plan, 0, 5000.0));

  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  cfg.faults.outages = {{.device = dead, .fail_at = 0}};
  const auto r = QosPipeline(scheme, cfg).run(merged);
  EXPECT_EQ(r.overall.failed, 0u);
  EXPECT_EQ(r.deadline_violations, 0u);
  for (const auto& o : r.outcomes) EXPECT_NE(o.device, dead);
}

TEST(RebuildEndToEnd, RebuildRateTradesSpeedForDeferral) {
  const auto& scheme = scheme931();
  const DeviceId dead = 3;
  const auto plan = plan_rebuild(scheme, dead);
  const auto fg = trace::generate_synthetic({.bucket_pool = scheme.buckets(),
                                             .requests_per_interval = 4,
                                             .total_requests = 12000,
                                             .seed = 23});
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  cfg.faults.outages = {{.device = dead, .fail_at = 0}};

  double slow_deferral = 0.0, fast_deferral = 0.0;
  for (const double rate : {2000.0, 20000.0}) {
    const auto merged = trace::merge(fg, rebuild_trace(plan, 0, rate));
    const auto r = QosPipeline(scheme, cfg).run(merged);
    (rate < 10000.0 ? slow_deferral : fast_deferral) = r.overall.pct_deferred;
  }
  EXPECT_GE(fast_deferral, slow_deferral)
      << "aggressive rebuild competes harder with foreground reads";
}

}  // namespace
}  // namespace flashqos::core
