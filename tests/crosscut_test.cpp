// Cross-cutting behaviours not owned by a single module: mode
// equivalences, combined statistical+failure operation, stepping
// equivalence of the simulators, substrate replay exactness, and
// generator determinism.
#include <gtest/gtest.h>

#include "core/qos_pipeline.hpp"
#include "core/sampler.hpp"
#include "core/substrate_replay.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "flashsim/ssd_module.hpp"
#include "trace/synthetic.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace flashqos {
namespace {

using core::AdmissionMode;
using core::MappingMode;
using core::PipelineConfig;
using core::QosPipeline;
using core::RetrievalMode;
using decluster::DesignTheoretic;

const DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const DesignTheoretic s(d, true);
  return s;
}

TEST(ModeEquivalence, BoundaryTracesDispatchIdenticallyInBothModes) {
  // When every arrival sits exactly on an interval boundary, the aligned
  // mode's "defer to boundary" is a no-op and the two retrieval modes
  // must produce identical dispatch times and per-request finishes.
  const auto t = trace::generate_synthetic({.bucket_pool = 36,
                                            .requests_per_interval = 5,
                                            .total_requests = 2000,
                                            .seed = 77});
  PipelineConfig cfg;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  cfg.retrieval = RetrievalMode::kOnline;
  const auto online = QosPipeline(scheme931(), cfg).run(t);
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  const auto aligned = QosPipeline(scheme931(), cfg).run(t);
  ASSERT_EQ(online.outcomes.size(), aligned.outcomes.size());
  for (std::size_t i = 0; i < online.outcomes.size(); ++i) {
    EXPECT_EQ(online.outcomes[i].dispatch, aligned.outcomes[i].dispatch) << i;
    EXPECT_EQ(online.outcomes[i].finish, aligned.outcomes[i].finish) << i;
  }
}

TEST(StatisticalWithFailures, SurplusNeverRoutesToDownDevices) {
  const auto p_table =
      core::sample_optimal_probabilities(scheme931(), 16, {.samples_per_size = 400});
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kStatistical;
  cfg.mapping = MappingMode::kModulo;
  cfg.epsilon = 0.5;  // generous: force the surplus path to exercise
  cfg.p_table = p_table;
  cfg.faults.outages = {{.device = 2, .fail_at = 0}};
  const auto t = trace::generate_synthetic({.bucket_pool = 36,
                                            .requests_per_interval = 8,
                                            .total_requests = 8000,
                                            .seed = 5});
  const auto r = QosPipeline(scheme931(), cfg).run(t);
  EXPECT_EQ(r.overall.failed, 0u);
  bool surplus_queued = false;
  for (const auto& o : r.outcomes) {
    EXPECT_NE(o.device, 2u);
    surplus_queued |= o.start > o.dispatch;
  }
  EXPECT_TRUE(surplus_queued) << "ε = 0.5 must exercise the queueing surplus path";
  // Statistical admission defers strictly less than deterministic on the
  // same degraded, over-budget workload (8 req/interval vs 8 live devices
  // is critical load, so deferral stays substantial in both).
  cfg.admission = AdmissionMode::kDeterministic;
  const auto det = QosPipeline(scheme931(), cfg).run(t);
  EXPECT_LT(r.overall.pct_deferred, det.overall.pct_deferred);
}

TEST(SsdStepping, RunUntilIncrementsMatchOneShotRun) {
  flashsim::SsdModuleConfig cfg;
  cfg.packages = 2;
  cfg.ftl = {.blocks = 16,
             .pages_per_block = 8,
             .overprovision_blocks = 4,
             .gc_trigger_blocks = 2};
  cfg.cache_pages = 8;

  const auto drive = [&](bool stepped) {
    flashsim::SsdModule m(cfg);
    Rng rng(3);
    SimTime t = 0;
    for (int i = 0; i < 500; ++i) {
      t += static_cast<SimTime>(rng.below(80 * kMicrosecond));
      m.submit({.id = static_cast<std::uint64_t>(i),
                .page = rng.below(m.logical_pages()),
                .is_write = rng.chance(0.25),
                .submit_time = t});
    }
    if (stepped) {
      for (SimTime step = 0; step < t + kSecond; step += 3 * kMillisecond) {
        m.run_until(step);
      }
    }
    m.run();
    return m.take_completions();
  };
  const auto once = drive(false);
  const auto stepped = drive(true);
  ASSERT_EQ(once.size(), stepped.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].id, stepped[i].id);
    EXPECT_EQ(once[i].finish, stepped[i].finish);
  }
}

TEST(SubstrateReplay, ReadOnlyPlanIsExactlyTheConstant) {
  const auto t = trace::generate_synthetic({.bucket_pool = 36,
                                            .requests_per_interval = 4,
                                            .total_requests = 2000,
                                            .seed = 31});
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  const auto plan = QosPipeline(scheme931(), cfg).run(t);

  flashsim::SsdModuleConfig module;
  module.packages = 4;
  module.ftl = {.blocks = 64,
                .pages_per_block = 64,
                .overprovision_blocks = 8,
                .gc_trigger_blocks = 3};
  const auto replay = core::replay_on_ssd(plan, t, scheme931(), module);
  EXPECT_EQ(replay.reads, 2000u);
  EXPECT_EQ(replay.writes, 0u);
  EXPECT_DOUBLE_EQ(replay.within_guarantee, 1.0);
  EXPECT_DOUBLE_EQ(replay.max_ms, to_ms(kPageReadLatency))
      << "an admitted read-only plan is the substrate's calibration point";
}

TEST(SubstrateReplay, EmptyPlan) {
  core::PipelineResult empty;
  trace::Trace t;
  flashsim::SsdModuleConfig module;
  module.ftl = {.blocks = 16,
                .pages_per_block = 8,
                .overprovision_blocks = 4,
                .gc_trigger_blocks = 2};
  const auto r = core::replay_on_ssd(empty, t, scheme931(), module);
  EXPECT_EQ(r.reads, 0u);
  EXPECT_DOUBLE_EQ(r.within_guarantee, 0.0);
}

TEST(WorkloadDeterminism, SameSeedSameTrace) {
  const auto a = trace::generate_workload(trace::exchange_params(0.1, 123));
  const auto b = trace::generate_workload(trace::exchange_params(0.1, 123));
  const auto c = trace::generate_workload(trace::exchange_params(0.1, 124));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].block, b.events[i].block);
  }
  EXPECT_NE(a.events.size(), c.events.size());
}

TEST(PrimaryOnlyWithAdmission, BudgetStillCapsThroughput) {
  // The baseline scheduler composed with deterministic admission: at most
  // S requests dispatch per interval even though the baseline never remaps.
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  cfg.scheduler = core::SchedulerMode::kPrimaryOnly;
  const auto t = trace::generate_synthetic({.bucket_pool = 36,
                                            .requests_per_interval = 9,
                                            .total_requests = 900,
                                            .seed = 41});
  const auto r = QosPipeline(scheme931(), cfg).run(t);
  // Count dispatches per QoS interval.
  std::map<SimTime, int> per_interval;
  for (const auto& o : r.outcomes) {
    ++per_interval[o.dispatch / kBaseInterval];
  }
  for (const auto& [interval, n] : per_interval) {
    EXPECT_LE(n, 5) << "interval " << interval;
  }
}

TEST(FimMinSupport, HigherSupportShrinksTheMappingTable) {
  auto p = trace::tpce_params(0.1, 71);
  const auto t = trace::generate_workload(p);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kFim;
  double match_s1 = 0.0, match_s4 = 0.0;
  for (const std::uint64_t support : {1u, 4u}) {
    cfg.fim_min_support = support;
    const auto r = QosPipeline(scheme931(), cfg).run(t);
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 1; i < r.intervals.size(); ++i) {
      if (r.intervals[i].requests == 0) continue;
      sum += r.intervals[i].fim_match_rate;
      ++n;
    }
    (support == 1 ? match_s1 : match_s4) = n ? sum / n : 0.0;
  }
  EXPECT_GT(match_s1, match_s4)
      << "raising the support prunes pairs and lowers the match rate";
  EXPECT_GT(match_s4, 0.0);
}

// The verifier's independently recomputed allocation audit must agree with
// decluster::validate across every scheme family, not just the design path
// (the agreement check is embedded in verify_allocation).
TEST(VerifierCrossCheck, AllocationAuditAgreesAcrossSchemeFamilies) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic design_scheme(d, true);
  const decluster::Raid1Mirrored mirrored(9, 3, 36);
  const decluster::Raid1Chained chained(9, 3, 36);
  const decluster::RandomDuplicate rda(9, 3, 36, 17);
  const decluster::Partitioned part(9, 3, 3, 36);
  const decluster::Orthogonal orth(9);
  const decluster::AllocationScheme* schemes[] = {
      &design_scheme, &mirrored, &chained, &rda, &part, &orth};
  for (const auto* s : schemes) {
    const auto r = verify::verify_allocation(*s);
    EXPECT_TRUE(r.passed()) << r.to_string();
  }
}

// Retrieval oracle on a non-design allocation: optimality, minimality and
// degraded-mode claims must hold for any scheme the pipeline can run on.
TEST(VerifierCrossCheck, RetrievalOracleHoldsOffTheDesignPath) {
  const decluster::Raid1Chained chained(8, 3, 48);
  const auto r = verify::verify_retrieval(chained, {.trials = 20, .seed = 9});
  EXPECT_TRUE(r.passed()) << r.to_string();
}

}  // namespace
}  // namespace flashqos
