// Unit tests for obs v2: windowed time-series (ring retention, the
// order-independent fold contract, snapshot determinism across recording
// thread counts, the seeded mis-fold knob), the SLO burn-rate monitor, and
// an end-to-end smoke of the /metrics HTTP exporter on an ephemeral port
// (byte-compare against the exporter functions, 404/405 handling, clean
// stop/restart).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "obs/export.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace flashqos::obs {
namespace {

// ---------------------------------------------------------------------------
// TimeSeries ring semantics

TEST(TimeSeries, RecordsAggregatePerWindow) {
  TimeSeries s(100, 8);
  s.record(10, 5);
  s.record(90, 7);
  s.record(150, 2);
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.points.size(), 2u);
  const auto* w0 = snap.find_window(0);
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->sum, 12);
  EXPECT_EQ(w0->count, 2u);
  EXPECT_EQ(w0->min, 5);
  EXPECT_EQ(w0->max, 7);
  EXPECT_EQ(w0->first_time, 10);
  const auto* w1 = snap.find_window(1);
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->count, 1u);
  EXPECT_EQ(w1->sum, 2);
  EXPECT_EQ(snap.evicted, 0u);
}

TEST(TimeSeries, RingWrapKeepsNewestWindowPerResidue) {
  TimeSeries s(100, 4);
  // Windows 0..9 over a 4-slot ring: residue r retains its highest window.
  for (std::int64_t w = 0; w < 10; ++w) s.record(w * 100, w);
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.points.size(), 4u);
  for (std::int64_t want : {6, 7, 8, 9}) {
    const auto* p = snap.find_window(want);
    ASSERT_NE(p, nullptr) << "window " << want;
    EXPECT_EQ(p->sum, want);
    EXPECT_EQ(p->count, 1u);
  }
  EXPECT_EQ(snap.evicted, 6u);  // six overwrites
}

TEST(TimeSeries, LateRecordForEvictedWindowIsDropped) {
  TimeSeries s(100, 4);
  for (std::int64_t w = 0; w < 8; ++w) s.record(w * 100, 1);
  const auto before = s.snapshot();
  s.record(250, 99);  // window 2: older than slot occupant (window 6)
  const auto after = s.snapshot();
  ASSERT_EQ(after.points.size(), before.points.size());
  const auto* w6 = after.find_window(6);
  ASSERT_NE(w6, nullptr);
  EXPECT_EQ(w6->sum, 1);  // untouched by the late record
  EXPECT_EQ(after.evicted, before.evicted + 1);
}

TEST(TimeSeries, MergeEqualsIndividualRecords) {
  TimeSeries a(50, 16);
  TimeSeries b(50, 16);
  const std::vector<std::pair<SimTime, std::int64_t>> recs = {
      {110, 4}, {120, -3}, {149, 9}, {101, 9}};
  std::int64_t sum = 0;
  std::int64_t mn = recs.front().second;
  std::int64_t mx = recs.front().second;
  SimTime first = recs.front().first;
  for (const auto& [at, v] : recs) {
    a.record(at, v);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    first = std::min(first, at);
  }
  b.merge(2, first, sum, recs.size(), mn, mx);
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  ASSERT_EQ(sa.points.size(), 1u);
  ASSERT_EQ(sb.points.size(), 1u);
  EXPECT_EQ(sa.points[0].sum, sb.points[0].sum);
  EXPECT_EQ(sa.points[0].count, sb.points[0].count);
  EXPECT_EQ(sa.points[0].min, sb.points[0].min);
  EXPECT_EQ(sa.points[0].max, sb.points[0].max);
  EXPECT_EQ(sa.points[0].first_time, sb.points[0].first_time);
}

TEST(TimeSeries, ResetDropsPointsKeepsWidth) {
  TimeSeries s(100, 4);
  s.record(10, 1);
  s.reset();
  EXPECT_TRUE(s.snapshot().points.empty());
  EXPECT_EQ(s.width(), 100);
  s.record(10, 2);
  EXPECT_EQ(s.snapshot().points.size(), 1u);
}

// ---------------------------------------------------------------------------
// Fold exactness + determinism across thread counts

struct Rec {
  std::size_t series;
  SimTime at;
  std::int64_t value;
};

std::vector<Rec> fixture_records(std::size_t n, std::uint64_t seed) {
  std::vector<Rec> recs;
  recs.reserve(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    recs.push_back({static_cast<std::size_t>(rng.below(3)),
                    static_cast<SimTime>(rng.below(40'000)),
                    static_cast<std::int64_t>(rng.between(-50, 50))});
  }
  return recs;
}

/// Replay `recs` into a fresh registry with `threads` workers (records
/// partitioned round-robin) and return the snapshot.
TimeSeriesSnapshot fold_with_threads(const std::vector<Rec>& recs,
                                     std::size_t threads) {
  TimeSeriesRegistry reg;
  std::vector<TimeSeries*> series = {&reg.series("t.a", "", 100, 64),
                                     &reg.series("t.b", "", 100, 64),
                                     &reg.series("t.c", "k=\"1\"", 100, 64)};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = t; i < recs.size(); i += threads) {
        series[recs[i].series]->record(recs[i].at, recs[i].value);
      }
    });
  }
  for (auto& w : workers) w.join();
  return reg.snapshot();
}

/// Point-content equality; `evicted` is excluded by contract (its value is
/// arrival-order dependent, point content is not).
void expect_same_points(const TimeSeriesSnapshot& a,
                        const TimeSeriesSnapshot& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    const auto& sa = a.series[i];
    const auto& sb = b.series[i];
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.labels, sb.labels);
    EXPECT_EQ(sa.width, sb.width);
    ASSERT_EQ(sa.points.size(), sb.points.size()) << sa.name;
    for (std::size_t j = 0; j < sa.points.size(); ++j) {
      const auto& pa = sa.points[j];
      const auto& pb = sb.points[j];
      EXPECT_EQ(pa.window, pb.window) << sa.name;
      EXPECT_EQ(pa.sum, pb.sum) << sa.name << " w" << pa.window;
      EXPECT_EQ(pa.count, pb.count) << sa.name << " w" << pa.window;
      EXPECT_EQ(pa.min, pb.min) << sa.name << " w" << pa.window;
      EXPECT_EQ(pa.max, pb.max) << sa.name << " w" << pa.window;
      EXPECT_EQ(pa.first_time, pb.first_time) << sa.name << " w" << pa.window;
    }
  }
}

TEST(TimeSeriesFold, MatchesMapOracle) {
  const auto recs = fixture_records(5000, 7);
  const auto snap = fold_with_threads(recs, 1);
  // Independent oracle: full per-window merge in a map, then the retention
  // rule (only the highest window per residue class survives a 64-ring).
  struct Pt {
    std::int64_t sum = 0;
    std::uint64_t count = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    SimTime first = 0;
  };
  std::array<std::map<std::int64_t, Pt>, 3> oracle;
  for (const auto& r : recs) {
    auto& p = oracle[r.series][r.at / 100];
    if (p.count == 0) {
      p.min = p.max = r.value;
      p.first = r.at;
    } else {
      p.min = std::min(p.min, r.value);
      p.max = std::max(p.max, r.value);
      p.first = std::min(p.first, r.at);
    }
    p.sum += r.value;
    ++p.count;
  }
  const std::array<const char*, 3> names = {"t.a", "t.b", "t.c"};
  const std::array<const char*, 3> labels = {"", "", "k=\"1\""};
  for (std::size_t k = 0; k < 3; ++k) {
    std::map<std::int64_t, std::int64_t> newest;  // residue -> max window
    for (const auto& [w, p] : oracle[k]) {
      auto [it, fresh] = newest.try_emplace(w % 64, w);
      if (!fresh && w > it->second) it->second = w;
    }
    const auto* s = snap.find(names[k], labels[k]);
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->points.size(), newest.size());
    for (const auto& [res, w] : newest) {
      const auto& want = oracle[k].at(w);
      const auto* got = s->find_window(w);
      ASSERT_NE(got, nullptr) << names[k] << " window " << w;
      EXPECT_EQ(got->sum, want.sum);
      EXPECT_EQ(got->count, want.count);
      EXPECT_EQ(got->min, want.min);
      EXPECT_EQ(got->max, want.max);
      EXPECT_EQ(got->first_time, want.first);
    }
  }
}

TEST(TimeSeriesFold, DeterministicAcrossThreadCounts) {
  const auto recs = fixture_records(20'000, 11);
  const auto serial = fold_with_threads(recs, 1);
  expect_same_points(serial, fold_with_threads(recs, 2));
  expect_same_points(serial, fold_with_threads(recs, 8));
}

TEST(TimeSeriesRegistry, MisfoldKnobPerturbsEveryPoint) {
  TimeSeriesRegistry reg;
  auto& s = reg.series("m.x", "", 100, 16);
  s.record(10, 1);
  s.record(250, 4);
  const auto clean = reg.snapshot();
  reg.set_misfold_for_test(true);
  const auto bad = reg.snapshot();
  reg.set_misfold_for_test(false);
  const auto clean_again = reg.snapshot();
  ASSERT_EQ(clean.series.size(), 1u);
  ASSERT_EQ(bad.series.size(), 1u);
  for (std::size_t j = 0; j < clean.series[0].points.size(); ++j) {
    EXPECT_EQ(bad.series[0].points[j].sum, clean.series[0].points[j].sum + 1);
    EXPECT_EQ(clean_again.series[0].points[j].sum,
              clean.series[0].points[j].sum);
  }
}

// ---------------------------------------------------------------------------
// SLO monitor

SloSpec one_window_spec(double budget) {
  SloSpec spec;
  spec.kind = SloKind::kP99Response;
  spec.threshold_ns = 1000;
  spec.budget = budget;
  spec.short_windows = 1;
  spec.long_windows = 1;
  return spec;
}

TEST(SloMonitor, OneWindowSpecClassifiesExactly) {
  SloMonitor mon;
  mon.configure({one_window_spec(0.01)});
  mon.record(0, 0, 1000, 0);   // burn 0 -> ok
  EXPECT_EQ(mon.state(0), SloMonitor::State::kOk);
  mon.record(0, 1, 1000, 6);   // 0.6% of 1% budget -> warn (>= 0.5 burn)
  EXPECT_EQ(mon.state(0), SloMonitor::State::kWarn);
  mon.record(0, 2, 1000, 25);  // 2.5% of 1% budget -> page
  EXPECT_EQ(mon.state(0), SloMonitor::State::kPage);
  mon.record(0, 3, 0, 0);      // idle window -> ok again
  EXPECT_EQ(mon.state(0), SloMonitor::State::kOk);
  const auto snap = mon.snapshot();
  ASSERT_EQ(snap.specs.size(), 1u);
  EXPECT_EQ(snap.specs[0].windows, 4u);
  EXPECT_EQ(snap.specs[0].pages, 1u);
  EXPECT_EQ(snap.specs[0].warns, 1u);
  ASSERT_EQ(snap.log.size(), 2u);  // the warn and the page, oldest first
  EXPECT_EQ(snap.log[0].state, SloMonitor::State::kWarn);
  EXPECT_EQ(snap.log[1].state, SloMonitor::State::kPage);
  EXPECT_EQ(snap.log[1].window, 2);
}

TEST(SloMonitor, MultiWindowBurnNeedsBothHorizons) {
  SloSpec spec = one_window_spec(0.01);
  spec.short_windows = 1;
  spec.long_windows = 4;
  SloMonitor mon;
  mon.configure({spec});
  // Three healthy windows dilute the long burn: one fully-bad window is
  // 25% bad over the 4-window horizon -> long burn 25 >= 1.0, but after
  // only healthy history a single bad window pages (both horizons breach).
  for (std::int64_t w = 0; w < 3; ++w) mon.record(0, w, 100, 0);
  mon.record(0, 3, 100, 100);
  EXPECT_EQ(mon.state(0), SloMonitor::State::kPage);
  // A healthy window drops the short burn to 0 -> ok, regardless of the
  // long horizon still containing the bad window.
  mon.record(0, 4, 100, 0);
  EXPECT_EQ(mon.state(0), SloMonitor::State::kOk);
}

TEST(SloMonitor, ViolationLogIsBounded) {
  SloMonitor mon;
  mon.configure({one_window_spec(1e-6)});
  for (std::int64_t w = 0; w < 400; ++w) mon.record(0, w, 10, 10);
  const auto snap = mon.snapshot();
  EXPECT_EQ(snap.log.size(), 256u);
  EXPECT_EQ(snap.log_dropped, 400u - 256u);
  // The log keeps the EARLIEST violations (most diagnostic for a replay)
  // and counts the overflow instead of ring-rotating.
  EXPECT_EQ(snap.log.front().window, 0);
  EXPECT_EQ(snap.log.back().window, 255);
}

TEST(SloSpecApi, NamesAndValidation) {
  SloSpec spec = one_window_spec(0.01);
  EXPECT_EQ(spec.name(), "p99_response/*");
  spec.tenant = "gold";
  spec.kind = SloKind::kAdmissionFloor;
  EXPECT_EQ(spec.name(), "admission_floor/gold");
  EXPECT_TRUE(spec.validate().empty());
  spec.budget = 0.0;
  EXPECT_FALSE(spec.validate().empty());
}

TEST(SloMonitor, JsonReportHoldsSpecsAndViolations) {
  SloMonitor mon;
  mon.configure({one_window_spec(1e-6)});
  mon.record(0, 0, 10, 10);
  const auto text = to_json(mon.snapshot());
  EXPECT_NE(text.find("\"slos\": ["), std::string::npos);
  EXPECT_NE(text.find("\"p99_response/*\""), std::string::npos);
  EXPECT_NE(text.find("\"state\": \"page\""), std::string::npos);
  EXPECT_NE(text.find("\"violations\": ["), std::string::npos);
  EXPECT_NE(text.find("\"violations_dropped\": 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipeline integration: windowed series of a real replay

TEST(PipelineWindows, ReadCountsSumAcrossWindows) {
  if constexpr (!kEnabled) {
    GTEST_SKIP() << "FLASHQOS_OBS=OFF";
  } else {
    auto& tsr = TimeSeriesRegistry::global();
    tsr.reset();
    const decluster::DesignTheoretic scheme(design::make_9_3_1(), true);
    trace::SyntheticParams sp;
    sp.bucket_pool = scheme.buckets();
    sp.requests_per_interval = 3;
    sp.total_requests = 300;
    const auto t = trace::generate_synthetic(sp);
    const auto result =
        core::QosPipeline(scheme, core::PipelineConfig{}).run(t);
    std::uint64_t reads = 0;
    for (const auto& o : result.outcomes) {
      if (!o.failed && !o.is_write) ++reads;
    }
    const auto snap = tsr.snapshot();
    const auto* win_reads = snap.find("win.reads");
    ASSERT_NE(win_reads, nullptr);
    std::uint64_t total = 0;
    std::uint64_t device_total = 0;
    for (const auto& p : win_reads->points) total += p.count;
    EXPECT_EQ(total, reads);
    for (const auto& s : snap.series) {
      if (s.name != "win.device.reads") continue;
      for (const auto& p : s.points) device_total += p.count;
    }
    EXPECT_EQ(device_total, reads);
    const auto* resp = snap.find("win.response_ns");
    ASSERT_NE(resp, nullptr);
    for (const auto& p : resp->points) {
      EXPECT_GE(p.min, 0);
      EXPECT_LE(p.min, p.max);
    }
    tsr.reset();
  }
}

// ---------------------------------------------------------------------------
// HTTP exporter smoke

/// Minimal loopback HTTP/1.0-style client: send `request`, read to EOF.
std::string http_roundtrip(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  std::string reply;
  if (::send(fd, request.data(), request.size(), 0) ==
      static_cast<ssize_t>(request.size())) {
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      reply.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return reply;
}

std::string body_of(const std::string& reply) {
  const auto sep = reply.find("\r\n\r\n");
  return sep == std::string::npos ? std::string{} : reply.substr(sep + 4);
}

TEST(HttpExporter, ServesMetricsSeriesAndSlo) {
  MetricRegistry::global().reset();
  TimeSeriesRegistry::global().reset();
  MetricRegistry::global().counter("smoke.requests").inc(42);
  TimeSeriesRegistry::global().series("smoke.win", "", 100, 8).record(10, 3);

  HttpExporter server;
  ASSERT_TRUE(server.start()) << server.last_error();
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const auto metrics = http_roundtrip(
      server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // Quiescent byte-compare: the handler bumps its own request counter
  // BEFORE snapshotting, so the served body must equal a fresh local
  // export of the same registry, byte for byte.
  EXPECT_EQ(body_of(metrics), to_prometheus(MetricRegistry::global().snapshot()));
  EXPECT_NE(body_of(metrics).find("flashqos_smoke_requests_total 42\n"),
            std::string::npos);

  const auto series = http_roundtrip(server.port(),
                                     "GET /series HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(series.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_EQ(body_of(series),
            to_csv(TimeSeriesRegistry::global().snapshot()));

  const auto slo =
      http_roundtrip(server.port(), "GET /slo HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(slo.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(slo.find("\"slos\": ["), std::string::npos);

  EXPECT_TRUE(server.self_probe());
  server.stop();
  EXPECT_FALSE(server.running());
  MetricRegistry::global().reset();
  TimeSeriesRegistry::global().reset();
}

TEST(HttpExporter, RejectsUnknownPathAndMethod) {
  HttpExporter server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const auto missing = http_roundtrip(
      server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
  const auto post = http_roundtrip(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.1 405 Method Not Allowed\r\n", 0), 0u);
  server.stop();
}

TEST(HttpExporter, StopsAndRestartsCleanly) {
  HttpExporter server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const auto first_port = server.port();
  EXPECT_TRUE(server.self_probe());
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  ASSERT_TRUE(server.start()) << server.last_error();
  EXPECT_TRUE(server.self_probe());
  EXPECT_NE(server.port(), 0);
  (void)first_port;  // ephemeral; the second bind may land anywhere
  server.stop();
}

}  // namespace
}  // namespace flashqos::obs
