// Transversal designs (rack-aware replication): GDD axioms, the retrieval
// guarantee on TD allocations, and whole-rack failure injection.
#include <gtest/gtest.h>

#include <set>

#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/transversal.hpp"
#include "retrieval/dtr.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace flashqos {
namespace {

using design::rack_devices;
using design::rack_of;
using design::transversal_design;
using decluster::DesignTheoretic;

struct TdShape {
  std::uint32_t k;
  std::uint32_t n;
};

class TdSweep : public ::testing::TestWithParam<TdShape> {};

TEST_P(TdSweep, GroupDivisibleAxioms) {
  const auto [k, n] = GetParam();
  const auto d = transversal_design(k, n);
  EXPECT_EQ(d.points(), k * n);
  EXPECT_EQ(d.block_size(), k);
  EXPECT_EQ(d.block_count(), static_cast<std::size_t>(n) * n);
  // One point per rack in every block.
  for (const auto& b : d.blocks()) {
    std::set<std::uint32_t> racks;
    for (const auto p : b) racks.insert(rack_of(p, n));
    EXPECT_EQ(racks.size(), k);
  }
  // λ = 1 across racks, λ = 0 within (count pair coverage by hand).
  std::map<std::pair<design::PointId, design::PointId>, int> cover;
  for (const auto& b : d.blocks()) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      for (std::size_t j = i + 1; j < b.size(); ++j) {
        ++cover[{std::min(b[i], b[j]), std::max(b[i], b[j])}];
      }
    }
  }
  for (design::PointId p = 0; p < d.points(); ++p) {
    for (design::PointId q = p + 1; q < d.points(); ++q) {
      const int c = cover.count({p, q}) ? cover[{p, q}] : 0;
      if (rack_of(p, n) == rack_of(q, n)) {
        EXPECT_EQ(c, 0) << "same-rack pair must never co-occur";
      } else {
        EXPECT_EQ(c, 1) << "cross-rack pair exactly once";
      }
    }
  }
  EXPECT_TRUE(d.is_linear_space());
  EXPECT_FALSE(d.is_steiner());
}

INSTANTIATE_TEST_SUITE_P(Shapes, TdSweep,
                         ::testing::Values(TdShape{3, 3}, TdShape{3, 5},
                                           TdShape{4, 5}, TdShape{5, 7},
                                           TdShape{3, 7}, TdShape{8, 7}));

TEST(Transversal, GuaranteeHoldsOnTdAllocation) {
  // λ <= 1 is all the retrieval guarantee needs; verify S(k, M) batches
  // schedule in M rounds on TD(3, 5) (15 devices, 3 copies, 75 buckets
  // with rotations).
  const auto d = transversal_design(3, 5);
  const DesignTheoretic scheme(d, true);
  EXPECT_EQ(scheme.buckets(), 75u);
  Rng rng(5);
  for (std::uint32_t m = 1; m <= 2; ++m) {
    const auto limit = design::guarantee_buckets(3, m);
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t klen = 1 + rng.below(limit);
      std::vector<BucketId> batch;
      for (const auto b : rng.sample_without_replacement(scheme.buckets(), klen)) {
        batch.push_back(static_cast<BucketId>(b));
      }
      EXPECT_LE(retrieval::retrieve(batch, scheme).rounds, m);
    }
  }
}

TEST(Transversal, ReplicasSpanDistinctRacks) {
  const auto d = transversal_design(4, 5);
  const DesignTheoretic scheme(d, true);
  for (BucketId b = 0; b < scheme.buckets(); ++b) {
    std::set<std::uint32_t> racks;
    for (const auto dev : scheme.replicas(b)) racks.insert(rack_of(dev, 5));
    EXPECT_EQ(racks.size(), 4u) << "every replica in its own rack";
  }
}

TEST(Transversal, WholeRackFailureLosesNothing) {
  // Kill rack 1 entirely (5 devices at once). Every bucket keeps 2 live
  // replicas; the QoS pipeline must serve everything with zero failures
  // and zero deadline violations.
  const auto d = transversal_design(3, 5);
  const DesignTheoretic scheme(d, true);
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kOnline;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kModulo;
  for (const auto dev : rack_devices(1, 5)) {
    cfg.faults.outages.push_back({.device = dev, .fail_at = 0});
  }
  const auto t = trace::generate_synthetic({.bucket_pool = scheme.buckets(),
                                            .requests_per_interval = 4,
                                            .total_requests = 8000,
                                            .seed = 3});
  const auto r = core::QosPipeline(scheme, cfg).run(t);
  EXPECT_EQ(r.overall.failed, 0u) << "rack-disjoint replicas: no data loss";
  EXPECT_EQ(r.deadline_violations, 0u);
  for (const auto& o : r.outcomes) {
    EXPECT_NE(rack_of(o.device, 5), 1u) << "nothing served from the dead rack";
  }
}

TEST(Transversal, SteinerSchemeLosesDataOnCorrelatedFailure) {
  // Contrast: the (9,3,1) Steiner design has blocks entirely inside any
  // 3-device set that forms a block — kill block (0,1,2)'s devices and its
  // buckets are gone. TD's rack structure makes that impossible for
  // rack-aligned failures. (This is the ablation that motivates TD.)
  const auto td = transversal_design(3, 3);  // 9 devices, racks {0,1,2} ...
  const DesignTheoretic scheme(td, true);
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kOnline;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kModulo;
  // Kill rack 0 (devices 0,1,2) — the same devices whose loss destroys
  // bucket (0,1,2) under the paper's (9,3,1) design.
  for (const auto dev : rack_devices(0, 3)) {
    cfg.faults.outages.push_back({.device = dev, .fail_at = 0});
  }
  const auto t = trace::generate_synthetic({.bucket_pool = scheme.buckets(),
                                            .requests_per_interval = 3,
                                            .total_requests = 3000,
                                            .seed = 9});
  const auto r = core::QosPipeline(scheme, cfg).run(t);
  EXPECT_EQ(r.overall.failed, 0u)
      << "TD(3,3) survives the exact failure that kills (9,3,1) buckets";
}

TEST(Transversal, RejectsNonPrimeOrUndersizedParameters) {
  EXPECT_DEATH(transversal_design(3, 4), "prime");
  EXPECT_DEATH(transversal_design(9, 7), "k <= n");
}

}  // namespace
}  // namespace flashqos
