// WFQ ordering-core and tenant-scheduler unit tests.
//
// The centerpiece is a brute-force reference simulator: an independent
// restatement of the WFQ semantics (virtual finish tags, index-order
// renormalization, ECN mark/shed, clock-free drops) exercised against
// core::WfqQueues on randomized enqueue/dispense/drop/exclusion patterns.
// Agreement is *bit-exact*, including the virtual clock — wfq.cpp promises
// the same additions in the same order, and this suite is the promise's
// enforcement point.
//
// The knob-divergence tests prove each WfqKnobs mutation changes observable
// behaviour at this layer, so the fairness oracle's mutation-liveness pass
// (flashqos_verify --fairness) is testing real defects, not dead switches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/tenant_scheduler.hpp"
#include "core/wfq.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "util/rng.hpp"
#include "verify/fairness_oracle.hpp"

using namespace flashqos;
using core::TenantScheduler;
using core::TenantSpec;
using core::WfqKnobs;
using core::WfqQueues;
using Enq = core::WfqQueues::Enqueue;

namespace {

// Independent brute-force restatement of the WFQ semantics. Deliberately
// naive (flat vectors, erase-from-front) — the value is that it re-derives
// every rule from the spec in wfq.hpp rather than sharing code with the
// production structure.
class ReferenceWfq {
 public:
  ReferenceWfq(std::vector<double> w, std::vector<std::size_t> cap,
               std::vector<std::size_t> mark)
      : w_(std::move(w)),
        cap_(std::move(cap)),
        mark_(std::move(mark)),
        items_(w_.size()),
        last_(w_.size(), 0.0) {}

  Enq enqueue(std::size_t q, std::uint64_t id) {
    if (items_[q].size() >= cap_[q]) return Enq::kShed;
    const double finish = std::max(vtime_, last_[q]) + 1.0 / w_[q];
    last_[q] = finish;
    items_[q].push_back(Tagged{id, finish});
    return items_[q].size() >= mark_[q] ? Enq::kMarked : Enq::kAccepted;
  }

  [[nodiscard]] std::optional<std::size_t> next(
      const std::vector<bool>& exclude) const {
    std::optional<std::size_t> best;
    for (std::size_t q = 0; q < items_.size(); ++q) {
      if (items_[q].empty()) continue;
      if (!exclude.empty() && exclude[q]) continue;
      if (!best || items_[q].front().finish < items_[*best].front().finish) {
        best = q;
      }
    }
    return best;
  }

  std::uint64_t pop(std::size_t q) {
    // Rate = weight sum over backlogged queues, summed in index order,
    // measured before the head is removed.
    double rate = 0.0;
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (!items_[i].empty()) rate += w_[i];
    }
    const std::uint64_t id = items_[q].front().id;
    items_[q].erase(items_[q].begin());
    vtime_ += 1.0 / rate;
    return id;
  }

  std::uint64_t drop_head(std::size_t q) {
    const std::uint64_t id = items_[q].front().id;
    items_[q].erase(items_[q].begin());
    return id;
  }

  [[nodiscard]] double vtime() const { return vtime_; }
  [[nodiscard]] std::size_t depth(std::size_t q) const {
    return items_[q].size();
  }

 private:
  struct Tagged {
    std::uint64_t id;
    double finish;
  };
  std::vector<double> w_;
  std::vector<std::size_t> cap_;
  std::vector<std::size_t> mark_;
  std::vector<std::vector<Tagged>> items_;
  std::vector<double> last_;
  double vtime_ = 0.0;
};

TEST(Wfq, HandComputedVirtualTags) {
  WfqQueues w({2.0, 1.0}, {8, 8}, {8, 8});
  EXPECT_EQ(w.enqueue(0, 10), Enq::kAccepted);  // F = 0 + 1/2
  EXPECT_EQ(w.enqueue(0, 11), Enq::kAccepted);  // F = 1/2 + 1/2 = 1
  EXPECT_EQ(w.enqueue(1, 20), Enq::kAccepted);  // F = 0 + 1 = 1

  ASSERT_TRUE(w.next({}).has_value());
  EXPECT_EQ(*w.next({}), 0u);  // 0.5 beats 1.0
  EXPECT_EQ(w.pop(0), 10u);
  EXPECT_EQ(w.virtual_time(), 1.0 / 3.0);  // both backlogged: rate 3

  // Heads now tie at F = 1.0; the lower index wins.
  EXPECT_EQ(*w.next({}), 0u);
  EXPECT_EQ(w.pop(0), 11u);
  EXPECT_EQ(w.virtual_time(), 1.0 / 3.0 + 1.0 / 3.0);

  EXPECT_EQ(*w.next({}), 1u);
  EXPECT_EQ(w.pop(1), 20u);  // alone: rate 1
  EXPECT_EQ(w.virtual_time(), 1.0 / 3.0 + 1.0 / 3.0 + 1.0);
  EXPECT_FALSE(w.next({}).has_value());
}

TEST(Wfq, RenormalizationCountsBackloggedWeightOnly) {
  // Two equal-weight queues, but only one is backlogged: the active tenant
  // gets the full rate, so V advances by a whole unit, not half.
  WfqQueues w({1.0, 1.0}, {4, 4}, {4, 4});
  (void)w.enqueue(0, 1);
  (void)w.pop(0);
  EXPECT_EQ(w.virtual_time(), 1.0);
}

TEST(Wfq, BacklogReentryRetagsFromVirtualTime) {
  WfqQueues w({1.0, 1.0}, {4, 4}, {4, 4});
  // Queue 0 serves one request alone (V -> 1, last_finish(0) = 1), then
  // queue 1 serves two alone (V -> 3). Queue 0 re-enters with a stale
  // last_finish: the new tag must start from V = 3, not from 1.
  (void)w.enqueue(0, 1);
  (void)w.pop(0);
  (void)w.enqueue(1, 2);
  (void)w.enqueue(1, 3);
  (void)w.pop(1);
  (void)w.pop(1);
  EXPECT_EQ(w.virtual_time(), 3.0);
  (void)w.enqueue(0, 4);  // F = max(3, 1) + 1 = 4
  (void)w.enqueue(1, 5);  // F = max(3, 3) + 1 = 4 — tie, index 0 first
  EXPECT_EQ(*w.next({}), 0u);

  // Opposite edge: a queue whose last_finish is *ahead* of V keeps its tag
  // chain (back-to-back enqueues may not leapfrog each other).
  WfqQueues v({1.0}, {4}, {4});
  (void)v.enqueue(0, 1);  // F = 1
  (void)v.enqueue(0, 2);  // F = max(0, 1) + 1 = 2, not 1
  (void)v.pop(0);         // V = 1
  (void)v.enqueue(0, 3);  // F = max(1, 2) + 1 = 3
  (void)v.pop(0);         // V = 2
  (void)v.pop(0);
  EXPECT_EQ(v.virtual_time(), 3.0);
}

TEST(Wfq, MarkAndShedThresholds) {
  WfqQueues w({1.0}, {3}, {2});
  EXPECT_EQ(w.enqueue(0, 1), Enq::kAccepted);  // depth 1 < mark 2
  EXPECT_EQ(w.enqueue(0, 2), Enq::kMarked);    // depth 2 >= mark
  EXPECT_EQ(w.enqueue(0, 3), Enq::kMarked);    // depth 3 (= capacity)
  EXPECT_EQ(w.enqueue(0, 4), Enq::kShed);      // full: dropped pre-push
  EXPECT_EQ(w.depth(0), 3u);
  // A shed request must not burn a virtual finish tag: the next accepted
  // request continues the chain from the last *accepted* one (F = 3 + 1).
  (void)w.pop(0);
  EXPECT_EQ(w.enqueue(0, 5), Enq::kMarked);
  (void)w.pop(0);
  (void)w.pop(0);
  EXPECT_EQ(*w.next({}), 0u);
  (void)w.pop(0);
  EXPECT_EQ(w.virtual_time(), 4.0);  // four services at rate 1
}

TEST(Wfq, DropHeadDoesNotAdvanceClock) {
  WfqQueues w({1.0, 1.0}, {4, 4}, {4, 4});
  (void)w.enqueue(0, 1);
  (void)w.enqueue(1, 2);
  EXPECT_EQ(w.drop_head(0), 1u);
  EXPECT_EQ(w.virtual_time(), 0.0);  // no service rendered
  EXPECT_EQ(w.queued(), 1u);
  // The drop emptied queue 0, so the next pop runs at queue 1's solo rate.
  (void)w.pop(1);
  EXPECT_EQ(w.virtual_time(), 1.0);
}

TEST(Wfq, ExclusionMaskSkipsMinimumHead) {
  WfqQueues w({1.0, 2.0}, {4, 4}, {4, 4});
  (void)w.enqueue(0, 1);  // F = 1
  (void)w.enqueue(1, 2);  // F = 0.5 — the honest minimum
  std::vector<bool> exclude{false, true};
  EXPECT_EQ(*w.next(exclude), 0u);
  exclude = {true, true};
  EXPECT_FALSE(w.next(exclude).has_value());
}

// The main event: randomized op sequences against the reference, with
// bit-exact agreement on verdicts, dispatch picks, served ids, depths, and
// the virtual clock itself.
TEST(Wfq, RandomizedAgainstBruteForceReference) {
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    Rng rng(shard_seed(0xFA1Bu, trial));
    const std::size_t nq = 2 + rng.below(3);
    std::vector<double> weights;
    std::vector<std::size_t> caps, marks;
    const double weight_menu[] = {0.5, 1.0, 2.0, 3.0};
    for (std::size_t q = 0; q < nq; ++q) {
      weights.push_back(weight_menu[rng.below(4)]);
      caps.push_back(1 + rng.below(4));
      marks.push_back(1 + rng.below(caps.back()));
    }
    WfqQueues dut(weights, caps, marks);
    ReferenceWfq ref(weights, caps, marks);

    std::uint64_t next_id = 1;
    for (std::size_t op = 0; op < 300; ++op) {
      SCOPED_TRACE(::testing::Message() << "trial " << trial << " op " << op);
      const std::uint64_t kind = rng.below(10);
      if (kind < 5) {
        const std::size_t q = rng.below(nq);
        const std::uint64_t id = next_id++;
        ASSERT_EQ(dut.enqueue(q, id), ref.enqueue(q, id));
      } else if (kind < 9) {
        std::vector<bool> exclude;
        if (rng.below(4) == 0) {
          exclude.resize(nq);
          for (std::size_t q = 0; q < nq; ++q) exclude[q] = rng.below(2) == 0;
        }
        const auto a = dut.next(exclude);
        const auto b = ref.next(exclude);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          ASSERT_EQ(*a, *b);
          ASSERT_EQ(dut.pop(*a), ref.pop(*b));
        }
      } else if (dut.backlogged()) {
        std::size_t q = rng.below(nq);
        while (dut.depth(q) == 0) q = (q + 1) % nq;
        ASSERT_EQ(dut.drop_head(q), ref.drop_head(q));
      }
      // Bit-exact, not approximate: same additions in the same order.
      ASSERT_EQ(dut.virtual_time(), ref.vtime());
      for (std::size_t q = 0; q < nq; ++q) {
        ASSERT_EQ(dut.depth(q), ref.depth(q));
      }
    }
  }
}

// --- Knob divergence: each deliberate defect is observable right here, at
// --- the layer it is injected, so the oracle's mutation pass has teeth.

TEST(WfqKnobsTest, FifoOrderServesLowestIndexNotMinimumTag) {
  WfqQueues honest({1.0, 3.0}, {4, 4}, {4, 4});
  WfqQueues mutant({1.0, 3.0}, {4, 4}, {4, 4}, {.fifo_order = true});
  for (auto* w : {&honest, &mutant}) {
    (void)w->enqueue(0, 1);  // F = 1
    (void)w->enqueue(1, 2);  // F = 1/3: the honest pick
  }
  EXPECT_EQ(*honest.next({}), 1u);
  EXPECT_EQ(*mutant.next({}), 0u);
}

TEST(WfqKnobsTest, SkipRenormalizationFreezesClockRate) {
  WfqQueues honest({1.0, 1.0}, {4, 4}, {4, 4});
  WfqQueues mutant({1.0, 1.0}, {4, 4}, {4, 4}, {.skip_renormalization = true});
  for (auto* w : {&honest, &mutant}) {
    (void)w->enqueue(0, 1);
    (void)w->pop(0);
  }
  EXPECT_EQ(honest.virtual_time(), 1.0);  // solo tenant: full rate
  EXPECT_EQ(mutant.virtual_time(), 0.5);  // frozen at 1/W_total
}

// --- TenantScheduler: floors, shared pool, degraded rescale, starvation
// --- guard, and the two scheduler-layer knobs.

std::vector<std::uint64_t> dispense_all(TenantScheduler& s,
                                        bool unlimited = false) {
  std::vector<std::uint64_t> served(s.tenants(), 0);
  while (const auto t = s.next_candidate({}, unlimited)) {
    (void)s.pop(*t, unlimited);
    ++served[*t];
  }
  return served;
}

TEST(TenantSchedulerTest, FloorThenSharedAgainstAHeavyFlooder) {
  // "a" is weight-1 with a floor of 2; "b" is a weight-100 flooder with no
  // reservation. S = 5, shared = 3. The flooder's tiny tags win every
  // shared slot, but budget exclusion stops it there and a's floor drains.
  const std::vector<TenantSpec> specs{
      {.name = "a", .weight = 1.0, .reservation = 2},
      {.name = "b", .weight = 100.0, .reservation = 0},
  };
  TenantScheduler s(specs, 5);
  for (std::uint64_t i = 0; i < 4; ++i) (void)s.enqueue(0, i);
  for (std::uint64_t i = 0; i < 8; ++i) (void)s.enqueue(1, 100 + i);

  const auto served = dispense_all(s);
  EXPECT_EQ(served[0], 2u);  // exactly its floor
  EXPECT_EQ(served[1], 3u);  // exactly the shared pool
  EXPECT_EQ(s.usage(0).admitted, 2u);
  EXPECT_EQ(s.usage(1).admitted, 3u);

  // Degraded budget S' = 3: floor(2·3/5) = 1 for a, shared = 2.
  s.begin_interval(3);
  const auto degraded = dispense_all(s);
  EXPECT_EQ(degraded[0], 1u);
  EXPECT_EQ(degraded[1], 2u);
}

TEST(TenantSchedulerTest, StarvationGuardDonatesOneFloorSlot) {
  // Reservations consume the whole budget while b has none: without the
  // guard b could never drain. One slot moves from the largest floor to
  // the shared pool; b's lower tag (weight 2) claims it.
  const std::vector<TenantSpec> specs{
      {.name = "a", .weight = 1.0, .reservation = 5},
      {.name = "b", .weight = 2.0, .reservation = 0},
  };
  TenantScheduler s(specs, 5);
  for (std::uint64_t i = 0; i < 8; ++i) (void)s.enqueue(0, i);
  for (std::uint64_t i = 0; i < 8; ++i) (void)s.enqueue(1, 100 + i);
  const auto served = dispense_all(s);
  EXPECT_EQ(served[0], 4u);  // floor 5 minus the donated slot
  EXPECT_EQ(served[1], 1u);  // the donation, via the shared pool
}

TEST(TenantSchedulerTest, UnlimitedModeBypassesBudgetAccounting) {
  const std::vector<TenantSpec> specs{
      {.name = "a", .weight = 1.0, .reservation = 0}};
  TenantScheduler s(specs, 5);
  for (std::uint64_t i = 0; i < 8; ++i) (void)s.enqueue(0, i);
  EXPECT_EQ(dispense_all(s)[0], 5u);             // budgeted: exactly S
  EXPECT_EQ(dispense_all(s, true)[0], 3u);       // unlimited: the rest
  EXPECT_EQ(s.usage(0).admitted, 8u);
}

TEST(TenantSchedulerTest, IgnoreReservationsKnobLetsFlooderEatTheFloor) {
  const std::vector<TenantSpec> specs{
      {.name = "a", .weight = 1.0, .reservation = 2},
      {.name = "b", .weight = 100.0, .reservation = 0},
  };
  TenantScheduler s(specs, 5, {.ignore_reservations = true});
  for (std::uint64_t i = 0; i < 4; ++i) (void)s.enqueue(0, i);
  for (std::uint64_t i = 0; i < 8; ++i) (void)s.enqueue(1, 100 + i);
  const auto served = dispense_all(s);
  EXPECT_EQ(served[0], 0u);  // the guaranteed tenant got nothing
  EXPECT_EQ(served[1], 5u);  // the flooder took the whole budget
}

TEST(TenantSchedulerTest, LeakBudgetKnobOverDispensesTheInterval) {
  const std::vector<TenantSpec> specs{
      {.name = "a", .weight = 1.0, .reservation = 0}};
  TenantScheduler s(specs, 5, {.leak_budget = true});
  for (std::uint64_t i = 0; i < 8; ++i) (void)s.enqueue(0, i);
  EXPECT_EQ(dispense_all(s)[0], 8u);  // 8 > S = 5 in one interval
}

TEST(TenantSchedulerTest, UsageTalliesArrivalsShedsMarksDepth) {
  const std::vector<TenantSpec> specs{{.name = "a",
                                       .weight = 1.0,
                                       .reservation = 0,
                                       .queue_capacity = 3,
                                       .mark_threshold = 2}};
  TenantScheduler s(specs, 5);
  EXPECT_EQ(s.enqueue(0, 1), Enq::kAccepted);
  EXPECT_EQ(s.enqueue(0, 2), Enq::kMarked);
  EXPECT_EQ(s.enqueue(0, 3), Enq::kMarked);
  EXPECT_EQ(s.enqueue(0, 4), Enq::kShed);
  const auto& u = s.usage(0);
  EXPECT_EQ(u.arrivals, 3u);  // shed requests never count as arrivals
  EXPECT_EQ(u.shed, 1u);
  EXPECT_EQ(u.marked, 2u);
  EXPECT_EQ(u.max_depth, 3u);
}

// Oracle smoke: one seeded mix through the full pipeline plus the
// mutation-liveness pass (every knob must trip at least one check). The
// heavyweight multi-mix run stays in verify_cli_smoke / check.sh.
TEST(FairnessOracleTest, SmokeHonestChecksAndMutationLiveness) {
  const auto d = design::make_9_3_1();
  const decluster::DesignTheoretic scheme(d, true);
  verify::FairnessOracleParams p;
  p.mixes = 1;
  p.intervals = 24;
  p.threads = 2;
  p.mutations = true;
  const auto report = verify::verify_fairness(scheme, p);
  EXPECT_TRUE(report.passed()) << report.to_string(true);
}

}  // namespace
