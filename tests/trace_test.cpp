// Unit tests for src/trace: trace validity, report slicing, DiskSim
// round-trip, the synthetic generator's contract, workload model
// statistics, and interval statistics.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "trace/disksim_format.hpp"
#include "trace/stats.hpp"
#include "trace/synthetic.hpp"
#include "trace/workload.hpp"

namespace flashqos::trace {
namespace {

TEST(TraceEventChecks, ValidityRules) {
  Trace t;
  t.volumes = 2;
  t.events = {{.time = 0, .block = 1, .device = 0},
              {.time = 10, .block = 2, .device = 1}};
  EXPECT_TRUE(valid_trace(t));
  t.events.push_back({.time = 5, .block = 3, .device = 0});  // out of order
  EXPECT_FALSE(valid_trace(t));
  t.events.pop_back();
  t.events.push_back({.time = 20, .block = 3, .device = 7});  // device range
  EXPECT_FALSE(valid_trace(t));
}

TEST(ReportSlices, PartitionsEvents) {
  Trace t;
  t.report_interval = 100;
  for (SimTime time : {0, 10, 99, 100, 150, 250}) {
    t.events.push_back({.time = time, .block = 0, .device = 0});
  }
  const auto slices = report_slices(t);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0], (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(slices[1], (std::pair<std::size_t, std::size_t>{3, 5}));
  EXPECT_EQ(slices[2], (std::pair<std::size_t, std::size_t>{5, 6}));
}

TEST(ReportSlices, EmptyTrace) {
  Trace t;
  t.report_interval = 100;
  EXPECT_TRUE(report_slices(t).empty());
}

TEST(DiskSimFormat, RoundTrips) {
  Trace t;
  t.name = "rt";
  t.volumes = 4;
  t.report_interval = kMillisecond;
  t.events = {
      {.time = 0, .block = 100, .device = 0, .size_blocks = 1, .is_read = true},
      {.time = 132507, .block = 250, .device = 3, .size_blocks = 2, .is_read = true},
      {.time = 500000, .block = 7, .device = 1, .size_blocks = 1, .is_read = false},
  };
  std::stringstream ss;
  write_disksim_ascii(t, ss);
  const auto back = read_disksim_ascii(ss, "rt", 4, kMillisecond);
  ASSERT_EQ(back.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(back.events[i].block, t.events[i].block);
    EXPECT_EQ(back.events[i].device, t.events[i].device);
    EXPECT_EQ(back.events[i].size_blocks, t.events[i].size_blocks);
    EXPECT_EQ(back.events[i].is_read, t.events[i].is_read);
    // Times round-trip through millisecond text with ns fidelity loss
    // bounded by the stream precision.
    EXPECT_NEAR(static_cast<double>(back.events[i].time),
                static_cast<double>(t.events[i].time), 1000.0);
  }
}

TEST(DiskSimFormat, RejectsMalformedLine) {
  std::stringstream ss("0.1 0 100 not-a-number 1\n");
  EXPECT_THROW(read_disksim_ascii(ss, "x", 1, kMillisecond), std::runtime_error);
}

TEST(DiskSimFormat, SkipsComments) {
  std::stringstream ss("# header\n0.0 0 1 16 1\n");
  const auto t = read_disksim_ascii(ss, "x", 1, kMillisecond);
  EXPECT_EQ(t.events.size(), 1u);
}

TEST(Synthetic, ContractOfThePaperGenerator) {
  const SyntheticParams p{.bucket_pool = 36,
                          .interval = 133 * kMicrosecond,
                          .requests_per_interval = 5,
                          .total_requests = 10000,
                          .seed = 1};
  const auto t = generate_synthetic(p);
  EXPECT_EQ(t.events.size(), 10000u);
  EXPECT_TRUE(valid_trace(t));
  std::set<DataBlockId> blocks;
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const auto& e = t.events[i];
    EXPECT_LT(e.block, 36u);
    EXPECT_EQ(e.time % (133 * kMicrosecond), 0) << "requests sit on boundaries";
    blocks.insert(e.block);
  }
  EXPECT_EQ(blocks.size(), 36u) << "all buckets eventually drawn";
  // Exactly 5 per interval.
  std::size_t i = 0;
  while (i < t.events.size()) {
    std::size_t j = i;
    while (j < t.events.size() && t.events[j].time == t.events[i].time) ++j;
    EXPECT_EQ(j - i, 5u);
    i = j;
  }
}

TEST(Synthetic, DeterministicPerSeed) {
  const SyntheticParams p{.total_requests = 100, .seed = 9};
  const auto a = generate_synthetic(p);
  const auto b = generate_synthetic(p);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].block, b.events[i].block);
  }
}

TEST(Workload, ExchangeShape) {
  auto p = exchange_params(0.25, 7);  // small for test speed
  p.report_intervals = 24;
  const auto t = generate_workload(p);
  EXPECT_TRUE(valid_trace(t));
  EXPECT_EQ(t.volumes, 9u);
  EXPECT_GT(t.events.size(), 1000u);
  for (const auto& e : t.events) EXPECT_LT(e.device, 9u);
  EXPECT_EQ(t.report_intervals(), 24u);
}

TEST(Workload, TpceShape) {
  auto p = tpce_params(0.1, 7);
  const auto t = generate_workload(p);
  EXPECT_TRUE(valid_trace(t));
  EXPECT_EQ(t.volumes, 13u);
  EXPECT_EQ(t.report_intervals(), 6u);
}

TEST(Workload, BurstsShareTimestamps) {
  // Exchange is the bursty preset (TPC-E is deliberately near-singleton).
  auto p = exchange_params(0.5, 11);
  p.report_intervals = 8;
  const auto t = generate_workload(p);
  std::size_t burst_events = 0;
  for (std::size_t i = 1; i < t.events.size(); ++i) {
    if (t.events[i].time == t.events[i - 1].time) ++burst_events;
  }
  // Mean burst size 2 → about half the events share a timestamp with a
  // neighbour (the batch-arrival property the online scheduler exercises).
  EXPECT_GT(static_cast<double>(burst_events) /
                static_cast<double>(t.events.size()),
            0.3);
}

TEST(Workload, VolumePlacementIsDeterministic) {
  auto p = exchange_params(0.05, 3);
  p.report_intervals = 4;
  const auto t = generate_workload(p);
  std::map<DataBlockId, DeviceId> placement;
  for (const auto& e : t.events) {
    const auto [it, fresh] = placement.emplace(e.block, e.device);
    if (!fresh) {
      EXPECT_EQ(it->second, e.device) << "block moved volumes";
    }
  }
}

TEST(Workload, HotSetDriftControlsOverlap) {
  // Low drift (TPC-E-like): most of one interval's blocks reappear next
  // interval; high drift (Exchange-like): few do.
  auto lo = tpce_params(0.5, 5);
  auto hi = exchange_params(1.0, 5);
  hi.report_intervals = 6;
  const auto t_lo = generate_workload(lo);
  const auto t_hi = generate_workload(hi);
  const auto overlap = [](const Trace& t) {
    const auto slices = report_slices(t);
    double total = 0.0;
    int measured = 0;
    for (std::size_t s = 1; s < slices.size(); ++s) {
      std::set<DataBlockId> prev;
      for (std::size_t i = slices[s - 1].first; i < slices[s - 1].second; ++i) {
        prev.insert(t.events[i].block);
      }
      std::size_t hits = 0, n = 0;
      for (std::size_t i = slices[s].first; i < slices[s].second; ++i) {
        ++n;
        if (prev.count(t.events[i].block)) ++hits;
      }
      if (n > 0) {
        total += static_cast<double>(hits) / static_cast<double>(n);
        ++measured;
      }
    }
    return measured ? total / measured : 0.0;
  };
  EXPECT_GT(overlap(t_lo), 0.7);
  EXPECT_LT(overlap(t_hi), 0.4);
}

TEST(IntervalStatistics, CountsAndRates) {
  Trace t;
  t.report_interval = kSecond;
  // 4 reads in interval 0 (3 in the same 100 ms window), 1 in interval 1.
  t.events = {{.time = 0, .block = 0},
              {.time = 10 * kMillisecond, .block = 1},
              {.time = 20 * kMillisecond, .block = 2},
              {.time = 500 * kMillisecond, .block = 3},
              {.time = kSecond + 1, .block = 4}};
  const auto stats = interval_stats(t, 100 * kMillisecond);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].total_reads, 4u);
  EXPECT_DOUBLE_EQ(stats[0].avg_reads_per_sec, 4.0);
  EXPECT_DOUBLE_EQ(stats[0].max_reads_per_sec, 30.0);  // 3 in one 0.1 s window
  EXPECT_EQ(stats[1].total_reads, 1u);
}

}  // namespace
}  // namespace flashqos::trace
