// Unit tests for src/decluster: each allocation scheme's layout invariants
// and the paper's Figure 7 layouts verified cell by cell.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "decluster/schemes.hpp"
#include "design/constructions.hpp"

namespace flashqos::decluster {
namespace {

void expect_valid(const AllocationScheme& s) {
  const auto r = validate(s);
  EXPECT_TRUE(r.replicas_distinct) << s.name();
  EXPECT_TRUE(r.devices_in_range) << s.name();
}

TEST(DesignTheoretic, MatchesPaperFigure7) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic s(d, true);
  EXPECT_EQ(s.devices(), 9u);
  EXPECT_EQ(s.copies(), 3u);
  EXPECT_EQ(s.buckets(), 36u);
  expect_valid(s);
  // Figure 7 top-left: b0 -> (d0,d1,d2), b1 -> (d0,d3,d6), b2 -> (d0,d4,d8).
  // Our bucket table interleaves rotations, so the figure's bN is bucket 3N.
  const auto b0 = s.replicas(0);
  EXPECT_EQ(b0[0], 0u);
  EXPECT_EQ(b0[1], 1u);
  EXPECT_EQ(b0[2], 2u);
  const auto b1 = s.replicas(3);
  EXPECT_EQ(b1[0], 0u);
  EXPECT_EQ(b1[1], 3u);
  EXPECT_EQ(b1[2], 6u);
}

TEST(DesignTheoretic, EveryDevicePairAtMostOnceAmongBaseBlocks) {
  const auto d = design::make_13_3_1();
  const DesignTheoretic s(d, false);  // base blocks only, no rotations
  const auto r = validate(s);
  EXPECT_EQ(r.max_pair_count, 1u);
}

TEST(Raid1Mirrored, GroupsAreMirrors) {
  const Raid1Mirrored s(9, 3, 36);
  EXPECT_EQ(s.buckets(), 36u);
  expect_valid(s);
  // Figure 7 middle: b0 -> (d0,d1,d2), b1 -> (d3,d4,d5), b2 -> (d6,d7,d8),
  // repeating — the primary of a group is always its first device.
  for (BucketId b = 0; b < s.buckets(); ++b) {
    const auto reps = s.replicas(b);
    const DeviceId group = (b % 3) * 3;
    EXPECT_EQ(reps[0], group);
    for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(reps[i], group + i);
  }
}

TEST(Raid1Mirrored, RejectsIndivisibleLayout) {
  EXPECT_DEATH(Raid1Mirrored(10, 3, 12), "divisible");
}

TEST(Raid1Chained, CopiesAreConsecutive) {
  const Raid1Chained s(9, 3, 36);
  expect_valid(s);
  // Figure 7 bottom: copy j of block b on device (b + j) mod 9.
  for (BucketId b = 0; b < s.buckets(); ++b) {
    const auto reps = s.replicas(b);
    for (std::uint32_t j = 0; j < 3; ++j) {
      EXPECT_EQ(reps[j], (b + j) % 9);
    }
  }
}

TEST(RandomDuplicate, DistinctAndDeterministic) {
  const RandomDuplicate a(9, 3, 100, 77);
  const RandomDuplicate b(9, 3, 100, 77);
  const RandomDuplicate c(9, 3, 100, 78);
  expect_valid(a);
  bool any_difference = false;
  for (BucketId i = 0; i < 100; ++i) {
    const auto ra = a.replicas(i);
    const auto rb = b.replicas(i);
    const auto rc = c.replicas(i);
    EXPECT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin()));
    if (!std::equal(ra.begin(), ra.end(), rc.begin())) any_difference = true;
  }
  EXPECT_TRUE(any_difference);  // different seed, different layout
}

TEST(Partitioned, CopiesStayInGroup) {
  const Partitioned s(12, 3, 4, 48);
  expect_valid(s);
  for (BucketId b = 0; b < s.buckets(); ++b) {
    const auto reps = s.replicas(b);
    const DeviceId group = reps[0] / 4;
    for (const auto dev : reps) EXPECT_EQ(dev / 4, group);
  }
}

TEST(DependentPeriodic, ShiftedCopies) {
  const DependentPeriodic s(9, 3, 4, 36);
  expect_valid(s);
  for (BucketId b = 0; b < s.buckets(); ++b) {
    const auto reps = s.replicas(b);
    EXPECT_EQ(reps[1], (reps[0] + 4) % 9);
    EXPECT_EQ(reps[2], (reps[0] + 8) % 9);
  }
}

TEST(DependentPeriodic, RejectsCollidingShift) {
  // shift 3 on 9 devices with 4 copies: copy 3 lands back on the primary.
  EXPECT_DEATH(DependentPeriodic(9, 4, 3, 36), "collides");
}

TEST(Orthogonal, EveryOrderedPairOnce) {
  const Orthogonal s(5);
  EXPECT_EQ(s.buckets(), 20u);  // 5 * 4
  expect_valid(s);
  std::set<std::pair<DeviceId, DeviceId>> seen;
  for (BucketId b = 0; b < s.buckets(); ++b) {
    const auto reps = s.replicas(b);
    EXPECT_TRUE(seen.emplace(reps[0], reps[1]).second);
  }
}

TEST(Validate, ReportsPrimaryAndTotalLoad) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic s(d, true);
  const auto r = validate(s);
  // 36 buckets, primaries rotate: each device is primary for 4 buckets and
  // stores 12 replicas (36*3/9).
  for (const auto l : r.primary_load) EXPECT_EQ(l, 4u);
  for (const auto l : r.total_load) EXPECT_EQ(l, 12u);
}

// Property sweep: all schemes validate across a range of shapes.
struct SchemeShape {
  std::uint32_t devices;
  std::uint32_t copies;
  std::size_t buckets;
};

class SchemeSweep : public ::testing::TestWithParam<SchemeShape> {};

TEST_P(SchemeSweep, AllSchemesProduceValidLayouts) {
  const auto [n, c, buckets] = GetParam();
  expect_valid(Raid1Chained(n, c, buckets));
  expect_valid(RandomDuplicate(n, c, buckets, 1));
  expect_valid(DependentPeriodic(n, c, 1, buckets));
  if (n % c == 0) expect_valid(Raid1Mirrored(n, c, buckets));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchemeSweep,
    ::testing::Values(SchemeShape{9, 3, 36}, SchemeShape{13, 3, 78},
                      SchemeShape{9, 2, 72}, SchemeShape{12, 4, 50},
                      SchemeShape{6, 3, 10}, SchemeShape{16, 2, 240}));

}  // namespace
}  // namespace flashqos::decluster
