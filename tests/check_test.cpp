// Tests for the schedule-exhaustive model checker (src/check).
//
// The clean builtin models passing proves little by itself — a checker
// that detects nothing also reports "ok" on everything. So each detector
// is proven live by a seeded mutation: a deliberately buggy mirror of a
// modeled primitive's protocol whose injected race / deadlock / lost
// wakeup / nondeterminism the explorer MUST flag on some interleaving.
#include <gtest/gtest.h>

#include <string>

#include "check/model_sync.hpp"
#include "check/models.hpp"
#include "check/sched.hpp"

namespace flashqos::check {
namespace {

using Policy = ModelSyncPolicy;

// ---------------------------------------------------------------------------
// Clean models: the real primitives, explored exhaustively.

TEST(CheckModels, BuiltinModelsPassExhaustively) {
  for (const auto& run : run_builtin_models()) {
    EXPECT_TRUE(run.result.ok) << run.name << ": " << run.result.failure;
    EXPECT_TRUE(run.result.exhausted) << run.name << " hit an explorer cap";
    EXPECT_GE(run.result.executions, 2u)
        << run.name << " explored only one schedule; model too small";
  }
}

TEST(CheckModels, MutexProtectedCounterIsClean) {
  const auto r = explore([] {
    Policy::Mutex m;
    Policy::Shared<int> counter{0};
    Policy::Thread t([&] {
      const Policy::LockGuard lock(m);
      counter.rw() += 1;
    });
    {
      const Policy::LockGuard lock(m);
      counter.rw() += 2;
    }
    t.join();
    return std::to_string(counter.rd());
  });
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.exhausted);
}

TEST(CheckModels, ReleaseAcquirePublicationIsClean) {
  const auto r = explore([] {
    Policy::Atomic<int> flag{0};
    Policy::Shared<int> data{0};
    Policy::Thread t([&] {
      data.rw() = 42;
      flag.store(1, std::memory_order_release);
    });
    int seen = -1;
    if (flag.load(std::memory_order_acquire) == 1) seen = data.rd();
    t.join();
    // `seen` is schedule-dependent; the digest must not include it.
    (void)seen;
    return std::string("done");
  });
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.exhausted);
}

// ---------------------------------------------------------------------------
// Seeded mutations: one per detector, one per modeled primitive.

/// Mutation: unguarded writes to plain shared state (a ThreadPool whose
/// in_flight bookkeeping lost its mutex would look exactly like this).
TEST(CheckMutations, DetectsUnguardedSharedWrite) {
  const auto r = explore([] {
    Policy::Shared<int> counter{0};
    Policy::Thread t([&] { counter.rw() += 1; });
    counter.rw() += 2;  // raced against the thread body
    t.join();
    return std::to_string(counter.rd());
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.failure;
}

/// Mutation: publish via a relaxed store, consume via acquire. The relaxed
/// store carries no happens-before edge, so the data read races. This is
/// the regression lock on BasicCounter's documented contract: relaxed
/// fetch_adds are fold-safe for the counter VALUE but must never be used
/// to synchronize other state.
TEST(CheckMutations, DetectsRelaxedPublicationRace) {
  const auto r = explore([] {
    Policy::Atomic<int> flag{0};
    Policy::Shared<int> data{0};
    Policy::Thread t([&] {
      data.rw() = 42;
      flag.store(1, std::memory_order_relaxed);  // bug: publishes nothing
    });
    if (flag.load(std::memory_order_acquire) == 1) (void)data.rd();
    t.join();
    return std::string("done");
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.failure;
}

/// Mutation: AB–BA lock ordering (two HandoffQueues locked inside-out by
/// two threads would deadlock the same way).
TEST(CheckMutations, DetectsLockOrderDeadlock) {
  const auto r = explore([] {
    Policy::Mutex a;
    Policy::Mutex b;
    Policy::Thread t([&] {
      const Policy::LockGuard la(a);
      const Policy::LockGuard lb(b);
    });
    {
      const Policy::LockGuard lb(b);
      const Policy::LockGuard la(a);
    }
    t.join();
    return std::string("done");
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
}

/// Mutation: a waiter whose producer forgot to notify — the lost-wakeup
/// shape. (HandoffQueue::close() without its notify_all calls, or a
/// ThreadPool submit without task_ready.notify_one, reduce to this.)
TEST(CheckMutations, DetectsLostWakeup) {
  const auto r = explore([] {
    Policy::Mutex m;
    Policy::CondVar cv;
    Policy::Shared<bool> ready{false};
    Policy::Thread t([&] {
      const Policy::LockGuard lock(m);
      ready.rw() = true;
      // bug: no cv.notify_one() — the waiter can sleep forever
    });
    {
      Policy::UniqueLock lock(m);
      while (!ready.rd()) cv.wait(lock);
    }
    t.join();
    return std::string("done");
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("lost wakeup"), std::string::npos) << r.failure;
}

/// Mutation: a model whose digest depends on the schedule (the snapshot
/// non-determinism class: folding metric state that a racing thread is
/// still mutating).
TEST(CheckMutations, DetectsScheduleDependentResult) {
  const auto r = explore([] {
    Policy::Mutex m;
    Policy::Shared<int> order{0};
    Policy::Thread t([&] {
      const Policy::LockGuard lock(m);
      if (order.rd() == 0) order.rw() = 1;
    });
    {
      const Policy::LockGuard lock(m);
      if (order.rd() == 0) order.rw() = 2;
    }
    t.join();
    return std::to_string(order.rd());  // 1 or 2, by schedule
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("schedule-dependent result"), std::string::npos)
      << r.failure;
}

/// Mutation: model assertion failure surfaces through SchedResult with the
/// schedule trace attached (this is the path every model_expect in the
/// builtin models relies on).
TEST(CheckMutations, ModelExpectFailureCarriesTrace) {
  const auto r = explore([] {
    Policy::Shared<int> v{0};
    Policy::Thread t([&] {});
    t.join();
    model_expect(v.rd() == 1, "injected assertion failure");
    return std::string("unreachable");
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("injected assertion failure"), std::string::npos)
      << r.failure;
  EXPECT_NE(r.failure.find("schedule trace"), std::string::npos) << r.failure;
}

/// The explorer honors its execution cap and reports non-exhaustion
/// honestly instead of claiming a clean exhaustive pass.
TEST(CheckMutations, ExecutionCapReportsNonExhausted) {
  SchedOptions opts;
  opts.max_executions = 2;
  const auto r = explore(
      [] {
        Policy::Mutex m;
        Policy::Thread t([&] { const Policy::LockGuard lock(m); });
        { const Policy::LockGuard lock(m); }
        t.join();
        return std::string("done");
      },
      opts);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.executions, 2u);
}

}  // namespace
}  // namespace flashqos::check
