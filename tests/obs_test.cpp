// Unit tests for src/obs: sharded counter/gauge correctness under
// concurrency (scripts/check.sh replays this suite under TSan), histogram
// percentile exactness against a sorted-vector oracle in both the exact
// and bucket-fallback regimes, snapshot determinism across thread counts,
// tracer ring wraparound, exporter formats, and the end-to-end consistency
// of the instrumented pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace flashqos::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket math

TEST(BucketMath, RoundTripContainsValue) {
  std::vector<std::int64_t> samples = {0, 1, 2, 255, 256, 257, 1000, 4095};
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    samples.push_back(rng.between(0, kMaxTrackable));
  }
  samples.push_back(kMaxTrackable);
  for (const auto v : samples) {
    const auto idx = bucket_index(v);
    ASSERT_LT(idx, kBucketEntries) << "value " << v;
    EXPECT_LE(bucket_lo(idx), v) << "value " << v;
    EXPECT_LT(v, bucket_hi(idx)) << "value " << v;
  }
}

TEST(BucketMath, BoundariesAreContiguousAndMonotone) {
  for (std::size_t idx = 0; idx + 1 < kBucketEntries; ++idx) {
    ASSERT_LT(bucket_lo(idx), bucket_hi(idx)) << "bucket " << idx;
    ASSERT_EQ(bucket_hi(idx), bucket_lo(idx + 1)) << "bucket " << idx;
  }
  EXPECT_EQ(bucket_lo(0), 0);
  EXPECT_EQ(bucket_hi(kBucketEntries - 1), kMaxTrackable + 1);
}

TEST(BucketMath, RelativeErrorBounded) {
  // A bucket's width never exceeds 2^-8 of its lower bound (above the
  // unit-bucket range, where the error is zero).
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(256, kMaxTrackable);
    const auto idx = bucket_index(v);
    const double width = static_cast<double>(bucket_hi(idx) - bucket_lo(idx));
    EXPECT_LE(width, std::ldexp(static_cast<double>(bucket_lo(idx)), -7) + 1)
        << "value " << v;
  }
}

// ---------------------------------------------------------------------------
// Counter / gauge concurrency

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, ConcurrentUpDownNets) {
  Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i < 10000; ++i) {
        g.inc();
        if (t % 2 == 0) g.dec();
      }
    });
  }
  for (auto& w : workers) w.join();
  // Even threads net zero, odd threads net +10000 each.
  EXPECT_EQ(g.value(), 4 * 10000);
}

// ---------------------------------------------------------------------------
// Histogram: exactness and determinism

/// Nearest-rank oracle over the raw sample vector.
std::int64_t oracle_percentile(std::vector<std::int64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto n = samples.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return samples[rank - 1];
}

TEST(LatencyHistogram, ExactRegimeMatchesOracleExactly) {
  // Few distinct values (the simulated-latency case): the exact tracker
  // holds and every percentile is exact.
  LatencyHistogram h;
  std::vector<std::int64_t> samples;
  Rng rng(3);
  const std::int64_t distinct[] = {132507, 265014, 397521, 1000, 0};
  for (int i = 0; i < 20000; ++i) {
    const auto v = distinct[rng.below(5)];
    samples.push_back(v);
    h.record(v);
  }
  const auto snap = h.snapshot();
  ASSERT_TRUE(snap.exact);
  EXPECT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.min, *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(snap.max, *std::max_element(samples.begin(), samples.end()));
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(snap.percentile(q), oracle_percentile(samples, q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, FallbackRegimeWithinBucketError) {
  // More distinct values than the exact tracker holds: the snapshot falls
  // back to log buckets; quantiles keep <= 2^-8 relative error and
  // min/max/sum/count stay exact.
  LatencyHistogram h;
  std::vector<std::int64_t> samples;
  std::int64_t sum = 0;
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(0, 1 << 20);
    samples.push_back(v);
    sum += v;
    h.record(v);
  }
  const auto snap = h.snapshot();
  ASSERT_FALSE(snap.exact);
  EXPECT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(snap.max, *std::max_element(samples.begin(), samples.end()));
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    const auto want = oracle_percentile(samples, q);
    const auto got = snap.percentile(q);
    // The reported value is the containing bucket's lower bound.
    EXPECT_LE(got, want) << "q=" << q;
    EXPECT_GE(static_cast<double>(got),
              static_cast<double>(want) * (1.0 - std::ldexp(1.0, -7)) - 1.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, NegativeAndOverflowValuesKeepExactMinMax) {
  LatencyHistogram h;
  h.record(-5);
  h.record(kMaxTrackable + 1000);  // clamps into the top bucket
  h.record(100);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.min, -5);
  EXPECT_EQ(snap.max, kMaxTrackable + 1000);
  EXPECT_EQ(snap.sum, -5 + kMaxTrackable + 1000 + 100);
}

bool snapshots_identical(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  if (a.count != b.count || a.sum != b.sum || a.min != b.min ||
      a.max != b.max || a.exact != b.exact || a.values != b.values ||
      a.buckets.size() != b.buckets.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    if (a.buckets[i].lo != b.buckets[i].lo ||
        a.buckets[i].hi != b.buckets[i].hi ||
        a.buckets[i].count != b.buckets[i].count) {
      return false;
    }
  }
  return true;
}

TEST(LatencyHistogram, RecordNEquivalentToRepeatedRecord) {
  // record_n (the batched-flush path FlashArray and the outcome fold use)
  // must leave the histogram in the same state as n individual records —
  // in the exact regime and after tracker overflow alike.
  LatencyHistogram batched;
  LatencyHistogram individual;
  Rng rng(6);
  for (int round = 0; round < 200; ++round) {
    // First 100 rounds stay within the exact tracker; later rounds push
    // both histograms into bucket fallback.
    const auto v = round < 100 ? rng.between(0, 10)
                               : rng.between(0, 1 << 21);
    const auto n = static_cast<std::uint64_t>(rng.between(1, 50));
    batched.record_n(v, n);
    for (std::uint64_t i = 0; i < n; ++i) individual.record(v);
  }
  batched.record_n(12345, 0);  // no-op
  EXPECT_TRUE(snapshots_identical(batched.snapshot(), individual.snapshot()));
}

TEST(LatencyHistogram, SnapshotDeterministicAcrossThreadCounts) {
  // The same recorded multiset must fold to an identical snapshot whether
  // it was recorded by 1, 2, or 8 threads (in both regimes).
  for (const bool exact_regime : {true, false}) {
    std::vector<std::int64_t> samples;
    Rng rng(5);
    for (int i = 0; i < 30000; ++i) {
      samples.push_back(exact_regime ? rng.between(0, 20)
                                     : rng.between(0, 1 << 22));
    }
    HistogramSnapshot reference;
    for (const int threads : {1, 2, 8}) {
      LatencyHistogram h;
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(threads));
      const std::size_t chunk = samples.size() / static_cast<std::size_t>(threads);
      for (int t = 0; t < threads; ++t) {
        const std::size_t begin = static_cast<std::size_t>(t) * chunk;
        const std::size_t end =
            t == threads - 1 ? samples.size() : begin + chunk;
        workers.emplace_back([&h, &samples, begin, end] {
          for (std::size_t i = begin; i < end; ++i) h.record(samples[i]);
        });
      }
      for (auto& w : workers) w.join();
      const auto snap = h.snapshot();
      EXPECT_EQ(snap.exact, exact_regime);
      if (threads == 1) {
        reference = snap;
      } else {
        EXPECT_TRUE(snapshots_identical(reference, snap))
            << "threads=" << threads << " exact=" << exact_regime;
      }
    }
  }
}

TEST(MetricRegistry, ConcurrentMixedRecordingIsComplete) {
  // Many threads hammering the same named instruments through the registry
  // (the TSan-relevant path: lookups + sharded writes).
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      auto& c = reg.counter("stress.counter");
      auto& h = reg.histogram("stress.hist");
      auto& g = reg.gauge("stress.gauge");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<std::int64_t>(i % 7));
        g.add(i % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  const auto* c = snap.find_counter("stress.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, kThreads * kPerThread);
  const auto* h = snap.find_histogram("stress.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kPerThread);
  ASSERT_TRUE(h->exact);
  ASSERT_EQ(h->values.size(), 7u);
  for (const auto& [value, count] : h->values) {
    // i % 7 over 0..19999 per thread: 20000 = 7·2857 + 1, so value 0
    // appears 2858 times and 1..6 appear 2857 — times kThreads.
    EXPECT_EQ(count, (value == 0 ? 2858u : 2857u) * kThreads) << value;
  }
}

TEST(MetricRegistry, LabelsDistinguishInstrumentsAndFamiliesSum) {
  MetricRegistry reg;
  reg.counter("family.requests", "device=\"0\"").inc(3);
  reg.counter("family.requests", "device=\"1\"").inc(5);
  reg.counter("family.other").inc(11);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_family_total("family.requests"), 8u);
  const auto* d1 = snap.find_counter("family.requests", "device=\"1\"");
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->value, 5u);
  EXPECT_EQ(snap.find_counter("family.requests"), nullptr);  // label required
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, RingWrapsOldestFirstAndCountsDropped) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  for (std::int64_t i = 0; i < 12; ++i) {
    tracer.record({.request = i,
                   .start = i * 10,
                   .end = i * 10 + 5,
                   .value = 0,
                   .device = -1,
                   .kind = EventKind::kArrival,
                   .detail = EventDetail::kNone});
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].request, static_cast<std::int64_t>(i + 4));
  }
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer(8);
  tracer.record({.request = 1});
  EXPECT_TRUE(tracer.events().empty());
  tracer.set_enabled(true);
  tracer.record({.request = 2});
  EXPECT_EQ(tracer.events().size(), 1u);
}

// ---------------------------------------------------------------------------
// Exporters

MetricsSnapshot sample_snapshot() {
  MetricRegistry reg;
  reg.counter("demo.requests", "device=\"0\"").inc(7);
  reg.counter("demo.requests", "device=\"1\"").inc(9);
  reg.gauge("demo.depth").add(4);
  auto& h = reg.histogram("demo.latency_ns");
  h.record(132507);
  h.record(132507);
  h.record(265014);
  return reg.snapshot();
}

TEST(Export, PrometheusFormat) {
  const auto text = to_prometheus(sample_snapshot());
  EXPECT_NE(text.find("# TYPE flashqos_demo_requests_total counter\n"),
            std::string::npos);
  // One TYPE line per family even with several label sets.
  EXPECT_EQ(text.find("# TYPE flashqos_demo_requests_total counter"),
            text.rfind("# TYPE flashqos_demo_requests_total counter"));
  EXPECT_NE(text.find("flashqos_demo_requests_total{device=\"1\"} 9\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE flashqos_demo_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("flashqos_demo_latency_ns_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("flashqos_demo_latency_ns_sum 530028\n"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.50\"} 132507\n"), std::string::npos);
}

TEST(Export, CsvFormat) {
  const auto text = to_csv(sample_snapshot());
  EXPECT_EQ(text.rfind("kind,name,labels,stat,value\n", 0), 0u);
  EXPECT_NE(text.find("counter,demo.requests,\"device=\"\"1\"\"\",value,9\n"),
            std::string::npos);
  EXPECT_NE(text.find("histogram,demo.latency_ns,,count,3\n"),
            std::string::npos);
  EXPECT_NE(text.find("histogram,demo.latency_ns,,p50,132507\n"),
            std::string::npos);
  EXPECT_NE(text.find("histogram,demo.latency_ns,,exact,1\n"),
            std::string::npos);
}

TEST(Export, CsvEscapesCommasQuotesAndNewlines) {
  // RFC 4180: any cell holding a comma, quote, or line break is wrapped in
  // quotes with embedded quotes doubled — a label like tenant="a,b" must
  // survive a round trip through a CSV reader as ONE cell.
  MetricRegistry reg;
  reg.counter("demo.requests", "tenant=\"a,b\"").inc(3);
  reg.gauge("demo.depth", "note=\"line1\nline2\"").add(5);
  const auto text = to_csv(reg.snapshot());
  EXPECT_NE(
      text.find("counter,demo.requests,\"tenant=\"\"a,b\"\"\",value,3\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("gauge,demo.depth,\"note=\"\"line1\nline2\"\"\",value,5\n"),
      std::string::npos);
  // Every row outside a quoted cell still has the fixed column count.
  std::size_t col_commas = 0;
  bool quoted = false;
  std::size_t rows = 0;
  std::size_t bad_rows = 0;
  for (const char c : text) {
    if (c == '"') quoted = !quoted;
    if (c == ',' && !quoted) ++col_commas;
    if (c == '\n' && !quoted) {
      ++rows;
      if (col_commas != 4) ++bad_rows;
      col_commas = 0;
    }
  }
  EXPECT_EQ(rows, 3u);  // header + two instruments
  EXPECT_EQ(bad_rows, 0u);
}

TEST(Export, ChromeTraceFormat) {
  std::vector<TraceEvent> events;
  events.push_back({.request = 0,
                    .start = 1000,
                    .end = 1000,
                    .value = 0,
                    .device = -1,
                    .kind = EventKind::kArrival,
                    .detail = EventDetail::kNone});
  events.push_back({.request = 0,
                    .start = 1500,
                    .end = 1500,
                    .value = 250,
                    .device = -1,
                    .kind = EventKind::kAdmission,
                    .detail = EventDetail::kAdmitted});
  events.push_back({.request = 0,
                    .start = 1500,
                    .end = 134007,
                    .value = 1,
                    .device = 3,
                    .kind = EventKind::kRetrieval,
                    .detail = EventDetail::kSlotMatched});
  events.push_back({.request = 0,
                    .start = 1500,
                    .end = 134007,
                    .value = 0,
                    .device = 3,
                    .kind = EventKind::kDeviceService,
                    .detail = EventDetail::kNone});
  const auto json = to_chrome_trace(events);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline after the array
  // Device track metadata, the async request span, and the service slice.
  EXPECT_NE(json.find(R"("name":"device 3")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"b")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"e")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("verdict":"admitted")"), std::string::npos);
  EXPECT_NE(json.find(R"("path":"slot_matched")"), std::string::npos);
  // Fractional-microsecond timestamps: 1500 ns -> 1.500 us.
  EXPECT_NE(json.find(R"("ts":1.500)"), std::string::npos);
}

TEST(Export, WriteMetricsPicksFormatFromExtension) {
  const auto snap = sample_snapshot();
  const std::string dir = ::testing::TempDir();
  const std::string prom_path = dir + "/obs_test_metrics.prom";
  const std::string csv_path = dir + "/obs_test_metrics.csv";
  ASSERT_TRUE(write_metrics(snap, prom_path));
  ASSERT_TRUE(write_metrics(snap, csv_path));
  std::ifstream prom(prom_path);
  std::string first;
  std::getline(prom, first);
  EXPECT_EQ(first.rfind("# TYPE", 0), 0u);
  std::ifstream csv(csv_path);
  std::getline(csv, first);
  EXPECT_EQ(first, "kind,name,labels,stat,value");
}

// ---------------------------------------------------------------------------
// Pipeline-driven consistency (compiled out with FLASHQOS_OBS=OFF)

TEST(PipelineObservability, CountersMatchReplayOutcomes) {
  if constexpr (!kEnabled) {
    GTEST_SKIP() << "FLASHQOS_OBS=OFF";
  } else {
    auto& reg = MetricRegistry::global();
    reg.reset();
    const auto d = design::make_9_3_1();
    const decluster::DesignTheoretic scheme(d, true);
    trace::SyntheticParams sp;
    sp.bucket_pool = scheme.buckets();
    sp.requests_per_interval = 4;
    sp.total_requests = 1000;
    const auto t = trace::generate_synthetic(sp);
    const auto result =
        core::QosPipeline(scheme, core::PipelineConfig{}).run(t);
    const auto snap = reg.snapshot();
    const auto* requests = snap.find_counter("pipeline.requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(requests->value, result.outcomes.size());
    const auto* resp = snap.find_histogram("pipeline.response_ns");
    ASSERT_NE(resp, nullptr);
    const auto* reads = snap.find_counter("pipeline.reads_served");
    ASSERT_NE(reads, nullptr);
    EXPECT_EQ(resp->count, reads->value);
    EXPECT_EQ(snap.counter_family_total("flashsim.device.requests"),
              snap.find_counter("flashsim.completions")->value);
    reg.reset();
  }
}

}  // namespace
}  // namespace flashqos::obs
