// Failure injection: degraded-mode retrieval and the pipeline under device
// outages. Replication is the paper's QoS mechanism *and* its fault
// tolerance; these tests pin down what survives a failure.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "retrieval/dtr.hpp"
#include "retrieval/maxflow.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace flashqos {
namespace {

using core::AdmissionMode;
using core::DeviceFailure;
using core::MappingMode;
using core::PipelineConfig;
using core::QosPipeline;
using core::RetrievalMode;
using decluster::DesignTheoretic;

const DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const DesignTheoretic s(d, true);
  return s;
}

std::vector<bool> all_up_except(std::uint32_t devices,
                                std::initializer_list<DeviceId> down) {
  std::vector<bool> up(devices, true);
  for (const auto d : down) up[d] = false;
  return up;
}

TEST(DegradedRetrieval, NeverUsesDownDevices) {
  const auto& scheme = scheme931();
  const auto available = all_up_except(9, {0, 4});
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 1 + rng.below(12);
    std::vector<BucketId> batch;
    for (const auto b : rng.sample_without_replacement(scheme.buckets(), k)) {
      batch.push_back(static_cast<BucketId>(b));
    }
    const auto s = retrieval::optimal_schedule(batch, scheme, available);
    ASSERT_TRUE(s.has_value());
    for (const auto& a : s->assignments) {
      EXPECT_NE(a.device, 0u);
      EXPECT_NE(a.device, 4u);
    }
    EXPECT_TRUE(valid_schedule(batch, scheme, *s));
  }
}

TEST(DegradedRetrieval, NulloptWhenAllReplicasDown) {
  const auto& scheme = scheme931();
  // Bucket 0 is the paper's block (0,1,2); killing those three devices
  // leaves it unreachable.
  const auto available = all_up_except(9, {0, 1, 2});
  const std::vector<BucketId> batch{0};
  EXPECT_FALSE(retrieval::optimal_schedule(batch, scheme, available).has_value());
  // A bucket with one live replica still schedules.
  const std::vector<BucketId> ok{3};  // block (0,3,6): devices 3 and 6 live
  const auto s = retrieval::optimal_schedule(ok, scheme, available);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->assignments[0].device == 3 || s->assignments[0].device == 6);
}

TEST(DegradedRetrieval, EmptyMaskMeansAllUp) {
  const auto& scheme = scheme931();
  const std::vector<BucketId> batch{0, 1, 2};
  const auto degraded = retrieval::retrieve(batch, scheme, std::vector<bool>{}, {});
  ASSERT_TRUE(degraded.has_value());
  EXPECT_EQ(degraded->rounds, retrieval::retrieve(batch, scheme).rounds);
}

// Degraded guarantee. With one failed device the surviving layout keeps
// λ <= 1 *across distinct design blocks*, so batches touching each block at
// most once satisfy the (c-1)-copy guarantee (c-2)M² + (c-1)M exactly.
// Rotations of one block collapse onto the block's surviving pair, so
// arbitrary distinct-bucket batches can cost one extra round — and never
// more. Both facts verified per failed device.
class DegradedGuarantee : public ::testing::TestWithParam<DeviceId> {};

TEST_P(DegradedGuarantee, DistinctBlockBatchesKeepTwoCopyGuarantee) {
  const auto& scheme = scheme931();
  const DeviceId failed = GetParam();
  const auto available = all_up_except(9, {failed});
  Rng rng(100 + failed);
  const auto blocks = scheme931().buckets() / 3;  // 12 design blocks
  for (std::uint32_t m = 1; m <= 2; ++m) {
    const auto limit = design::guarantee_buckets(2, m);  // c' = c - 1 = 2
    for (int trial = 0; trial < 150; ++trial) {
      const std::size_t k = 1 + rng.below(std::min<std::uint64_t>(limit, blocks));
      std::vector<BucketId> batch;
      for (const auto b : rng.sample_without_replacement(blocks, k)) {
        batch.push_back(static_cast<BucketId>(b * 3 + rng.below(3)));
      }
      const auto s = retrieval::optimal_schedule(batch, scheme, available);
      ASSERT_TRUE(s.has_value());
      EXPECT_LE(s->rounds, m) << "failed=" << failed << " k=" << k;
    }
  }
}

TEST_P(DegradedGuarantee, ArbitraryBatchesDegradeByAtMostOneRound) {
  const auto& scheme = scheme931();
  const DeviceId failed = GetParam();
  const auto available = all_up_except(9, {failed});
  Rng rng(200 + failed);
  for (std::uint32_t m = 1; m <= 2; ++m) {
    const auto limit = design::guarantee_buckets(2, m);
    for (int trial = 0; trial < 150; ++trial) {
      const std::size_t k = 1 + rng.below(limit);
      std::vector<BucketId> batch;
      for (const auto b : rng.sample_without_replacement(scheme.buckets(), k)) {
        batch.push_back(static_cast<BucketId>(b));
      }
      const auto s = retrieval::optimal_schedule(batch, scheme, available);
      ASSERT_TRUE(s.has_value());
      EXPECT_LE(s->rounds, m + 1) << "failed=" << failed << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EveryDevice, DegradedGuarantee,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

trace::Trace boundary_trace(std::size_t intervals, std::uint32_t per_interval,
                            std::uint64_t seed) {
  return trace::generate_synthetic({.bucket_pool = 36,
                                    .interval = kBaseInterval,
                                    .requests_per_interval = per_interval,
                                    .total_requests = intervals * per_interval,
                                    .seed = seed});
}

TEST(PipelineFailure, TransientOutageNeverRoutesToDownDevice) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  const SimTime fail_at = 50 * kBaseInterval;
  const SimTime recover_at = 150 * kBaseInterval;
  cfg.faults.outages = {{.device = 3, .fail_at = fail_at, .recover_at = recover_at}};
  QosPipeline pipe(scheme931(), cfg);
  const auto r = pipe.run(boundary_trace(300, 4, 9));

  bool used_before = false, used_after = false;
  for (const auto& o : r.outcomes) {
    if (o.failed) continue;
    if (o.device == 3) {
      EXPECT_TRUE(o.start < fail_at || o.start >= recover_at)
          << "request started on device 3 during its outage";
      used_before |= o.start < fail_at;
      used_after |= o.start >= recover_at;
    }
  }
  EXPECT_TRUE(used_before) << "device 3 should serve before the outage";
  EXPECT_TRUE(used_after) << "device 3 should serve after recovery";
  EXPECT_EQ(r.overall.failed, 0u) << "transient outage loses nothing";
  EXPECT_EQ(r.deadline_violations, 0u)
      << "deterministic admission keeps the guarantee in degraded mode";
}

TEST(PipelineFailure, PermanentTripleFailureLosesOnlyDeadBuckets) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  // Devices 0,1,2 die immediately and never recover: buckets 0,1,2 (the
  // rotations of block (0,1,2)) become unreachable; every other bucket
  // keeps at least one live replica.
  cfg.faults.outages = {{.device = 0, .fail_at = 0},
                  {.device = 1, .fail_at = 0},
                  {.device = 2, .fail_at = 0}};
  QosPipeline pipe(scheme931(), cfg);
  const auto t = boundary_trace(200, 3, 11);
  const auto r = pipe.run(t);

  std::size_t expected_failed = 0;
  for (const auto& e : t.events) {
    if (e.block <= 2) ++expected_failed;  // modulo map: bucket == block here
  }
  EXPECT_EQ(r.overall.failed, expected_failed);
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(r.outcomes[i].failed, t.events[i].block <= 2) << i;
  }
  EXPECT_EQ(r.deadline_violations, 0u);
}

TEST(PipelineFailure, RecoveryWaitersDispatchAfterRecovery) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  const SimTime recover_at = 10 * kBaseInterval;
  cfg.faults.outages = {{.device = 0, .fail_at = 0, .recover_at = recover_at},
                  {.device = 1, .fail_at = 0, .recover_at = recover_at},
                  {.device = 2, .fail_at = 0, .recover_at = recover_at}};
  QosPipeline pipe(scheme931(), cfg);
  // A single request for bucket 0 at t = 0: all replicas down, but they
  // recover, so the request waits and then completes.
  trace::Trace t;
  t.report_interval = kSecond;
  t.events = {{.time = 0, .block = 0, .device = 0}};
  const auto r = pipe.run(t);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_FALSE(r.outcomes[0].failed);
  EXPECT_GE(r.outcomes[0].dispatch, recover_at);
  EXPECT_TRUE(r.outcomes[0].deferred());
  EXPECT_EQ(r.overall.failed, 0u);
}

TEST(PipelineFailure, AlignedModeAlsoDegrades) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  cfg.faults.outages = {{.device = 5, .fail_at = 0}};
  QosPipeline pipe(scheme931(), cfg);
  const auto r = pipe.run(boundary_trace(200, 3, 13));
  for (const auto& o : r.outcomes) {
    if (!o.failed) {
      EXPECT_NE(o.device, 5u);
    }
  }
  EXPECT_EQ(r.overall.failed, 0u);  // single failure: every bucket survives
}

TEST(PipelineFailure, OutageIncreasesDeferralNotViolations) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  QosPipeline healthy(scheme931(), cfg);
  cfg.faults.outages = {{.device = 0, .fail_at = 0},
                  {.device = 4, .fail_at = 0},
                  {.device = 8, .fail_at = 0}};
  QosPipeline degraded(scheme931(), cfg);
  const auto t = boundary_trace(500, 5, 17);
  const auto r_h = healthy.run(t);
  const auto r_d = degraded.run(t);
  EXPECT_EQ(r_h.deadline_violations, 0u);
  EXPECT_EQ(r_d.deadline_violations, 0u)
      << "degraded mode trades throughput, never the guarantee";
  EXPECT_GT(r_d.overall.deferred, r_h.overall.deferred)
      << "fewer live devices must defer more at the same load";
}

TEST(PipelineFailure, PrimaryOnlyBaselineFailsOverToLiveReplica) {
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kNone;
  cfg.mapping = MappingMode::kModulo;
  cfg.scheduler = core::SchedulerMode::kPrimaryOnly;
  cfg.faults.outages = {{.device = 0, .fail_at = 0}};
  QosPipeline pipe(scheme931(), cfg);
  trace::Trace t;
  t.report_interval = kSecond;
  // Bucket 0's primary is device 0 (down); the degraded read must use the
  // next listed copy (device 1).
  t.events = {{.time = 0, .block = 0, .device = 0}};
  const auto r = pipe.run(t);
  EXPECT_EQ(r.outcomes[0].device, 1u);
  EXPECT_FALSE(r.outcomes[0].failed);
}

}  // namespace
}  // namespace flashqos
