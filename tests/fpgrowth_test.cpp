// Unit + property tests for FP-growth and general k-itemset mining.
#include <gtest/gtest.h>

#include "fim/fp_growth.hpp"
#include "util/rng.hpp"

namespace flashqos::fim {
namespace {

TransactionDb classic_db() {
  // The Han et al. FP-growth paper's running example (items renamed to
  // integers: f=1 c=2 a=3 b=4 m=5 p=6 and the infrequent extras 10+).
  TransactionDb db;
  db.add({1, 3, 2, 10, 11, 6, 5});    // f a c d g i m p
  db.add({3, 4, 2, 1, 12, 5, 13});    // a b c f l m o
  db.add({4, 1, 14, 15, 16});         // b f h j o
  db.add({4, 2, 17, 18, 6});          // b c k s p
  db.add({3, 1, 2, 19, 12, 6, 5, 20});// a f c e l p m n
  return db;
}

TEST(FpGrowth, ClassicExampleFrequentItems) {
  const auto sets = mine_itemsets_fpgrowth(classic_db(), 3, 1);
  // min_support 3: f(4) c(4) a(3) b(3) m(3) p(3).
  ASSERT_EQ(sets.size(), 6u);
  for (const auto& s : sets) {
    EXPECT_EQ(s.items.size(), 1u);
    EXPECT_GE(s.support, 3u);
  }
}

TEST(FpGrowth, ClassicExampleTriples) {
  const auto sets = mine_itemsets_fpgrowth(classic_db(), 3, 3);
  // The famous result: {f,c,a,m,p} patterns; at size 3 with support 3 the
  // sets include {f,c,a} and {c,a,m} etc. Cross-check with naive below;
  // here just assert a known member: {1,2,3} (f,c,a) has support 3.
  const Itemset expected{{1, 2, 3}, 3};
  EXPECT_NE(std::find(sets.begin(), sets.end(), expected), sets.end());
}

TEST(FpGrowth, MatchesNaiveOnClassicExample) {
  for (const std::uint64_t support : {1u, 2u, 3u, 4u}) {
    for (const std::size_t size : {1u, 2u, 3u, 4u}) {
      EXPECT_EQ(mine_itemsets_fpgrowth(classic_db(), support, size),
                mine_itemsets_naive(classic_db(), support, size))
          << "support=" << support << " size=" << size;
    }
  }
}

TEST(FpGrowth, PairsMatchApriori) {
  const auto db = classic_db();
  for (const std::uint64_t support : {1u, 2u, 3u}) {
    const auto fp = mine_pairs_fpgrowth(db, support);
    const auto ap = mine_pairs_apriori(db, support);
    EXPECT_EQ(fp.pairs, ap.pairs) << "support=" << support;
  }
}

TEST(FpGrowth, EmptyDb) {
  EXPECT_TRUE(mine_itemsets_fpgrowth(TransactionDb{}, 1, 3).empty());
}

TEST(FpGrowth, SingleTransaction) {
  TransactionDb db;
  db.add({7, 8, 9});
  const auto sets = mine_itemsets_fpgrowth(db, 1, 3);
  // 3 singletons + 3 pairs + 1 triple.
  EXPECT_EQ(sets.size(), 7u);
  EXPECT_EQ(sets.back().items, (std::vector<Item>{7, 8, 9}));
  EXPECT_EQ(sets.back().support, 1u);
}

TEST(FpGrowth, MaxSizeOneIsItemSupports) {
  const auto sets = mine_itemsets_fpgrowth(classic_db(), 1, 1);
  for (const auto& s : sets) EXPECT_EQ(s.items.size(), 1u);
  // 17 distinct items appear in the db.
  EXPECT_EQ(sets.size(), 17u);
}

// Property: FP-growth == naive on random databases across supports and
// itemset sizes.
class FpGrowthAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FpGrowthAgreement, MatchesNaiveOnRandomDbs) {
  Rng rng(GetParam());
  TransactionDb db;
  const std::size_t txs = 15 + rng.below(40);
  for (std::size_t t = 0; t < txs; ++t) {
    std::vector<Item> items;
    const std::size_t len = 1 + rng.below(7);
    for (std::size_t i = 0; i < len; ++i) items.push_back(rng.below(15));
    db.add(std::move(items));
  }
  for (const std::uint64_t support : {1u, 2u, 4u}) {
    for (const std::size_t size : {2u, 3u, 4u}) {
      EXPECT_EQ(mine_itemsets_fpgrowth(db, support, size),
                mine_itemsets_naive(db, support, size))
          << "seed=" << GetParam() << " support=" << support << " size=" << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDbs, FpGrowthAgreement,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

TEST(FpGrowth, SupportsAreAntimonotone) {
  // Every superset's support <= every subset's support (the apriori
  // property FP-growth must respect).
  Rng rng(21);
  TransactionDb db;
  for (int t = 0; t < 60; ++t) {
    std::vector<Item> items;
    for (int i = 0; i < 5; ++i) items.push_back(rng.below(10));
    db.add(std::move(items));
  }
  const auto sets = mine_itemsets_fpgrowth(db, 1, 3);
  std::map<std::vector<Item>, std::uint64_t> by_items;
  for (const auto& s : sets) by_items[s.items] = s.support;
  for (const auto& s : sets) {
    if (s.items.size() < 2) continue;
    for (std::size_t drop = 0; drop < s.items.size(); ++drop) {
      auto sub = s.items;
      sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(drop));
      const auto it = by_items.find(sub);
      ASSERT_NE(it, by_items.end()) << "subset of a frequent set must be frequent";
      EXPECT_GE(it->second, s.support);
    }
  }
}

}  // namespace
}  // namespace flashqos::fim
