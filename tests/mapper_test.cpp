// Unit tests for core::BlockMapper: modulo fallback, FIM-driven placement,
// device-set separation of frequent partners, rebuild semantics.
#include <gtest/gtest.h>

#include <set>

#include "core/block_mapper.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"

namespace flashqos::core {
namespace {

using decluster::DesignTheoretic;

std::set<DeviceId> device_set(const decluster::AllocationScheme& s, BucketId b) {
  const auto reps = s.replicas(b);
  return {reps.begin(), reps.end()};
}

TEST(BlockMapper, ModuloFallbackWithoutTable) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  const BlockMapper m(scheme);
  for (const DataBlockId block : {0ULL, 35ULL, 36ULL, 100ULL, 1234567ULL}) {
    const auto r = m.map(block);
    EXPECT_EQ(r.bucket, block % 36);
    EXPECT_FALSE(r.matched);
  }
}

TEST(BlockMapper, FimPairsGetTableEntries) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  BlockMapper m(scheme);
  const std::vector<fim::FrequentPair> pairs = {{1000, 2000, 5}, {3000, 4000, 3}};
  m.rebuild(pairs);
  EXPECT_EQ(m.table_size(), 4u);
  EXPECT_TRUE(m.map(1000).matched);
  EXPECT_TRUE(m.map(2000).matched);
  EXPECT_TRUE(m.map(3000).matched);
  EXPECT_TRUE(m.map(4000).matched);
  EXPECT_FALSE(m.map(5000).matched);
}

TEST(BlockMapper, FrequentPartnersLandOnDisjointDevices) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  BlockMapper m(scheme);
  std::vector<fim::FrequentPair> pairs;
  for (DataBlockId b = 0; b < 10; ++b) {
    pairs.push_back({100 + 2 * b, 101 + 2 * b, 10 - b});
  }
  m.rebuild(pairs);
  for (const auto& p : pairs) {
    const auto ba = m.map(p.a).bucket;
    const auto bb = m.map(p.b).bucket;
    EXPECT_NE(ba, bb);
    const auto da = device_set(scheme, ba);
    const auto db = device_set(scheme, bb);
    std::set<DeviceId> inter;
    std::set_intersection(da.begin(), da.end(), db.begin(), db.end(),
                          std::inserter(inter, inter.begin()));
    // With 9 devices and 3 copies a disjoint partner always exists in a
    // window of 7 candidate buckets; the mapper must find one.
    EXPECT_TRUE(inter.empty())
        << "pair (" << p.a << "," << p.b << ") shares devices";
  }
}

TEST(BlockMapper, HigherSupportPairsPlacedFirst) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  BlockMapper m(scheme);
  // The same block appears in two pairs; the higher-support pair's
  // placement decision must win (assignments are first-write).
  const std::vector<fim::FrequentPair> pairs = {{1, 2, 1}, {1, 3, 100}};
  m.rebuild(pairs);
  // (1,3) processed first: both get fresh buckets; then (1,2): 1 is taken,
  // 2 placed relative to 1.
  EXPECT_EQ(m.table_size(), 3u);
  EXPECT_NE(m.map(1).bucket, m.map(3).bucket);
  EXPECT_NE(m.map(1).bucket, m.map(2).bucket);
}

TEST(BlockMapper, RebuildReplacesTable) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  BlockMapper m(scheme);
  m.rebuild(std::vector<fim::FrequentPair>{{1, 2, 5}});
  EXPECT_TRUE(m.map(1).matched);
  m.rebuild(std::vector<fim::FrequentPair>{{7, 8, 5}});
  EXPECT_FALSE(m.map(1).matched);
  EXPECT_TRUE(m.map(7).matched);
  EXPECT_EQ(m.table_size(), 2u);
}

TEST(BlockMapper, EmptyRebuildKeepsFallback) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  BlockMapper m(scheme);
  m.rebuild({});
  EXPECT_EQ(m.table_size(), 0u);
  EXPECT_EQ(m.map(77).bucket, 77 % 36);
}

TEST(BlockMapper, ManyPairsCycleThroughAllBuckets) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  BlockMapper m(scheme);
  std::vector<fim::FrequentPair> pairs;
  for (DataBlockId b = 0; b < 100; ++b) {
    pairs.push_back({1000 + 2 * b, 1001 + 2 * b, 1});
  }
  m.rebuild(pairs);
  EXPECT_EQ(m.table_size(), 200u);
  std::set<BucketId> used;
  for (const auto& p : pairs) {
    used.insert(m.map(p.a).bucket);
    used.insert(m.map(p.b).bucket);
  }
  // 200 blocks over 36 buckets: the round-robin cursor must have wrapped.
  EXPECT_EQ(used.size(), 36u);
}

}  // namespace
}  // namespace flashqos::core
