// Finite fields GF(p^k) and the prime-power plane constructions: field
// axioms verified exhaustively (fields here are tiny), planes verified as
// Steiner systems, resolvability of prime-power affine planes.
#include <gtest/gtest.h>

#include "design/constructions.hpp"
#include "design/galois.hpp"
#include "design/resolution.hpp"

namespace flashqos::design {
namespace {

struct FieldShape {
  std::uint32_t p;
  std::uint32_t k;
};

class FieldSweep : public ::testing::TestWithParam<FieldShape> {};

TEST_P(FieldSweep, FieldAxiomsHoldExhaustively) {
  const auto [p, k] = GetParam();
  const GaloisField f(p, k);
  const std::uint32_t q = f.order();

  // Additive and multiplicative identities.
  for (std::uint32_t a = 0; a < q; ++a) {
    EXPECT_EQ(f.add(a, 0), a);
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0u);
    EXPECT_EQ(f.add(a, f.neg(a)), 0u);
    if (a != 0) {
      EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
    }
  }
  // Commutativity + associativity + distributivity (exhaustive).
  for (std::uint32_t a = 0; a < q; ++a) {
    for (std::uint32_t b = 0; b < q; ++b) {
      EXPECT_EQ(f.add(a, b), f.add(b, a));
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
      for (std::uint32_t c = 0; c < q && q <= 9; ++c) {
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        EXPECT_EQ(f.add(a, f.add(b, c)), f.add(f.add(a, b), c));
        EXPECT_EQ(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
      }
    }
  }
  // No zero divisors: a·b == 0 implies a == 0 or b == 0.
  for (std::uint32_t a = 1; a < q; ++a) {
    for (std::uint32_t b = 1; b < q; ++b) {
      EXPECT_NE(f.mul(a, b), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallFields, FieldSweep,
                         ::testing::Values(FieldShape{2, 1}, FieldShape{2, 2},
                                           FieldShape{2, 3}, FieldShape{3, 1},
                                           FieldShape{3, 2}, FieldShape{5, 1},
                                           FieldShape{2, 4}, FieldShape{7, 1}));

TEST(GaloisField, PrimeFieldMatchesModularArithmetic) {
  const GaloisField f(7, 1);
  for (std::uint32_t a = 0; a < 7; ++a) {
    for (std::uint32_t b = 0; b < 7; ++b) {
      EXPECT_EQ(f.add(a, b), (a + b) % 7);
      EXPECT_EQ(f.mul(a, b), (a * b) % 7);
    }
  }
}

TEST(GaloisField, ModulusIsMonicDegreeK) {
  const GaloisField f(2, 3);
  ASSERT_EQ(f.modulus().size(), 4u);
  EXPECT_EQ(f.modulus().back(), 1u);
  EXPECT_NE(f.modulus().front(), 0u) << "irreducible: no root at 0";
}

TEST(IsPrimePower, Classification) {
  for (const std::uint32_t q : {2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 25u, 27u, 49u}) {
    EXPECT_TRUE(is_prime_power(q)) << q;
  }
  for (const std::uint32_t q : {0u, 1u, 6u, 10u, 12u, 15u, 18u, 20u, 100u}) {
    EXPECT_FALSE(is_prime_power(q)) << q;
  }
}

class PrimePowerPlanes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrimePowerPlanes, AffinePlaneIsSteiner) {
  const std::uint32_t q = GetParam();
  const auto d = affine_plane_gf(q);
  EXPECT_EQ(d.points(), q * q);
  EXPECT_EQ(d.block_size(), q);
  EXPECT_EQ(d.block_count(), static_cast<std::size_t>(q) * (q + 1));
  EXPECT_TRUE(d.is_steiner()) << "AG(2," << q << ")";
}

TEST_P(PrimePowerPlanes, ProjectivePlaneIsSteiner) {
  const std::uint32_t q = GetParam();
  const auto d = projective_plane_gf(q);
  EXPECT_EQ(d.points(), q * q + q + 1);
  EXPECT_EQ(d.block_size(), q + 1);
  EXPECT_TRUE(d.is_steiner()) << "PG(2," << q << ")";
}

INSTANTIATE_TEST_SUITE_P(Orders, PrimePowerPlanes,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 9u));

TEST(PrimePowerPlanes, GfConstructionMatchesPrimeOnAgreement) {
  // For prime q both construction paths must produce Steiner designs of
  // identical shape (block lists may differ by labeling).
  for (const std::uint32_t q : {3u, 5u}) {
    const auto a = affine_plane_gf(q);
    const auto b = affine_plane(q);
    EXPECT_EQ(a.points(), b.points());
    EXPECT_EQ(a.block_count(), b.block_count());
  }
}

TEST(PrimePowerPlanes, Ag4IsResolvable) {
  // Affine planes of any order are resolvable (q+1 parallel pencils).
  const auto d = affine_plane_gf(4);
  const auto r = find_resolution(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 5u);
  EXPECT_TRUE(valid_resolution(d, *r));
}

TEST(PrimePowerPlanes, RejectsNonPrimePower) {
  EXPECT_DEATH(affine_plane_gf(6), "prime power");
  EXPECT_DEATH(projective_plane_gf(12), "prime power");
}

}  // namespace
}  // namespace flashqos::design
