// Unit + property tests for the deep SSD substrate: FTL mapping/GC
// invariants and the event-driven module simulator (dies, channel, DRAM
// cache, garbage-collection interference).
#include <gtest/gtest.h>

#include <map>

#include "flashsim/ftl.hpp"
#include "flashsim/ssd_module.hpp"
#include "util/rng.hpp"

namespace flashqos::flashsim {
namespace {

FtlConfig small_ftl() {
  return FtlConfig{.blocks = 16,
                   .pages_per_block = 8,
                   .overprovision_blocks = 4,
                   .gc_trigger_blocks = 2};
}

TEST(Ftl, FreshPageIsUnmapped) {
  Ftl f(small_ftl());
  EXPECT_EQ(f.logical_pages(), 12u * 8u);
  EXPECT_FALSE(f.lookup(0).has_value());
  EXPECT_EQ(f.valid_pages(), 0u);
}

TEST(Ftl, WriteThenLookup) {
  Ftl f(small_ftl());
  const auto w = f.write(5);
  EXPECT_TRUE(w.gc.empty());
  const auto loc = f.lookup(5);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(*loc, w.location);
  EXPECT_EQ(f.valid_pages(), 1u);
}

TEST(Ftl, OverwriteInvalidatesOldPage) {
  Ftl f(small_ftl());
  const auto first = f.write(5).location;
  const auto second = f.write(5).location;
  EXPECT_NE(first, second) << "log-structured: overwrite allocates a new page";
  EXPECT_EQ(*f.lookup(5), second);
  EXPECT_EQ(f.valid_pages(), 1u);
}

TEST(Ftl, SequentialFillNeedsNoGc) {
  Ftl f(small_ftl());
  for (LogicalPage lp = 0; lp < f.logical_pages(); ++lp) {
    EXPECT_TRUE(f.write(lp).gc.empty()) << "first fill fits the logical space";
  }
  EXPECT_EQ(f.valid_pages(), f.logical_pages());
  EXPECT_DOUBLE_EQ(f.write_amplification(), 1.0);
}

TEST(Ftl, OverwriteChurnTriggersGc) {
  Ftl f(small_ftl());
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    (void)f.write(rng.below(f.logical_pages()));
  }
  EXPECT_GT(f.total_erases(), 0u) << "churn must garbage-collect";
  EXPECT_GT(f.write_amplification(), 1.0);
  // 75% logical utilization with uniform churn: greedy GC lands in the
  // mid single digits; anything above ~8 would mean victim selection or
  // wear leveling is thrashing.
  EXPECT_LT(f.write_amplification(), 8.0);
}

// Property: after any write sequence, the mapping is a bijection between
// written logical pages and their physical homes, and the free-block
// headroom never collapses.
TEST(Ftl, MappingStaysConsistentUnderChurn) {
  Ftl f(small_ftl());
  Rng rng(7);
  std::map<LogicalPage, PhysicalPage> shadow;
  for (int i = 0; i < 5000; ++i) {
    const LogicalPage lp = rng.below(f.logical_pages());
    shadow[lp] = f.write(lp).location;
    EXPECT_GE(f.free_blocks(), f.config().gc_trigger_blocks)
        << "GC must maintain headroom";
    // Moves during GC can relocate *other* pages, so re-read the whole
    // shadow occasionally rather than trusting stale locations.
    if (i % 500 == 0) {
      for (auto& [page, loc] : shadow) {
        const auto now = f.lookup(page);
        ASSERT_TRUE(now.has_value());
        loc = *now;
      }
      // Physical homes must be pairwise distinct.
      std::map<std::pair<std::uint32_t, std::uint32_t>, LogicalPage> seen;
      for (const auto& [page, loc] : shadow) {
        EXPECT_TRUE(seen.emplace(std::make_pair(loc.block, loc.page), page).second)
            << "two logical pages share a physical page";
      }
    }
  }
  EXPECT_EQ(f.valid_pages(), shadow.size());
}

TEST(Ftl, WearSpreadsAcrossBlocks) {
  Ftl f(small_ftl());
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) (void)f.write(rng.below(f.logical_pages()));
  std::uint64_t min_erase = UINT64_MAX, max_erase = 0;
  for (std::uint32_t b = 0; b < f.config().blocks; ++b) {
    min_erase = std::min(min_erase, f.erase_count(b));
    max_erase = std::max(max_erase, f.erase_count(b));
  }
  EXPECT_GT(min_erase, 0u)
      << "static wear leveling must cycle every block eventually";
  EXPECT_LT(max_erase, 20 * (min_erase + 1))
      << "wear spread should stay within an order of magnitude";
}

SsdModuleConfig module_config(std::size_t cache_pages = 0) {
  SsdModuleConfig cfg;
  cfg.packages = 4;
  cfg.ftl = small_ftl();
  cfg.cache_pages = cache_pages;
  return cfg;
}

TEST(SsdModule, CacheMissReadMatchesPaperConstant) {
  // cell_read + channel_transfer == 0.132507 ms with default parameters —
  // the exact MSR figure the QoS experiments rely on.
  SsdModule m(module_config());
  m.submit({.id = 1, .page = 3, .is_write = false, .submit_time = 0});
  m.run();
  ASSERT_EQ(m.completions().size(), 1u);
  EXPECT_EQ(m.completions()[0].response_time(), kPageReadLatency);
  EXPECT_FALSE(m.completions()[0].cache_hit);
}

TEST(SsdModule, CacheHitIsFast) {
  SsdModule m(module_config(16));
  m.submit({.id = 1, .page = 3, .submit_time = 0});
  m.run();
  m.submit({.id = 2, .page = 3, .submit_time = m.now() + 1});
  m.run();
  ASSERT_EQ(m.completions().size(), 2u);
  EXPECT_TRUE(m.completions()[1].cache_hit);
  EXPECT_EQ(m.completions()[1].response_time(), 5 * kMicrosecond);
  EXPECT_EQ(m.cache_hits(), 1u);
  EXPECT_EQ(m.cache_misses(), 1u);
}

TEST(SsdModule, LruEvictsColdPages) {
  SsdModuleConfig cfg = module_config(2);
  SsdModule m(cfg);
  SimTime t = 0;
  for (const LogicalPage p : {0ULL, 1ULL, 2ULL}) {  // 2-entry cache: 0 evicted
    m.submit({.id = p, .page = p, .submit_time = t});
    m.run();
    t = m.now() + 1;
  }
  m.submit({.id = 10, .page = 0, .submit_time = t});
  m.run();
  EXPECT_FALSE(m.completions().back().cache_hit) << "page 0 was evicted";
}

TEST(SsdModule, ChannelSerializesParallelDieReads) {
  // Two reads on different dies overlap their cell reads but share the
  // channel: second finish = first finish + one transfer.
  SsdModule m(module_config());
  m.submit({.id = 1, .page = 0, .submit_time = 0});  // die 0
  m.submit({.id = 2, .page = 1, .submit_time = 0});  // die 1
  m.run();
  ASSERT_EQ(m.completions().size(), 2u);
  const auto& c = m.completions();
  EXPECT_EQ(c[0].finish, kPageReadLatency);
  EXPECT_EQ(c[1].finish, kPageReadLatency + m.channel_busy_time() / 2);
}

TEST(SsdModule, SameDieReadsSerializeOnTheDie) {
  SsdModule m(module_config());
  m.submit({.id = 1, .page = 0, .submit_time = 0});  // die 0
  m.submit({.id = 2, .page = 4, .submit_time = 0});  // also die 0 (4 % 4)
  m.run();
  const auto& c = m.completions();
  ASSERT_EQ(c.size(), 2u);
  // Second cell read starts when the first ends; transfers pipeline behind.
  EXPECT_GE(c[1].finish - c[0].finish, 0);
  EXPECT_GE(c[1].finish, 2 * 25 * kMicrosecond + 107507);
}

TEST(SsdModule, WritePathProgramsAfterTransfer) {
  SsdModuleConfig cfg = module_config();
  SsdModule m(cfg);
  m.submit({.id = 1, .page = 7, .is_write = true, .submit_time = 0});
  m.run();
  ASSERT_EQ(m.completions().size(), 1u);
  EXPECT_EQ(m.completions()[0].response_time(),
            cfg.channel_transfer + cfg.cell_program);
}

TEST(SsdModule, GcShowsUpInWriteLatencyTail) {
  SsdModuleConfig cfg = module_config();
  SsdModule m(cfg);
  Rng rng(5);
  SimTime t = 0;
  SimTime max_write = 0;
  std::uint64_t writes_with_gc = 0;
  for (int i = 0; i < 3000; ++i) {
    m.submit({.id = static_cast<std::uint64_t>(i),
              .page = rng.below(m.logical_pages()),
              .is_write = true,
              .submit_time = t});
    m.run();
    const auto& c = m.completions().back();
    max_write = std::max(max_write, c.response_time());
    if (c.gc_pages_moved > 0) ++writes_with_gc;
    t = m.now();
  }
  EXPECT_GT(writes_with_gc, 0u);
  EXPECT_GT(m.total_gc_erases(), 0u);
  EXPECT_GT(max_write, cfg.channel_transfer + cfg.cell_program + cfg.block_erase)
      << "a GC-burdened write pays erase + move costs";
  EXPECT_GT(m.write_amplification(), 1.0);
}

TEST(SsdModule, ConservationUnderMixedLoad) {
  SsdModule m(module_config(32));
  Rng rng(13);
  constexpr int kOps = 4000;
  SimTime t = 0;
  for (int i = 0; i < kOps; ++i) {
    t += static_cast<SimTime>(rng.below(50 * kMicrosecond));
    m.submit({.id = static_cast<std::uint64_t>(i),
              .page = rng.below(m.logical_pages()),
              .is_write = rng.chance(0.3),
              .submit_time = t});
  }
  m.run();
  ASSERT_EQ(m.completions().size(), static_cast<std::size_t>(kOps));
  std::map<std::uint64_t, int> seen;
  for (const auto& c : m.completions()) {
    EXPECT_GE(c.finish, c.submit_time);
    EXPECT_EQ(++seen[c.id], 1) << "exactly one completion per op";
  }
}

TEST(SsdModule, DieUtilizationIsTracked) {
  SsdModule m(module_config());
  m.submit({.id = 1, .page = 0, .submit_time = 0});
  m.run();
  EXPECT_EQ(m.die_busy_time(0), 25 * kMicrosecond);
  EXPECT_EQ(m.die_busy_time(1), 0);
}

}  // namespace
}  // namespace flashqos::flashsim
