// Unit + property tests for src/design: design axioms for every
// construction, the paper's guarantee formula, bucket-table rotations, and
// the catalog's QoS-driven selection.
#include <gtest/gtest.h>

#include <set>

#include "design/block_design.hpp"
#include "design/bucket_table.hpp"
#include "design/catalog.hpp"
#include "design/constructions.hpp"

namespace flashqos::design {
namespace {

TEST(BlockDesign, Paper931MatchesFigure2) {
  const auto d = make_9_3_1();
  EXPECT_EQ(d.points(), 9u);
  EXPECT_EQ(d.block_size(), 3u);
  EXPECT_EQ(d.block_count(), 12u);
  EXPECT_TRUE(d.is_steiner());
  // Spot-check the figure: 0 and 1 appear together only in the first block.
  EXPECT_EQ(d.block(0), (Block{0, 1, 2}));
  EXPECT_EQ(d.block(11), (Block{6, 7, 8}));
}

TEST(BlockDesign, Design1331FromDifferenceFamily) {
  const auto d = make_13_3_1();
  EXPECT_EQ(d.points(), 13u);
  EXPECT_EQ(d.block_count(), 26u);
  EXPECT_TRUE(d.is_steiner());
}

TEST(BlockDesign, FanoPlane) {
  const auto d = fano();
  EXPECT_EQ(d.points(), 7u);
  EXPECT_EQ(d.block_count(), 7u);
  EXPECT_TRUE(d.is_steiner());
}

TEST(BlockDesign, ReplicationNumbersAreConstant) {
  const auto d = make_9_3_1();
  const auto r = d.replication_numbers();
  for (const auto x : r) EXPECT_EQ(x, 4u);  // (N-1)/(c-1) = 8/2
}

TEST(BlockDesign, PairCoverageDetectsNonSteiner) {
  // Two blocks sharing a pair: (0,1) covered twice, (3,4) never.
  const BlockDesign d(5, {{0, 1, 2}, {0, 1, 3}});
  EXPECT_FALSE(d.is_steiner());
  EXPECT_FALSE(d.is_linear_space());
  const auto pc = d.pair_coverage();
  EXPECT_EQ(pc.min, 0u);
  EXPECT_EQ(pc.max, 2u);
}

// Property sweep: every Bose-constructed STS is a Steiner system with the
// right block count.
class BoseSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BoseSweep, IsSteinerTripleSystem) {
  const std::uint32_t v = GetParam();
  const auto d = bose_sts(v);
  EXPECT_EQ(d.points(), v);
  EXPECT_EQ(d.block_size(), 3u);
  EXPECT_EQ(d.block_count(), static_cast<std::size_t>(v) * (v - 1) / 6);
  EXPECT_TRUE(d.is_steiner());
}

INSTANTIATE_TEST_SUITE_P(AllAdmissibleOrders, BoseSweep,
                         ::testing::Values(9u, 15u, 21u, 27u, 33u, 39u, 45u, 51u,
                                           57u, 63u, 69u, 75u));

class SkolemSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SkolemSweep, IsSteinerTripleSystem) {
  const std::uint32_t v = GetParam();
  const auto d = skolem_sts(v);
  EXPECT_EQ(d.points(), v);
  EXPECT_EQ(d.block_size(), 3u);
  EXPECT_EQ(d.block_count(), static_cast<std::size_t>(v) * (v - 1) / 6);
  EXPECT_TRUE(d.is_steiner());
}

INSTANTIATE_TEST_SUITE_P(AllAdmissibleOrders, SkolemSweep,
                         ::testing::Values(7u, 13u, 19u, 25u, 31u, 37u, 43u, 49u,
                                           55u, 61u, 67u, 73u));

TEST(Constructions, StsDispatchesOnResidue) {
  for (const std::uint32_t v : {7u, 9u, 13u, 15u, 19u, 21u, 25u, 27u}) {
    const auto d = sts(v);
    EXPECT_EQ(d.points(), v);
    EXPECT_TRUE(d.is_steiner()) << "STS(" << v << ")";
  }
}

class AffinePlaneSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AffinePlaneSweep, IsResolvableDesign) {
  const std::uint32_t q = GetParam();
  const auto d = affine_plane(q);
  EXPECT_EQ(d.points(), q * q);
  EXPECT_EQ(d.block_size(), q);
  EXPECT_EQ(d.block_count(), static_cast<std::size_t>(q) * (q + 1));
  EXPECT_TRUE(d.is_steiner());
}

INSTANTIATE_TEST_SUITE_P(PrimeOrders, AffinePlaneSweep,
                         ::testing::Values(2u, 3u, 5u, 7u, 11u, 13u));

class ProjectivePlaneSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProjectivePlaneSweep, IsSymmetricDesign) {
  const std::uint32_t q = GetParam();
  const auto d = projective_plane(q);
  EXPECT_EQ(d.points(), q * q + q + 1);
  EXPECT_EQ(d.block_size(), q + 1);
  EXPECT_EQ(d.block_count(), static_cast<std::size_t>(q) * q + q + 1);
  EXPECT_TRUE(d.is_steiner());
}

INSTANTIATE_TEST_SUITE_P(PrimeOrders, ProjectivePlaneSweep,
                         ::testing::Values(2u, 3u, 5u, 7u, 11u));

TEST(Guarantee, PaperNumbersFor931) {
  // Paper §II-B3: for c = 2 — 3 buckets in 1 access, 8 in 2, 15 in 3.
  EXPECT_EQ(guarantee_buckets(2, 1), 3u);
  EXPECT_EQ(guarantee_buckets(2, 2), 8u);
  EXPECT_EQ(guarantee_buckets(2, 3), 15u);
  // Paper §III-A: c = 3 — 5 in 1 access, 14 in 2, 27 in 3.
  EXPECT_EQ(guarantee_buckets(3, 1), 5u);
  EXPECT_EQ(guarantee_buckets(3, 2), 14u);
  EXPECT_EQ(guarantee_buckets(3, 3), 27u);
}

TEST(Guarantee, AccessesInvertsBuckets) {
  for (std::uint32_t c = 2; c <= 7; ++c) {
    for (std::uint64_t m = 1; m <= 10; ++m) {
      const auto s = guarantee_buckets(c, m);
      EXPECT_EQ(guarantee_accesses(c, s), m);
      EXPECT_EQ(guarantee_accesses(c, s + 1), m + 1);
    }
  }
  EXPECT_EQ(guarantee_accesses(3, 0), 0u);
  EXPECT_EQ(guarantee_accesses(3, 1), 1u);
}

TEST(Guarantee, OptimalAccessesIsCeilDiv) {
  EXPECT_EQ(optimal_accesses(0, 9), 0u);
  EXPECT_EQ(optimal_accesses(9, 9), 1u);
  EXPECT_EQ(optimal_accesses(10, 9), 2u);
  EXPECT_EQ(optimal_accesses(1, 9), 1u);
}

TEST(BucketTable, RotationsTripleTheBuckets) {
  const auto d = make_9_3_1();
  const BucketTable with(d, true);
  const BucketTable without(d, false);
  EXPECT_EQ(with.buckets(), 36u);  // paper: N(N-1)/(c-1) = 9*8/2
  EXPECT_EQ(without.buckets(), 12u);
}

TEST(BucketTable, RotationsPreserveDeviceSets) {
  const auto d = make_9_3_1();
  const BucketTable t(d, true);
  for (BucketId b = 0; b < 12; ++b) {
    std::multiset<DeviceId> base;
    for (const auto dev : t.replicas(b * 3)) base.insert(dev);
    for (std::uint32_t r = 1; r < 3; ++r) {
      std::multiset<DeviceId> rot;
      for (const auto dev : t.replicas(b * 3 + r)) rot.insert(dev);
      EXPECT_EQ(base, rot);
    }
  }
}

TEST(BucketTable, RotationsCyclePrimary) {
  const auto d = make_9_3_1();
  const BucketTable t(d, true);
  // Block (0,1,2) -> buckets 0,1,2 with primaries 0,1,2.
  EXPECT_EQ(t.primary(0), 0u);
  EXPECT_EQ(t.primary(1), 1u);
  EXPECT_EQ(t.primary(2), 2u);
}

TEST(BucketTable, PrimariesAreBalanced) {
  const auto d = make_13_3_1();
  const BucketTable t(d, true);
  std::vector<int> load(13, 0);
  for (BucketId b = 0; b < t.buckets(); ++b) ++load[t.primary(b)];
  for (const int l : load) EXPECT_EQ(l, static_cast<int>(t.buckets()) / 13);
}

TEST(Catalog, EntriesConstructAndValidate) {
  for (const auto& e : catalog()) {
    const auto d = e.make();
    EXPECT_EQ(d.points(), e.devices) << e.name;
    EXPECT_EQ(d.block_size(), e.copies) << e.name;
    EXPECT_TRUE(d.is_steiner()) << e.name;
    EXPECT_EQ(e.buckets,
              static_cast<std::size_t>(e.devices) * (e.devices - 1) / (e.copies - 1))
        << e.name;
  }
}

TEST(Catalog, ChoosesSmallestSufficientDesign) {
  // 5 requests per interval, 1 access budget: (9,3,1) gives S = 5; the
  // Fano plane gives the same S with fewer devices, so it should win.
  const auto pick = choose_design({.max_requests_per_interval = 5,
                                   .access_budget = 1});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->name, "(7,3,1)");
}

TEST(Catalog, RespectsDeviceCap) {
  const auto pick = choose_design({.max_requests_per_interval = 40,
                                   .access_budget = 2,
                                   .max_devices = 13});
  // Need S(c,2) >= 40: c = 3 gives 14, c = 4 gives 20, ... only very high
  // copy counts qualify; within 13 devices the (13,4,1) gives 20 — still
  // short, so nothing qualifies.
  EXPECT_FALSE(pick.has_value());
}

TEST(Catalog, HigherCopyCountBuysThroughput) {
  const auto pick = choose_design({.max_requests_per_interval = 20,
                                   .access_budget = 2,
                                   .max_devices = 13});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->name, "(13,4,1)");  // S(4,2) = 3*4 + 8 = 20
}

TEST(CyclicDesign, RejectsAreValidated) {
  // {0,1,3} mod 7 is a planar difference set; the result must be Steiner.
  const auto d = cyclic_design(7, {{0, 1, 3}});
  EXPECT_TRUE(d.is_steiner());
  // {0,1,2} mod 7 is NOT a difference set: pair coverage is unbalanced.
  const auto bad = cyclic_design(7, {{0, 1, 2}});
  EXPECT_FALSE(bad.is_steiner());
}

TEST(StsExists, AdmissibleResidues) {
  EXPECT_TRUE(sts_exists(7));
  EXPECT_TRUE(sts_exists(9));
  EXPECT_TRUE(sts_exists(13));
  EXPECT_FALSE(sts_exists(8));
  EXPECT_FALSE(sts_exists(11));
  EXPECT_FALSE(sts_exists(5));
}

}  // namespace
}  // namespace flashqos::design

#include "design/resolution.hpp"

namespace flashqos::design {
namespace {

TEST(Resolution, KirkmanFifteenIsResolvableSteiner) {
  const auto d = kirkman_15();
  EXPECT_EQ(d.points(), 15u);
  EXPECT_EQ(d.block_count(), 35u);
  EXPECT_TRUE(d.is_steiner());
  const auto r = find_resolution(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 7u) << "seven days of schoolgirl walks";
  EXPECT_TRUE(valid_resolution(d, *r));
}

TEST(Resolution, AffinePlanesAreResolvable) {
  for (const std::uint32_t q : {2u, 3u, 5u}) {
    const auto d = affine_plane(q);
    const auto r = find_resolution(d);
    ASSERT_TRUE(r.has_value()) << "AG(2," << q << ")";
    EXPECT_EQ(r->size(), q + 1u) << "q+1 pencils of parallel lines";
    EXPECT_TRUE(valid_resolution(d, *r));
  }
}

TEST(Resolution, Paper931IsResolvable) {
  // The paper's Figure 2 design is AG(2,3) in disguise: 4 parallel classes
  // of 3 blocks each — each class is a ready-made single-access round.
  const auto d = make_9_3_1();
  const auto r = find_resolution(d);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 4u);
  EXPECT_TRUE(valid_resolution(d, *r));
}

TEST(Resolution, FanoPlaneIsNot) {
  // 7 points with 3-point lines: a parallel class cannot even exist
  // (3 does not divide 7).
  EXPECT_FALSE(find_resolution(fano()).has_value());
}

TEST(Resolution, ProjectivePlanesAreNot) {
  EXPECT_FALSE(find_resolution(projective_plane(3)).has_value());
}

TEST(Resolution, ValidatorRejectsBadPartitions) {
  const auto d = make_9_3_1();
  // Reusing a block across classes.
  EXPECT_FALSE(valid_resolution(d, {{0, 1, 2}, {0, 3, 4}}));
  // A class that double-covers a point: blocks 0 and 1 share point 0.
  EXPECT_FALSE(valid_resolution(d, {{0, 1, 5}}));
  // Incomplete (not all blocks used).
  const auto r = find_resolution(d);
  ASSERT_TRUE(r.has_value());
  auto partial = *r;
  partial.pop_back();
  EXPECT_FALSE(valid_resolution(d, partial));
}

TEST(Resolution, ClassesArePerfectRetrievalRounds) {
  // Operational payoff: a parallel class's blocks hit each device exactly
  // once — a guaranteed one-access batch without any scheduling.
  const auto d = kirkman_15();
  const auto r = find_resolution(d);
  ASSERT_TRUE(r.has_value());
  for (const auto& cls : *r) {
    std::vector<int> device_hits(d.points(), 0);
    for (const auto b : cls) {
      for (const auto p : d.block(b)) ++device_hits[p];
    }
    for (const auto h : device_hits) EXPECT_EQ(h, 1);
  }
}

}  // namespace
}  // namespace flashqos::design
