// Tests for the invariant verifier subsystem (src/verify).
//
// Two directions: healthy structures must pass every check, and — the part
// an oracle is useless without — deliberately corrupted structures must be
// DETECTED. Each mutation test plants one violation and asserts the exact
// check that should catch it does.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "decluster/schemes.hpp"
#include "design/catalog.hpp"
#include "design/constructions.hpp"
#include "retrieval/maxflow.hpp"
#include "verify/guarantee.hpp"
#include "verify/invariants.hpp"

namespace flashqos {
namespace {

using decluster::DesignTheoretic;
using verify::Report;

bool check_failed(const Report& r, const std::string& needle) {
  return std::any_of(r.checks().begin(), r.checks().end(), [&](const auto& c) {
    return !c.passed && c.name.find(needle) != std::string::npos;
  });
}

// ---------------------------------------------------------------- healthy

TEST(VerifyDesign, SteinerSystemsPassEveryCheck) {
  for (auto* make :
       {+[] { return design::fano(); }, +[] { return design::make_9_3_1(); },
        +[] { return design::make_13_3_1(); }}) {
    const auto d = make();
    const auto r = verify::verify_design(d);
    EXPECT_TRUE(r.passed()) << r.to_string();
  }
}

TEST(VerifyDesign, PartialDesignStillLinearSpace) {
  auto blocks = design::make_13_3_1().blocks();
  blocks.resize(blocks.size() - 4);
  const design::BlockDesign partial(13, blocks, "partial-13");
  const auto r = verify::verify_design(partial);
  EXPECT_TRUE(r.passed()) << r.to_string();
}

TEST(VerifyBucketTable, RotatedAndUnrotatedPass) {
  const auto d = design::make_9_3_1();
  EXPECT_TRUE(verify::verify_bucket_table(d, true).passed());
  EXPECT_TRUE(verify::verify_bucket_table(d, false).passed());
}

TEST(VerifyAllocation, DesignTheoreticPassesStrictExpectations) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic s(d, true);
  const auto r = verify::verify_allocation(
      s, {.design_theoretic = true, .uniform_load = true});
  EXPECT_TRUE(r.passed()) << r.to_string();
}

TEST(VerifyAllocation, BaselineSchemesPassStructuralChecks) {
  const decluster::Raid1Chained chained(8, 2, 40);
  EXPECT_TRUE(verify::verify_allocation(chained).passed());
  const decluster::RandomDuplicate rda(11, 3, 50, 7);
  EXPECT_TRUE(verify::verify_allocation(rda).passed());
  const decluster::Orthogonal orth(7);
  EXPECT_TRUE(verify::verify_allocation(orth).passed());
}

TEST(VerifyRetrieval, DesignAndRandomSchemesCrossCheckClean) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic s(d, true);
  const auto r = verify::verify_retrieval(s, {.trials = 25, .seed = 3});
  EXPECT_TRUE(r.passed()) << r.to_string();

  const decluster::RandomDuplicate rda(9, 2, 40, 11);
  const auto r2 = verify::verify_retrieval(rda, {.trials = 25, .seed = 4});
  EXPECT_TRUE(r2.passed()) << r2.to_string();
}

TEST(VerifyGuarantee, ArithmeticIdentitiesHold) {
  const auto r = verify::verify_guarantee_arithmetic();
  EXPECT_TRUE(r.passed()) << r.to_string();
}

TEST(VerifyGuarantee, FanoBoundExhaustive) {
  const auto d = design::fano();
  verify::GuaranteeParams p;
  p.max_accesses = 1;
  const auto r = verify::verify_guarantee(d, p);
  EXPECT_TRUE(r.passed()) << r.to_string();
  // C(21, 5) = 20349 fits the default budget, so this really enumerated.
  ASSERT_FALSE(r.checks().empty());
  EXPECT_NE(r.checks().front().name.find("exhaustive"), std::string::npos);
}

TEST(VerifyCatalog, SmallEntriesPassEndToEnd) {
  verify::CatalogCheckParams params;
  params.guarantee.exhaustive_budget = 30000;
  params.guarantee.sampled_trials = 40;
  params.retrieval.trials = 20;
  for (const auto& e : design::catalog()) {
    if (e.devices > 13) continue;
    const auto r = verify::verify_catalog_entry(e, params);
    EXPECT_TRUE(r.passed()) << r.to_string();
  }
}

TEST(VerifyBinomial, SmallValuesAndClamp) {
  EXPECT_EQ(verify::binomial_clamped(0, 0), 1u);
  EXPECT_EQ(verify::binomial_clamped(5, 2), 10u);
  EXPECT_EQ(verify::binomial_clamped(21, 5), 20349u);
  EXPECT_EQ(verify::binomial_clamped(42, 14), 52860229080u);
  EXPECT_EQ(verify::binomial_clamped(10, 11), 0u);
  // C(200, 100) overflows 63 bits and must clamp, not wrap.
  EXPECT_EQ(verify::binomial_clamped(200, 100),
            static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()));
}

// --------------------------------------------------------------- mutations

TEST(VerifyDesignMutation, RepeatedPairIsDetected) {
  // Blocks {0,1,2} and {0,1,3} give pair (0,1) co-occurrence 2.
  const design::BlockDesign bad(4, {{0, 1, 2}, {0, 1, 3}}, "bad-pair");
  const auto r = verify::verify_design(bad);
  EXPECT_FALSE(r.passed());
  EXPECT_TRUE(check_failed(r, "pair co-occurrence")) << r.to_string();
}

TEST(VerifyDesignMutation, IdleDeviceIsDetected) {
  // Point 4 appears in no block: a device that never carries load.
  const design::BlockDesign bad(5, {{0, 1, 2}}, "idle-device");
  const auto r = verify::verify_design(bad);
  EXPECT_TRUE(check_failed(r, "every device carries load")) << r.to_string();
}

// A scheme whose constructor lies: replica table built by the test, free to
// violate any invariant the verifier must catch.
class CorruptScheme final : public decluster::AllocationScheme {
 public:
  CorruptScheme(std::uint32_t devices, std::uint32_t copies,
                std::vector<DeviceId> table)
      : AllocationScheme("corrupt", devices, copies) {
    set_table(std::move(table));
  }
};

TEST(VerifyAllocationMutation, DuplicateReplicaDeviceIsDetected) {
  // Bucket 1 stores both copies on device 2.
  const CorruptScheme s(4, 2, {0, 1, 2, 2, 1, 3});
  const auto r = verify::verify_allocation(s);
  EXPECT_FALSE(r.passed());
  EXPECT_TRUE(check_failed(r, "distinct per bucket")) << r.to_string();
}

TEST(VerifyAllocationMutation, PairSharingAboveDesignBoundIsDetected) {
  // Buckets {0,1,2} and {0,1,3}: share two devices yet differ — impossible
  // for rotations of a λ=1 design.
  const CorruptScheme s(4, 3, {0, 1, 2, 0, 1, 3});
  const auto r = verify::verify_allocation(s, {.design_theoretic = true});
  EXPECT_FALSE(r.passed());
  EXPECT_TRUE(check_failed(r, "pairwise intersections")) << r.to_string();
}

TEST(VerifyAllocationMutation, SkewedLoadIsDetected) {
  // Device 0 carries every primary.
  const CorruptScheme s(4, 2, {0, 1, 0, 2, 0, 3});
  const auto r = verify::verify_allocation(s, {.uniform_load = true});
  EXPECT_FALSE(r.passed());
  EXPECT_TRUE(check_failed(r, "uniform primary load")) << r.to_string();
}

TEST(VerifyScheduleMutation, CorruptionsAreDetected) {
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  const std::vector<BucketId> batch{0, 5, 11, 17, 23};
  auto good = retrieval::optimal_schedule(batch, scheme);
  ASSERT_TRUE(verify::check_schedule(batch, scheme, good));

  std::string why;
  // Wrong device: serve request 0 from a device outside its replica set.
  auto bad = good;
  const auto reps = scheme.replicas(batch[0]);
  for (DeviceId dev = 0; dev < scheme.devices(); ++dev) {
    if (std::find(reps.begin(), reps.end(), dev) == reps.end()) {
      bad.assignments[0].device = dev;
      break;
    }
  }
  EXPECT_FALSE(verify::check_schedule(batch, scheme, bad, &why));
  EXPECT_NE(why.find("non-replica"), std::string::npos) << why;

  // Round out of range.
  bad = good;
  bad.assignments[0].round = bad.rounds + 3;
  EXPECT_FALSE(verify::check_schedule(batch, scheme, bad, &why));

  // Understated rounds field.
  bad = good;
  bad.rounds += 1;
  EXPECT_FALSE(verify::check_schedule(batch, scheme, bad, &why));
  EXPECT_NE(why.find("deepest"), std::string::npos) << why;
}

TEST(VerifyScheduleMutation, DeviceCollisionDetected) {
  // Two requests for different buckets forced onto one device in round 0.
  const auto d = design::fano();
  const DesignTheoretic scheme(d, false);
  // Blocks 0 and 1 of the Fano plane share exactly one device.
  const auto a = scheme.replicas(0);
  const auto b = scheme.replicas(1);
  DeviceId shared = kInvalidDevice;
  for (const auto da : a) {
    if (std::find(b.begin(), b.end(), da) != b.end()) shared = da;
  }
  ASSERT_NE(shared, kInvalidDevice);
  retrieval::Schedule s;
  s.rounds = 1;
  s.assignments = {{shared, 0}, {shared, 0}};
  std::string why;
  const std::vector<BucketId> batch{0, 1};
  EXPECT_FALSE(verify::check_schedule(batch, scheme, s, &why));
  EXPECT_NE(why.find("two requests"), std::string::npos) << why;
}

TEST(VerifyGuaranteeMutation, BrokenDesignFailsTheBound) {
  // Pair (0,1) covered twice and only 4 devices: S(c=3, M=1) = 5 distinct
  // buckets cannot all land in one round.
  const design::BlockDesign bad(4, {{0, 1, 2}, {0, 1, 3}}, "bad-pair");
  verify::GuaranteeParams p;
  p.max_accesses = 1;
  const auto r = verify::verify_guarantee(bad, p);
  EXPECT_FALSE(r.passed()) << r.to_string();
}

}  // namespace
}  // namespace flashqos
