// Concurrency stress for the parallel replay machinery, written to give
// ThreadSanitizer something to chew on: many producers and consumers on a
// tiny HandoffQueue, repeated sharded sweeps, and the pipelined mining path
// under maximum backpressure. The assertions are deliberately simple — the
// point of these tests is the interleavings, and TSan turns any data race
// or lock-order bug they expose into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "core/parallel_replay.hpp"
#include "core/qos_pipeline.hpp"
#include "core/tenant_scheduler.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "trace/synthetic.hpp"
#include "util/handoff_queue.hpp"
#include "util/thread_pool.hpp"
#include "verify/replay_equivalence.hpp"

using namespace flashqos;

namespace {

// Many producers, many consumers, capacity far below the element count so
// both sides block constantly. Every pushed value must be popped exactly
// once and the element sum conserved.
TEST(HandoffQueueStress, ManyProducersManyConsumersTinyCapacity) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 2000;
  HandoffQueue<std::uint64_t> queue(2);

  std::atomic<std::uint64_t> pushed{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &pushed, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        if (!queue.push(p * kPerProducer + i)) return;
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &popped, &sum] {
      while (auto v = queue.pop()) {
        popped.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(*v, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(pushed.load(), kTotal);
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(queue.size(), 0u);
}

// close() racing against blocked producers: consumers stop early, so
// producers must observe push() -> false instead of blocking forever.
TEST(HandoffQueueStress, CloseUnblocksStalledProducers) {
  HandoffQueue<int> queue(1);
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, &rejected] {
      for (int i = 0; i < 500; ++i) {
        if (!queue.push(i)) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  // Drain a handful of elements, then slam the door.
  for (int i = 0; i < 5; ++i) (void)queue.pop();
  queue.close();
  for (auto& t : producers) t.join();
  EXPECT_GT(rejected.load(), 0);
  EXPECT_FALSE(queue.push(99));
  while (queue.pop()) {
  }
  EXPECT_FALSE(queue.pop().has_value());
}

const decluster::DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const decluster::DesignTheoretic s(d, true);
  return s;
}

trace::Trace tiny_interval_trace(std::uint64_t seed) {
  // Tiny intervals -> one reporting slice per QoS interval -> hundreds of
  // mining tasks per replay, maximizing producer/consumer churn.
  trace::SyntheticParams p;
  p.bucket_pool = scheme931().buckets();
  p.requests_per_interval = 3;
  p.total_requests = 900;
  p.seed = seed;
  return trace::generate_synthetic(p);
}

// Pipelined mining with lookahead 1 (every push blocks until the replay
// core consumes the previous slice) repeated back to back; TSan watches the
// queue handoff, the miner error path, and the metric-stage parallel_for.
TEST(ParallelReplayStress, PipelinedMiningUnderBackpressure) {
  const auto t = tiny_interval_trace(17);
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kIntervalAligned;
  cfg.mapping = core::MappingMode::kFim;
  core::ParallelReplayEngine engine({.threads = 4, .mining_lookahead = 1});
  const auto first = engine.run(scheme931(), cfg, t);
  for (int round = 0; round < 3; ++round) {
    const auto again = engine.run(scheme931(), cfg, t);
    std::string why;
    ASSERT_TRUE(verify::results_identical(first, again, &why))
        << "round " << round << ": " << why;
  }
}

// Sharded sweep stress: a wide job list (several distinct traces x modes),
// run twice on the same engine; slots must be populated identically while
// workers complete in whatever order the scheduler picks.
TEST(ParallelReplayStress, ShardedSweepRepeatedRuns) {
  std::vector<trace::Trace> traces;
  for (std::uint64_t s = 0; s < 4; ++s) traces.push_back(tiny_interval_trace(s));
  std::vector<core::ReplayJob> jobs;
  for (const auto& t : traces) {
    for (const auto retrieval : {core::RetrievalMode::kOnline,
                                 core::RetrievalMode::kIntervalAligned}) {
      for (const auto mapping :
           {core::MappingMode::kModulo, core::MappingMode::kFim}) {
        core::PipelineConfig cfg;
        cfg.retrieval = retrieval;
        cfg.mapping = mapping;
        jobs.push_back({&scheme931(), &t, cfg});
      }
    }
  }
  ASSERT_EQ(jobs.size(), 16u);
  core::ParallelReplayEngine engine({.threads = 4});
  const auto first = engine.run_jobs(jobs);
  const auto second = engine.run_jobs(jobs);
  ASSERT_EQ(first.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::string why;
    ASSERT_TRUE(verify::results_identical(first[i], second[i], &why))
        << "job " << i << ": " << why;
  }
}

// Tenant-ingress seam under contention: many producer threads try_push
// into per-tenant bounded queues with a tiny capacity (so sheds race with
// drains) while one consumer pop_any()s everything. Conservation per
// tenant: every accepted item is popped exactly once, sheds account for
// the rest. TSan watches the mutex/condvar handoff and the close/drain
// handshake that check::Sched model-checks exhaustively.
TEST(TenantIngressStress, ManyProducersSingleDrainerConservation) {
  constexpr std::size_t kTenants = 3;
  constexpr std::size_t kProducers = 6;
  constexpr std::uint64_t kPerProducer = 2000;
  core::TenantIngress ingress(kTenants, 2);

  std::atomic<std::uint64_t> accepted[kTenants] = {};
  std::atomic<std::uint64_t> shed[kTenants] = {};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::size_t tenant = p % kTenants;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i;
        if (ingress.try_push(tenant, id)) {
          accepted[tenant].fetch_add(1, std::memory_order_relaxed);
        } else {
          shed[tenant].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::uint64_t popped[kTenants] = {};
  std::thread drainer([&] {
    while (auto item = ingress.pop_any()) ++popped[item->first];
  });

  for (auto& t : producers) t.join();
  ingress.close();
  drainer.join();

  for (std::size_t t = 0; t < kTenants; ++t) {
    EXPECT_EQ(popped[t], accepted[t].load()) << "tenant " << t;
    EXPECT_EQ(accepted[t].load() + shed[t].load(),
              (kProducers / kTenants) * kPerProducer)
        << "tenant " << t;
  }
  // Close-then-drain: nothing poppable or pushable afterwards.
  EXPECT_FALSE(ingress.try_push(0, 1));
  EXPECT_FALSE(ingress.pop_any().has_value());
}

// close() racing a drainer blocked on all-empty queues: the consumer must
// wake and observe nullopt, never a lost wakeup.
TEST(TenantIngressStress, CloseWakesBlockedDrainer) {
  for (int round = 0; round < 50; ++round) {
    core::TenantIngress ingress(2, 4);
    std::thread drainer([&] {
      while (ingress.pop_any()) {
      }
    });
    (void)ingress.try_push(1, 7);
    ingress.close();
    drainer.join();  // hangs here if the wakeup is lost
  }
}

// Multi-tenant pipeline repeated on one engine: the tenant dispatch path
// (interval rollover, wake machinery, budget draws) under the parallel
// engine's threading, with results pinned across rounds.
TEST(ParallelReplayStress, MultiTenantRepeatedRuns) {
  trace::MultiTenantParams mt;
  mt.intervals = 150;
  mt.tenants = {
      {.requests_per_interval = 2, .bucket_pool = 8},
      {.requests_per_interval = 6, .bucket_pool = 12},
  };
  mt.seed = 41;
  mt.jitter_slots = 2;
  const auto t = trace::generate_multi_tenant(mt);
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kIntervalAligned;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kModulo;
  cfg.tenants = {
      {.name = "gold", .weight = 2.0, .reservation = 2},
      {.name = "flood", .weight = 1.0, .reservation = 0,
       .queue_capacity = 8, .mark_threshold = 6},
  };
  core::ParallelReplayEngine engine({.threads = 4, .mining_lookahead = 1});
  const auto first = engine.run(scheme931(), cfg, t);
  EXPECT_GT(first.tenant_usage[1].shed, 0u);
  for (int round = 0; round < 3; ++round) {
    const auto again = engine.run(scheme931(), cfg, t);
    std::string why;
    ASSERT_TRUE(verify::results_identical(first, again, &why))
        << "round " << round << ": " << why;
  }
}

// Wide submit_with_future fan-out on a shared pool: futures must all
// complete and the packaged-task plumbing must be race-free.
TEST(ParallelReplayStress, SubmitWithFutureFanOut) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 512;
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  std::atomic<std::size_t> ran{0};
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit_with_future(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), kTasks);
}

}  // namespace
