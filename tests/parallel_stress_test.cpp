// Concurrency stress for the parallel replay machinery, written to give
// ThreadSanitizer something to chew on: many producers and consumers on a
// tiny HandoffQueue, repeated sharded sweeps, and the pipelined mining path
// under maximum backpressure. The assertions are deliberately simple — the
// point of these tests is the interleavings, and TSan turns any data race
// or lock-order bug they expose into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "core/parallel_replay.hpp"
#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "trace/synthetic.hpp"
#include "util/handoff_queue.hpp"
#include "util/thread_pool.hpp"
#include "verify/replay_equivalence.hpp"

using namespace flashqos;

namespace {

// Many producers, many consumers, capacity far below the element count so
// both sides block constantly. Every pushed value must be popped exactly
// once and the element sum conserved.
TEST(HandoffQueueStress, ManyProducersManyConsumersTinyCapacity) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 2000;
  HandoffQueue<std::uint64_t> queue(2);

  std::atomic<std::uint64_t> pushed{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &pushed, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        if (!queue.push(p * kPerProducer + i)) return;
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &popped, &sum] {
      while (auto v = queue.pop()) {
        popped.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(*v, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(pushed.load(), kTotal);
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(queue.size(), 0u);
}

// close() racing against blocked producers: consumers stop early, so
// producers must observe push() -> false instead of blocking forever.
TEST(HandoffQueueStress, CloseUnblocksStalledProducers) {
  HandoffQueue<int> queue(1);
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, &rejected] {
      for (int i = 0; i < 500; ++i) {
        if (!queue.push(i)) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  // Drain a handful of elements, then slam the door.
  for (int i = 0; i < 5; ++i) (void)queue.pop();
  queue.close();
  for (auto& t : producers) t.join();
  EXPECT_GT(rejected.load(), 0);
  EXPECT_FALSE(queue.push(99));
  while (queue.pop()) {
  }
  EXPECT_FALSE(queue.pop().has_value());
}

const decluster::DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const decluster::DesignTheoretic s(d, true);
  return s;
}

trace::Trace tiny_interval_trace(std::uint64_t seed) {
  // Tiny intervals -> one reporting slice per QoS interval -> hundreds of
  // mining tasks per replay, maximizing producer/consumer churn.
  trace::SyntheticParams p;
  p.bucket_pool = scheme931().buckets();
  p.requests_per_interval = 3;
  p.total_requests = 900;
  p.seed = seed;
  return trace::generate_synthetic(p);
}

// Pipelined mining with lookahead 1 (every push blocks until the replay
// core consumes the previous slice) repeated back to back; TSan watches the
// queue handoff, the miner error path, and the metric-stage parallel_for.
TEST(ParallelReplayStress, PipelinedMiningUnderBackpressure) {
  const auto t = tiny_interval_trace(17);
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kIntervalAligned;
  cfg.mapping = core::MappingMode::kFim;
  core::ParallelReplayEngine engine({.threads = 4, .mining_lookahead = 1});
  const auto first = engine.run(scheme931(), cfg, t);
  for (int round = 0; round < 3; ++round) {
    const auto again = engine.run(scheme931(), cfg, t);
    std::string why;
    ASSERT_TRUE(verify::results_identical(first, again, &why))
        << "round " << round << ": " << why;
  }
}

// Sharded sweep stress: a wide job list (several distinct traces x modes),
// run twice on the same engine; slots must be populated identically while
// workers complete in whatever order the scheduler picks.
TEST(ParallelReplayStress, ShardedSweepRepeatedRuns) {
  std::vector<trace::Trace> traces;
  for (std::uint64_t s = 0; s < 4; ++s) traces.push_back(tiny_interval_trace(s));
  std::vector<core::ReplayJob> jobs;
  for (const auto& t : traces) {
    for (const auto retrieval : {core::RetrievalMode::kOnline,
                                 core::RetrievalMode::kIntervalAligned}) {
      for (const auto mapping :
           {core::MappingMode::kModulo, core::MappingMode::kFim}) {
        core::PipelineConfig cfg;
        cfg.retrieval = retrieval;
        cfg.mapping = mapping;
        jobs.push_back({&scheme931(), &t, cfg});
      }
    }
  }
  ASSERT_EQ(jobs.size(), 16u);
  core::ParallelReplayEngine engine({.threads = 4});
  const auto first = engine.run_jobs(jobs);
  const auto second = engine.run_jobs(jobs);
  ASSERT_EQ(first.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::string why;
    ASSERT_TRUE(verify::results_identical(first[i], second[i], &why))
        << "job " << i << ": " << why;
  }
}

// Wide submit_with_future fan-out on a shared pool: futures must all
// complete and the packaged-task plumbing must be race-free.
TEST(ParallelReplayStress, SubmitWithFutureFanOut) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 512;
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  std::atomic<std::size_t> ran{0};
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit_with_future(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), kTasks);
}

}  // namespace
