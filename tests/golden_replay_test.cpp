// Golden-trace regression suite: canned DiskSim-ASCII fixtures under
// tests/golden/ replayed through the pipeline, with the full formatted
// metric snapshot diffed byte-for-byte against a committed .expected.txt.
// Any change to admission, scheduling, mapping, or the flash timing model
// shows up as a readable text diff instead of a silent drift — and the
// parallel engine must reproduce the same snapshot bit for bit.
//
// Regenerating after an *intended* behaviour change:
//   FLASHQOS_GOLDEN_REGEN=1 ./build/tests/golden_replay_test
// rewrites the .expected.txt files in the source tree; review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "core/parallel_replay.hpp"
#include "core/qos_pipeline.hpp"
#include "decluster/schemes.hpp"
#include "design/constructions.hpp"
#include "trace/disksim_format.hpp"
#include "trace/synthetic.hpp"
#include "util/time.hpp"
#include "verify/replay_equivalence.hpp"

#ifndef FLASHQOS_GOLDEN_DIR
#error "build must define FLASHQOS_GOLDEN_DIR"
#endif

using namespace flashqos;

namespace {

const decluster::DesignTheoretic& scheme931() {
  static const auto d = design::make_9_3_1();
  static const decluster::DesignTheoretic s(d, true);
  return s;
}

trace::Trace load_trace(const std::string& stem, SimTime report_interval) {
  const std::string path = std::string(FLASHQOS_GOLDEN_DIR) + "/" + stem + ".trace";
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "cannot open fixture " << path;
  return trace::read_disksim_ascii(in, stem, 1, report_interval);
}

// Deterministic plain-text rendering of a PipelineResult. Fixed six-decimal
// precision: enough to print kPageReadLatency (0.132507 ms) exactly, and
// the engines guarantee bit-identical doubles so the text is stable.
std::string format_result(const core::PipelineResult& r) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(6);
  const auto row = [&out](const char* tag, const core::IntervalReport& v) {
    out << tag << " requests=" << v.requests << " avg_resp=" << v.avg_response_ms
        << " max_resp=" << v.max_response_ms << " avg_e2e=" << v.avg_e2e_ms
        << " max_e2e=" << v.max_e2e_ms << " deferred=" << v.deferred
        << " pct_deferred=" << v.pct_deferred << " avg_delay=" << v.avg_delay_ms
        << " fim_match=" << v.fim_match_rate << " failed=" << v.failed
        << " writes=" << v.writes << " avg_write=" << v.avg_write_ms << "\n";
  };
  for (std::size_t i = 0; i < r.intervals.size(); ++i) {
    out << "interval " << std::setw(3) << i;
    row("", r.intervals[i]);
  }
  out << "overall    ";
  row("", r.overall);
  out << "deadline_violations=" << r.deadline_violations << "\n";
  // Multi-tenant runs append one tally line per tenant; single-tenant
  // snapshots are byte-identical to builds without the tenant subsystem.
  for (std::size_t k = 0; k < r.tenant_usage.size(); ++k) {
    const auto& u = r.tenant_usage[k];
    out << "tenant " << k << " arrivals=" << u.arrivals
        << " admitted=" << u.admitted << " shed=" << u.shed
        << " marked=" << u.marked << " max_depth=" << u.max_depth << "\n";
  }
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return in ? ss.str() : std::string();
}

// Compare against the committed snapshot, or rewrite it under
// FLASHQOS_GOLDEN_REGEN=1. On mismatch, report the first diverging line.
void check_golden(const std::string& stem, const std::string& actual) {
  const std::string path =
      std::string(FLASHQOS_GOLDEN_DIR) + "/" + stem + ".expected.txt";
  if (std::getenv("FLASHQOS_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot regenerate " << path;
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << path << " missing; run with FLASHQOS_GOLDEN_REGEN=1 to create it";
  if (actual == expected) return;
  std::istringstream a(actual), e(expected);
  std::string al, el;
  std::size_t line = 1;
  while (std::getline(e, el)) {
    if (!std::getline(a, al)) al = "<eof>";
    if (al != el) break;
    ++line;
  }
  FAIL() << stem << " snapshot drifted at line " << line << "\n  expected: " << el
         << "\n  actual:   " << al
         << "\nIf intended, regen with FLASHQOS_GOLDEN_REGEN=1 and review.";
}

// Light uniform load, online mode: every request is served the moment it
// arrives, so per-interval avg and max response sit exactly on the flash
// page-read latency — the flat 0.132507 ms line of the paper's Figs. 8/9.
TEST(GoldenReplay, FlatlineOnlineModulo) {
  const auto t = load_trace("flatline", from_ms(3.0));
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kOnline;
  cfg.mapping = core::MappingMode::kModulo;
  const auto serial = core::QosPipeline(scheme931(), cfg).run(t);

  ASSERT_EQ(serial.intervals.size(), 16u);
  for (const auto& iv : serial.intervals) {
    // Exact equality, not near: the flat line is a determinism claim.
    EXPECT_EQ(iv.avg_response_ms, 0.132507);
    EXPECT_EQ(iv.max_response_ms, 0.132507);
    EXPECT_EQ(iv.deferred, 0u);
  }
  EXPECT_EQ(serial.overall.avg_response_ms, 0.132507);
  EXPECT_EQ(serial.deadline_violations, 0u);

  const auto snapshot = format_result(serial);
  check_golden("flatline_online_modulo", snapshot);

  core::ParallelReplayEngine engine({.threads = 4});
  EXPECT_EQ(format_result(engine.run(scheme931(), cfg, t)), snapshot);
}

// Bursty co-arrivals under interval-aligned retrieval with deterministic
// admission and FIM mapping: deferrals, write traffic, and FIM matches all
// live in this snapshot.
TEST(GoldenReplay, BurstyAlignedDetFim) {
  const auto t = load_trace("bursty", from_ms(4.0));
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kIntervalAligned;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kFim;
  const auto serial = core::QosPipeline(scheme931(), cfg).run(t);

  // The fixture is built to exercise the interesting counters; if these go
  // to zero the snapshot stops guarding anything.
  EXPECT_GT(serial.overall.deferred, 0u);
  EXPECT_GT(serial.overall.writes, 0u);
  EXPECT_GT(serial.overall.fim_match_rate, 0.0);

  const auto snapshot = format_result(serial);
  check_golden("bursty_aligned_det_fim", snapshot);

  core::ParallelReplayEngine engine({.threads = 4, .mining_lookahead = 1});
  const auto parallel = engine.run(scheme931(), cfg, t);
  std::string why;
  EXPECT_TRUE(verify::results_identical(serial, parallel, &why)) << why;
  EXPECT_EQ(format_result(parallel), snapshot);
}

// Same bursty fixture through the online path — the mode Table III uses —
// so both retrieval engines have a pinned snapshot.
TEST(GoldenReplay, BurstyOnlineDetFim) {
  const auto t = load_trace("bursty", from_ms(4.0));
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kOnline;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kFim;
  const auto serial = core::QosPipeline(scheme931(), cfg).run(t);
  const auto snapshot = format_result(serial);
  check_golden("bursty_online_det_fim", snapshot);

  // kOnline parallel replay is the serial fallback path; it must still
  // match the snapshot exactly.
  core::ParallelReplayEngine engine({.threads = 4});
  EXPECT_EQ(format_result(engine.run(scheme931(), cfg, t)), snapshot);
}

// Multi-tenant WFQ front end fixtures: the trace is generated in-code
// (trace::generate_multi_tenant is seeded and deterministic), only the
// snapshot is committed. Jittered arrivals push dispensing off the
// interval boundaries, so the wake machinery and mid-interval budget
// draws are all pinned by the snapshot.
core::PipelineConfig tenant_cfg() {
  core::PipelineConfig cfg;
  cfg.retrieval = core::RetrievalMode::kOnline;
  cfg.admission = core::AdmissionMode::kDeterministic;
  cfg.mapping = core::MappingMode::kModulo;
  cfg.tenants = {
      {.name = "gold", .weight = 2.0, .reservation = 2,
       .queue_capacity = 8, .mark_threshold = 6},
      {.name = "silver", .weight = 1.0, .reservation = 0,
       .queue_capacity = 8, .mark_threshold = 6},
      {.name = "flood", .weight = 1.0, .reservation = 0,
       .queue_capacity = 6, .mark_threshold = 4},
  };
  return cfg;
}

trace::Trace tenant_trace() {
  trace::MultiTenantParams mt;
  mt.intervals = 40;
  mt.tenants = {
      {.requests_per_interval = 2, .bucket_pool = 8},
      {.requests_per_interval = 1, .bucket_pool = 8},
      {.requests_per_interval = 7, .bucket_pool = 12},
  };
  mt.seed = 5;
  mt.jitter_slots = 3;
  return trace::generate_multi_tenant(mt);
}

TEST(GoldenReplay, MultiTenantOnlineDet) {
  const auto t = tenant_trace();
  const auto cfg = tenant_cfg();
  const auto serial = core::QosPipeline(scheme931(), cfg).run(t);

  // The fixture must exercise the whole front end, or the snapshot stops
  // guarding anything: backpressure (marks and sheds on the flooder) and
  // an untouched reserved tenant.
  EXPECT_GT(serial.tenant_usage[2].shed, 0u);
  EXPECT_GT(serial.tenant_usage[2].marked, 0u);
  EXPECT_EQ(serial.tenant_usage[0].shed, 0u);
  EXPECT_EQ(serial.tenant_usage[0].admitted, serial.tenant_usage[0].arrivals);

  const auto snapshot = format_result(serial);
  check_golden("multi_tenant_online_det", snapshot);

  // kOnline parallel replay is the serial fallback path; tenant tallies
  // must survive it bit for bit.
  core::ParallelReplayEngine engine({.threads = 4});
  const auto parallel = engine.run(scheme931(), cfg, t);
  std::string why;
  EXPECT_TRUE(verify::results_identical(serial, parallel, &why)) << why;
  EXPECT_EQ(format_result(parallel), snapshot);
}

TEST(GoldenReplay, MultiTenantAlignedDet) {
  const auto t = tenant_trace();
  auto cfg = tenant_cfg();
  cfg.retrieval = core::RetrievalMode::kIntervalAligned;
  const auto serial = core::QosPipeline(scheme931(), cfg).run(t);
  const auto snapshot = format_result(serial);
  check_golden("multi_tenant_aligned_det", snapshot);

  core::ParallelReplayEngine engine({.threads = 4, .mining_lookahead = 1});
  const auto parallel = engine.run(scheme931(), cfg, t);
  std::string why;
  EXPECT_TRUE(verify::results_identical(serial, parallel, &why)) << why;
  EXPECT_EQ(format_result(parallel), snapshot);
}

}  // namespace
