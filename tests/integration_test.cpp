// Cross-module integration tests: the paper's end-to-end scenarios run
// small, with exact expectations wherever the theory pins them down.
#include <gtest/gtest.h>

#include "core/qos_pipeline.hpp"
#include "core/sampler.hpp"
#include "decluster/schemes.hpp"
#include "design/catalog.hpp"
#include "design/constructions.hpp"
#include "flashsim/metrics.hpp"
#include "trace/stats.hpp"
#include "trace/synthetic.hpp"
#include "trace/workload.hpp"

namespace flashqos {
namespace {

using core::AdmissionMode;
using core::MappingMode;
using core::PipelineConfig;
using core::QosPipeline;
using core::RetrievalMode;
using decluster::DesignTheoretic;

// Table III, distilled: on the synthetic at-the-limit workloads, the
// design-theoretic scheme never misses its deadline while RAID-1 mirrored
// does (its three-way groups serialize under batches of 14+).
TEST(Integration, DesignBeatsRaidOnSyntheticWorkload) {
  const auto t = trace::generate_synthetic({.bucket_pool = 36,
                                            .interval = 266 * kMicrosecond,
                                            .requests_per_interval = 14,
                                            .total_requests = 2800,
                                            .seed = 17});
  PipelineConfig cfg;
  cfg.qos_interval = 266 * kMicrosecond;
  cfg.access_budget = 2;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kNone;  // pure allocation comparison
  cfg.mapping = MappingMode::kModulo;

  const auto d = design::make_9_3_1();
  const DesignTheoretic design_scheme(d, true);
  const decluster::Raid1Mirrored mirrored(9, 3, 36);

  const auto r_design = QosPipeline(design_scheme, cfg).run(t);
  const auto r_mirror = QosPipeline(mirrored, cfg).run(t);

  EXPECT_EQ(r_design.deadline_violations, 0u)
      << "(9,3,1) must retrieve any 14 buckets in 2 accesses";
  EXPECT_GT(r_mirror.deadline_violations, 0u)
      << "mirrored groups serialize 14-request batches";
  EXPECT_LT(r_design.overall.max_response_ms, r_mirror.overall.max_response_ms);
  EXPECT_LE(r_design.overall.avg_response_ms, r_mirror.overall.avg_response_ms);
}

// Fig 8/9 distilled: deterministic QoS keeps every admitted request within
// the guarantee while the original stand violates it.
TEST(Integration, ExchangeLikeDeterministicQos) {
  auto p = trace::exchange_params(1.0, 21);
  p.report_intervals = 8;
  const auto t = trace::generate_workload(p);
  ASSERT_GT(t.events.size(), 500u);

  const auto orig = core::replay_original(t);
  EXPECT_GT(orig.deadline_violations, 0u) << "original stand must queue";

  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);
  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kFim;
  const auto qos = QosPipeline(scheme, cfg).run(t);

  EXPECT_LT(qos.overall.avg_response_ms, orig.overall.avg_response_ms);
  EXPECT_LT(qos.overall.max_response_ms, orig.overall.max_response_ms);
  // Deterministic QoS defers some requests rather than violating.
  EXPECT_GT(qos.overall.deferred, 0u);
  EXPECT_LT(qos.overall.pct_deferred, 0.5);
}

// Fig 10 distilled: larger ε defers fewer requests and yields a response
// time at least as large.
TEST(Integration, StatisticalQosEpsilonTradeoff) {
  auto p = trace::tpce_params(0.2, 23);
  const auto t = trace::generate_workload(p);
  const auto d = design::make_13_3_1();
  const DesignTheoretic scheme(d, true);
  const auto p_table =
      core::sample_optimal_probabilities(scheme, 40, {.samples_per_size = 400});

  double prev_deferred = 1.0;
  std::vector<double> deferred_rates;
  for (const double eps : {0.0, 0.2, 0.8}) {
    PipelineConfig cfg;
    cfg.retrieval = RetrievalMode::kOnline;
    cfg.admission = AdmissionMode::kStatistical;
    cfg.mapping = MappingMode::kFim;
    cfg.epsilon = eps;
    cfg.p_table = p_table;
    const auto r = QosPipeline(scheme, cfg).run(t);
    deferred_rates.push_back(r.overall.pct_deferred);
  }
  EXPECT_GE(deferred_rates[0], deferred_rates[1]);
  EXPECT_GE(deferred_rates[1], deferred_rates[2]);
  (void)prev_deferred;
}

// Fig 12 distilled: online retrieval introduces less delay than
// interval-aligned design-theoretic retrieval on the same trace.
TEST(Integration, OnlineBeatsAlignedOnDelay) {
  auto p = trace::exchange_params(1.0, 29);
  p.report_intervals = 6;
  const auto t = trace::generate_workload(p);
  const auto d = design::make_9_3_1();
  const DesignTheoretic scheme(d, true);

  PipelineConfig online_cfg;
  online_cfg.retrieval = RetrievalMode::kOnline;
  online_cfg.admission = AdmissionMode::kDeterministic;
  online_cfg.mapping = MappingMode::kFim;
  PipelineConfig aligned_cfg = online_cfg;
  aligned_cfg.retrieval = RetrievalMode::kIntervalAligned;

  const auto r_online = QosPipeline(scheme, online_cfg).run(t);
  const auto r_aligned = QosPipeline(scheme, aligned_cfg).run(t);

  // Aligned mode defers every off-boundary arrival; online only the
  // admission overflow.
  EXPECT_GT(r_aligned.overall.pct_deferred, r_online.overall.pct_deferred);
  // Mean delay over all requests is strictly smaller online.
  const auto total_delay = [](const core::PipelineResult& r) {
    double sum = 0.0;
    for (const auto& o : r.outcomes) sum += to_ms(o.delay());
    return sum / static_cast<double>(r.outcomes.size());
  };
  EXPECT_LT(total_delay(r_online), total_delay(r_aligned));
}

// Catalog-driven deployment: pick a design from a QoS requirement and run
// it end to end.
TEST(Integration, CatalogChosenDesignHonoursItsGuarantee) {
  const auto pick = design::choose_design({.max_requests_per_interval = 14,
                                           .access_budget = 2});
  ASSERT_TRUE(pick.has_value());
  const auto d = pick->make();
  const DesignTheoretic scheme(d, true);
  const auto t = trace::generate_synthetic({.bucket_pool = scheme.buckets(),
                                            .interval = 266 * kMicrosecond,
                                            .requests_per_interval = 14,
                                            .total_requests = 1400,
                                            .seed = 31});
  PipelineConfig cfg;
  cfg.qos_interval = 266 * kMicrosecond;
  cfg.access_budget = 2;
  cfg.retrieval = RetrievalMode::kIntervalAligned;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kModulo;
  const auto r = QosPipeline(scheme, cfg).run(t);
  EXPECT_EQ(r.deadline_violations, 0u);
  EXPECT_EQ(r.overall.deferred, 0u);
}

// Trace statistics feed Fig 6; sanity-check they reflect the rate curve.
TEST(Integration, WorkloadStatsFollowRateCurve) {
  auto p = trace::exchange_params(0.25, 37);
  p.report_intervals = 48;
  const auto t = trace::generate_workload(p);
  const auto stats = trace::interval_stats(t, t.report_interval / 20);
  ASSERT_EQ(stats.size(), 48u);
  // The diurnal curve has distinctly busy and quiet intervals.
  double lo = 1e18, hi = 0.0;
  for (const auto& s : stats) {
    lo = std::min(lo, s.avg_reads_per_sec);
    hi = std::max(hi, s.avg_reads_per_sec);
  }
  EXPECT_GT(hi, 2.0 * lo) << "rate curve must modulate the load";
  for (const auto& s : stats) {
    EXPECT_GE(s.max_reads_per_sec, s.avg_reads_per_sec * 0.99);
  }
}

// FIM match ratios land in the bands the paper reports (17% / 87%).
TEST(Integration, FimMatchRatesDistinguishWorkloads) {
  auto pe = trace::exchange_params(1.0, 41);
  pe.report_intervals = 12;
  auto pt = trace::tpce_params(0.5, 41);
  const auto te = trace::generate_workload(pe);
  const auto tt = trace::generate_workload(pt);

  const auto d9 = design::make_9_3_1();
  const auto d13 = design::make_13_3_1();
  const DesignTheoretic s9(d9, true);
  const DesignTheoretic s13(d13, true);

  PipelineConfig cfg;
  cfg.retrieval = RetrievalMode::kOnline;
  cfg.admission = AdmissionMode::kDeterministic;
  cfg.mapping = MappingMode::kFim;

  const auto re = QosPipeline(s9, cfg).run(te);
  const auto rt = QosPipeline(s13, cfg).run(tt);

  // Skip interval 0 (no mining history) when averaging.
  const auto avg_match = [](const core::PipelineResult& r) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 1; i < r.intervals.size(); ++i) {
      if (r.intervals[i].requests == 0) continue;
      sum += r.intervals[i].fim_match_rate;
      ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  const double exchange_match = avg_match(re);
  const double tpce_match = avg_match(rt);
  EXPECT_GT(exchange_match, 0.05);
  EXPECT_LT(exchange_match, 0.40);
  EXPECT_GT(tpce_match, 0.70);
  EXPECT_GT(tpce_match, exchange_match * 2.0);
}

}  // namespace
}  // namespace flashqos
