#!/usr/bin/env bash
# Pre-merge correctness gate for flashqos.
#
# Runs, in order:
#   1. warnings-as-errors build of everything (libs, tests, benches, examples)
#      and the plain ctest suite
#   2. flashqos_lint over src/ against the committed baseline (in-tree
#      contract linter: sanctioned logging, zero-alloc hot paths, seeded
#      randomness, SimTime-only simulation code, include hygiene)
#   3. schedule-exhaustive model checking (flashqos_verify --model): every
#      interleaving of the bounded ThreadPool / HandoffQueue / MetricRegistry
#      models, with vector-clock race, deadlock, and lost-wakeup detection
#   4. the test suite under AddressSanitizer + UndefinedBehaviorSanitizer
#   5. the test suite under ThreadSanitizer
#   6. the design-invariant verifier (flashqos_verify) over every catalog
#      design with N <= 64, plus the serial ≡ parallel replay-equivalence
#      audit (every mode combination, failure windows, sweep sharding), the
#      observability self-audit (--obs: recorded metrics, windowed
#      time-series points, SLO burn-rate pages, and trace spans checked
#      against the replay outcomes they describe), and the
#      fault-injection chaos audit (--faults: randomized fault plans with
#      request-conservation, routing, guarantee-reestablishment, and
#      serial ≡ parallel checks), the streaming-identity audit
#      (--stream: run_stream ≡ run() — results, metric registry, and
#      windowed time-series bit-identical at every batch size, through
#      generator and chunked-file cursors, with a seeded drain-bound
#      mutation proving the audit can fail), and the daemon-identity
#      audit (--daemon: results served over a real loopback flashqosd
#      session field-identical to in-process replay, including
#      multi-connection interleavings, clamping, and mid-session flushes)
#   7. flashqosd lifecycle smoke: start the daemon on an ephemeral port
#      from a generated config, parse its listen line, SIGTERM it, and
#      require a clean drain and exit 0
#   8. clang-tidy over src/ (skipped with a warning if clang-tidy is not
#      installed — stages 2–3 are the always-on static gate; clang-tidy is
#      an extra when a clang toolchain is around)
#
# Usage: scripts/check.sh [--quick]
#   --quick: skip the TSan pass (the slowest stage) — NOT sufficient for
#            merging concurrency changes.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "check.sh: unknown argument '$arg' (usage: scripts/check.sh [--quick])" >&2
       exit 2 ;;
  esac
done

run() { echo "+ $*" >&2; "$@"; }

banner() {
  echo
  echo "==================================================================="
  echo "== $*"
  echo "==================================================================="
}

banner "1/8 warnings-as-errors build + ctest"
run cmake -B build-werror -S . -DFLASHQOS_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
run cmake --build build-werror -j "$JOBS"
run ctest --test-dir build-werror --output-on-failure -j "$JOBS"

banner "2/8 flashqos_lint (contract linter)"
run ./build-werror/src/lint/flashqos_lint --root src \
  --baseline scripts/lint_baseline.txt

banner "3/8 schedule-exhaustive model checking"
run ./build-werror/src/verify/flashqos_verify --model

banner "4/8 ASan + UBSan"
run cmake -B build-asan -S . -DFLASHQOS_WERROR=ON -DFLASHQOS_SANITIZE=address \
  -DFLASHQOS_BUILD_BENCH=OFF -DFLASHQOS_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
run cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  run ctest --test-dir build-asan --output-on-failure -j "$JOBS"

if [[ $QUICK -eq 0 ]]; then
  banner "5/8 TSan"
  run cmake -B build-tsan -S . -DFLASHQOS_WERROR=ON -DFLASHQOS_SANITIZE=thread \
    -DFLASHQOS_BUILD_BENCH=OFF -DFLASHQOS_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  run cmake --build build-tsan -j "$JOBS"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    run ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
  banner "5/8 TSan — SKIPPED (--quick)"
fi

banner "6/8 design-invariant verifier (catalog, N <= 64) + replay equivalence + obs audit + chaos audit + fairness audit + stream audit + daemon audit"
run ./build-werror/src/verify/flashqos_verify --max-devices 64 --replay --obs --faults --fairness --stream --daemon

banner "7/8 flashqosd lifecycle smoke (ephemeral port, loopback batch, clean drain)"
daemon_smoke() {
  # $1: "probe" (drive one batch; end-session drains the daemon) or
  #     "sigterm" (no traffic; the signal forces the drain).
  local mode=$1 ini log pid listen port rc=0
  ini=$(mktemp) log=$(mktemp)
  printf '[design]\nname = (9,3,1)\n\n[pipeline]\nretrieval = online\nadmission = deterministic\n' > "$ini"
  echo "+ ./build-werror/src/net/flashqosd $ini --port 0  # $mode" >&2
  ./build-werror/src/net/flashqosd "$ini" --port 0 > "$log" &
  pid=$!
  listen=""
  for _ in $(seq 1 100); do
    listen=$(grep -o 'listening on 127\.0\.0\.1:[0-9]*' "$log" || true)
    [[ -n "$listen" ]] && break
    kill -0 "$pid" 2> /dev/null || { cat "$log"; echo "check.sh: flashqosd died before listening" >&2; return 1; }
    sleep 0.1
  done
  [[ -n "$listen" ]] || { cat "$log"; echo "check.sh: flashqosd never printed its listen line" >&2; return 1; }
  if [[ $mode == probe ]]; then
    port=${listen##*:}
    run ./build-werror/src/verify/flashqos_verify --daemon-probe "$port" || return 1
  else
    kill -TERM "$pid"
  fi
  wait "$pid" || rc=$?
  cat "$log"
  grep -q 'flashqosd: drained' "$log" || { echo "check.sh: flashqosd did not report a drain ($mode)" >&2; return 1; }
  rm -f "$ini" "$log"
  [[ $rc -eq 0 ]] || { echo "check.sh: flashqosd exited $rc (want clean drain + 0, $mode)" >&2; return 1; }
}
daemon_smoke probe
daemon_smoke sigterm

banner "8/8 clang-tidy (optional extra)"
if command -v clang-tidy > /dev/null 2>&1; then
  run cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  find src -name '*.cpp' -print0 \
    | xargs -0 -n 1 -P "$JOBS" clang-tidy -p build-tidy --quiet --warnings-as-errors='*'
else
  echo "NOTE: clang-tidy not found on PATH; skipping the optional pass" >&2
  echo "      (the in-tree flashqos_lint gate already ran in stage 2/8)." >&2
fi

banner "all checks passed"
